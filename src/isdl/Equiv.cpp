//===- Equiv.cpp - Structural equality modulo renaming ----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/Equiv.h"

#include "isdl/Printer.h"

#include <algorithm>
#include <chrono>
#include <set>

using namespace extra;
using namespace extra::isdl;

bool NameBinding::bind(const std::string &A, const std::string &B) {
  auto ItA = AtoB.find(A);
  if (ItA != AtoB.end())
    return ItA->second == B;
  auto ItB = BtoA.find(B);
  if (ItB != BtoA.end())
    return ItB->second == A;
  AtoB.emplace(A, B);
  BtoA.emplace(B, A);
  return true;
}

std::string NameBinding::lookupA(const std::string &A) const {
  auto It = AtoB.find(A);
  return It == AtoB.end() ? std::string() : It->second;
}

std::string NameBinding::lookupB(const std::string &B) const {
  auto It = BtoA.find(B);
  return It == BtoA.end() ? std::string() : It->second;
}

std::string NameBinding::str() const {
  std::string Out;
  for (const auto &[A, B] : AtoB) {
    Out += A;
    Out += " <-> ";
    Out += B;
    Out += '\n';
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Matching
//===----------------------------------------------------------------------===//

namespace {

void note(std::string *Mismatch, const std::string &Message) {
  if (Mismatch && Mismatch->empty())
    *Mismatch = Message;
}

} // namespace

bool isdl::matchExpr(const Expr &A, const Expr &B, NameBinding &Binding,
                     std::string *Mismatch) {
  if (A.getKind() != B.getKind()) {
    note(Mismatch, "expression kinds differ: '" + printExpr(A) + "' vs '" +
                       printExpr(B) + "'");
    return false;
  }
  switch (A.getKind()) {
  case Expr::Kind::IntLit:
    if (cast<IntLit>(&A)->getValue() != cast<IntLit>(&B)->getValue()) {
      note(Mismatch, "integer literals differ: " + printExpr(A) + " vs " +
                         printExpr(B));
      return false;
    }
    return true;
  case Expr::Kind::CharLit:
    if (cast<CharLit>(&A)->getValue() != cast<CharLit>(&B)->getValue()) {
      note(Mismatch, "character literals differ");
      return false;
    }
    return true;
  case Expr::Kind::VarRef: {
    const std::string &NA = cast<VarRef>(&A)->getName();
    const std::string &NB = cast<VarRef>(&B)->getName();
    if (!Binding.bind(NA, NB)) {
      note(Mismatch, "name binding conflict: '" + NA + "' vs '" + NB +
                         "' (existing: '" + NA + "' <-> '" +
                         Binding.lookupA(NA) + "', '" + Binding.lookupB(NB) +
                         "' <-> '" + NB + "')");
      return false;
    }
    return true;
  }
  case Expr::Kind::MemRef:
    return matchExpr(*cast<MemRef>(&A)->getAddress(),
                     *cast<MemRef>(&B)->getAddress(), Binding, Mismatch);
  case Expr::Kind::Call: {
    const std::string &NA = cast<CallExpr>(&A)->getCallee();
    const std::string &NB = cast<CallExpr>(&B)->getCallee();
    if (!Binding.bind(NA, NB)) {
      note(Mismatch,
           "routine binding conflict: '" + NA + "' vs '" + NB + "'");
      return false;
    }
    return true;
  }
  case Expr::Kind::Unary: {
    const auto *UA = cast<UnaryExpr>(&A);
    const auto *UB = cast<UnaryExpr>(&B);
    if (UA->getOp() != UB->getOp()) {
      note(Mismatch, "unary operators differ: '" + printExpr(A) + "' vs '" +
                         printExpr(B) + "'");
      return false;
    }
    return matchExpr(*UA->getOperand(), *UB->getOperand(), Binding, Mismatch);
  }
  case Expr::Kind::Binary: {
    const auto *BA = cast<BinaryExpr>(&A);
    const auto *BB = cast<BinaryExpr>(&B);
    if (BA->getOp() != BB->getOp()) {
      note(Mismatch, "binary operators differ: '" + printExpr(A) + "' vs '" +
                         printExpr(B) + "'");
      return false;
    }
    return matchExpr(*BA->getLHS(), *BB->getLHS(), Binding, Mismatch) &&
           matchExpr(*BA->getRHS(), *BB->getRHS(), Binding, Mismatch);
  }
  }
  return false;
}

bool isdl::matchStmt(const Stmt &A, const Stmt &B, NameBinding &Binding,
                     std::string *Mismatch) {
  if (A.getKind() != B.getKind()) {
    note(Mismatch, "statement kinds differ:\n" + printStmt(A) + "vs\n" +
                       printStmt(B));
    return false;
  }
  switch (A.getKind()) {
  case Stmt::Kind::Assign: {
    const auto *AA = cast<AssignStmt>(&A);
    const auto *AB = cast<AssignStmt>(&B);
    return matchExpr(*AA->getTarget(), *AB->getTarget(), Binding, Mismatch) &&
           matchExpr(*AA->getValue(), *AB->getValue(), Binding, Mismatch);
  }
  case Stmt::Kind::If: {
    const auto *IA = cast<IfStmt>(&A);
    const auto *IB = cast<IfStmt>(&B);
    return matchExpr(*IA->getCond(), *IB->getCond(), Binding, Mismatch) &&
           matchStmts(IA->getThen(), IB->getThen(), Binding, Mismatch) &&
           matchStmts(IA->getElse(), IB->getElse(), Binding, Mismatch);
  }
  case Stmt::Kind::Repeat:
    return matchStmts(cast<RepeatStmt>(&A)->getBody(),
                      cast<RepeatStmt>(&B)->getBody(), Binding, Mismatch);
  case Stmt::Kind::ExitWhen:
    return matchExpr(*cast<ExitWhenStmt>(&A)->getCond(),
                     *cast<ExitWhenStmt>(&B)->getCond(), Binding, Mismatch);
  case Stmt::Kind::Input: {
    const auto &TA = cast<InputStmt>(&A)->getTargets();
    const auto &TB = cast<InputStmt>(&B)->getTargets();
    if (TA.size() != TB.size()) {
      note(Mismatch, "input operand counts differ (" +
                         std::to_string(TA.size()) + " vs " +
                         std::to_string(TB.size()) + ")");
      return false;
    }
    for (size_t I = 0; I < TA.size(); ++I)
      if (!Binding.bind(TA[I], TB[I])) {
        note(Mismatch, "input binding conflict at position " +
                           std::to_string(I) + ": '" + TA[I] + "' vs '" +
                           TB[I] + "'");
        return false;
      }
    return true;
  }
  case Stmt::Kind::Output: {
    const auto &VA = cast<OutputStmt>(&A)->getValues();
    const auto &VB = cast<OutputStmt>(&B)->getValues();
    if (VA.size() != VB.size()) {
      note(Mismatch, "output value counts differ");
      return false;
    }
    for (size_t I = 0; I < VA.size(); ++I)
      if (!matchExpr(*VA[I], *VB[I], Binding, Mismatch))
        return false;
    return true;
  }
  case Stmt::Kind::Constrain: {
    const auto *CA = cast<ConstrainStmt>(&A);
    const auto *CB = cast<ConstrainStmt>(&B);
    if (CA->getTag() != CB->getTag()) {
      note(Mismatch, "constraint tags differ");
      return false;
    }
    return matchExpr(*CA->getPred(), *CB->getPred(), Binding, Mismatch);
  }
  case Stmt::Kind::Assert:
    return matchExpr(*cast<AssertStmt>(&A)->getPred(),
                     *cast<AssertStmt>(&B)->getPred(), Binding, Mismatch);
  }
  return false;
}

bool isdl::matchStmts(const StmtList &A, const StmtList &B,
                      NameBinding &Binding, std::string *Mismatch) {
  if (A.size() != B.size()) {
    note(Mismatch, "statement counts differ (" + std::to_string(A.size()) +
                       " vs " + std::to_string(B.size()) + "):\n" +
                       printStmts(A) + "vs\n" + printStmts(B));
    return false;
  }
  for (size_t I = 0; I < A.size(); ++I)
    if (!matchStmt(*A[I], *B[I], Binding, Mismatch))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Exact equality
//===----------------------------------------------------------------------===//

namespace {

/// A binding that only accepts identical names.
bool exactMatchWrapper(const Expr &A, const Expr &B) {
  NameBinding Binding;
  if (!matchExpr(A, B, Binding))
    return false;
  for (const auto &[X, Y] : Binding.pairs())
    if (X != Y)
      return false;
  return true;
}

} // namespace

bool isdl::exactEqual(const Expr &A, const Expr &B) {
  return exactMatchWrapper(A, B);
}

bool isdl::exactEqual(const Stmt &A, const Stmt &B) {
  NameBinding Binding;
  if (!matchStmt(A, B, Binding))
    return false;
  for (const auto &[X, Y] : Binding.pairs())
    if (X != Y)
      return false;
  return true;
}

bool isdl::exactEqual(const StmtList &A, const StmtList &B) {
  NameBinding Binding;
  if (!matchStmts(A, B, Binding))
    return false;
  for (const auto &[X, Y] : Binding.pairs())
    if (X != Y)
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Description matching
//===----------------------------------------------------------------------===//

namespace {

/// Fills \p Result.Divergence for a failed body match of the routine pair
/// \p NameA / \p NameB. \p Snapshot is the binding as it stood *before*
/// the failing matchStmts call (matchStmts mutates its binding even on
/// failure, so the caller snapshots).
///
/// Prefix: statements are committed one at a time, each on a trial copy
/// of the binding, so a partially-matching statement cannot pollute the
/// partial binding. Suffix: the largest trailing block of both bodies
/// that matches as a whole under the prefix binding. The spans are the
/// middles that remain.
void computeDivergence(MatchResult &Result, const std::string &NameA,
                       const std::string &NameB, const StmtList &BodyA,
                       const StmtList &BodyB, const NameBinding &Snapshot) {
  DivergenceReport &R = Result.Divergence;
  R.Valid = true;
  R.RoutineA = NameA;
  R.RoutineB = NameB;

  // Forward prefix walk, clone-per-statement.
  NameBinding Prefix = Snapshot;
  size_t NPrefix = 0;
  while (NPrefix < BodyA.size() && NPrefix < BodyB.size()) {
    NameBinding Trial = Prefix;
    if (!matchStmt(*BodyA[NPrefix], *BodyB[NPrefix], Trial))
      break;
    Prefix = std::move(Trial);
    ++NPrefix;
  }

  // Backward suffix as a block: the largest k whose trailing statements
  // match under the prefix binding.
  size_t MaxSuffix = std::min(BodyA.size(), BodyB.size()) - NPrefix;
  size_t NSuffix = 0;
  NameBinding Full = Prefix;
  for (size_t K = MaxSuffix; K > 0; --K) {
    NameBinding Trial = Prefix;
    bool Ok = true;
    for (size_t I = 0; I < K && Ok; ++I)
      Ok = matchStmt(*BodyA[BodyA.size() - K + I], *BodyB[BodyB.size() - K + I],
                     Trial);
    if (Ok) {
      NSuffix = K;
      Full = std::move(Trial);
      break;
    }
  }

  R.Partial = std::move(Full);
  R.SpanA = {NameA, NPrefix, BodyA.size() - NSuffix};
  R.SpanB = {NameB, NPrefix, BodyB.size() - NSuffix};

  // A message pinpointing the first diverging statement pair, when both
  // spans are non-empty.
  if (!R.SpanA.empty() && !R.SpanB.empty()) {
    NameBinding Trial = Prefix;
    std::string Msg;
    matchStmt(*BodyA[R.SpanA.Begin], *BodyB[R.SpanB.Begin], Trial, &Msg);
    R.Detail = Msg;
  } else {
    R.Detail = "one side has " +
               std::to_string(R.SpanA.empty() ? R.SpanB.size() : R.SpanA.size()) +
               " extra statement(s)";
  }
}

/// The uninstrumented matcher; the public entry point wraps it with
/// metrics and trace reporting.
MatchResult matchDescriptionsImpl(const Description &A,
                                  const Description &B) {
  MatchResult Result;
  const Routine *EntryA = A.entryRoutine();
  const Routine *EntryB = B.entryRoutine();
  if (!EntryA || !EntryB) {
    Result.Mismatch = "missing entry routine";
    return Result;
  }

  NameBinding &Binding = Result.Binding;
  if (!Binding.bind(EntryA->Name, EntryB->Name)) {
    Result.Mismatch = "cannot bind entry routines";
    return Result;
  }
  NameBinding Snapshot = Binding;
  if (!matchStmts(EntryA->Body, EntryB->Body, Binding, &Result.Mismatch)) {
    computeDivergence(Result, EntryA->Name, EntryB->Name, EntryA->Body,
                      EntryB->Body, Snapshot);
    return Result;
  }

  // Follow call-site bindings: every routine pair bound during entry-body
  // matching must have matching bodies under the same binding. Matching a
  // body can bind more routines, so iterate to a fixed point.
  std::set<std::string> Checked = {EntryA->Name};
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (const auto &[NameA, NameB] : Binding.pairs()) {
      const Routine *RA = A.findRoutine(NameA);
      if (!RA || Checked.count(NameA))
        continue;
      const Routine *RB = B.findRoutine(NameB);
      if (!RB) {
        Result.Mismatch = "routine '" + NameA + "' bound to '" + NameB +
                          "' which is not a routine on the instruction side";
        return Result;
      }
      Checked.insert(NameA);
      Progress = true;
      Snapshot = Binding;
      if (!matchStmts(RA->Body, RB->Body, Binding, &Result.Mismatch)) {
        computeDivergence(Result, NameA, NameB, RA->Body, RB->Body, Snapshot);
        return Result;
      }
      break; // Binding may have grown; restart iteration.
    }
  }

  // Every bound variable must be declared on both sides (or be a routine).
  for (const auto &[NameA, NameB] : Binding.pairs()) {
    bool IsRoutineA = A.findRoutine(NameA) != nullptr;
    bool IsRoutineB = B.findRoutine(NameB) != nullptr;
    if (IsRoutineA != IsRoutineB) {
      Result.Mismatch = "'" + NameA + "' is a " +
                        (IsRoutineA ? "routine" : "variable") +
                        " but its partner '" + NameB + "' is not";
      return Result;
    }
    if (IsRoutineA)
      continue;
    if (!A.findDecl(NameA)) {
      Result.Mismatch = "undeclared operator variable '" + NameA + "'";
      return Result;
    }
    if (!B.findDecl(NameB)) {
      Result.Mismatch = "undeclared instruction register '" + NameB + "'";
      return Result;
    }
  }

  Result.Matched = true;
  return Result;
}

} // namespace

MatchResult isdl::matchDescriptions(const Description &A, const Description &B,
                                    obs::Metrics *Metrics,
                                    obs::TraceSink *Trace,
                                    uint64_t TraceSpan) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
  if (Metrics)
    Start = Clock::now();

  MatchResult Result = matchDescriptionsImpl(A, B);

  if (Metrics) {
    Metrics->histogram("match.ns")
        .record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - Start)
                .count()));
    Metrics->counter("match.attempt").add();
    if (Result.Matched)
      Metrics->counter("match.success").add();
    else
      // Failure cause taxonomy: a routine-body divergence (the common
      // case, and the one synthesis can act on) vs. a pre-body failure.
      Metrics->counter(std::string("match.fail.") +
                       (Result.Divergence.Valid ? "body-divergence"
                                                : "pre-body"))
          .add();
  }

  if (Trace && Trace->enabled() && !Result.Matched) {
    obs::Payload P;
    P.add("matched", false).add("mismatch", Result.Mismatch);
    if (Result.Divergence.Valid) {
      const DivergenceReport &D = Result.Divergence;
      P.add("routine_a", D.RoutineA)
          .add("routine_b", D.RoutineB)
          .add("span_a_begin", static_cast<uint64_t>(D.SpanA.Begin))
          .add("span_a_size", static_cast<uint64_t>(D.SpanA.size()))
          .add("span_b_begin", static_cast<uint64_t>(D.SpanB.Begin))
          .add("span_b_size", static_cast<uint64_t>(D.SpanB.size()))
          .add("detail", D.Detail);
    }
    Trace->event("match-divergence", TraceSpan, std::move(P));
  }
  return Result;
}
