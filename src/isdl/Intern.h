//===- Intern.h - Hash-consed AST arena and COW description handles -*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The searcher's hot path pays `clone + apply + fingerprint` per candidate
/// (ROADMAP, "hot-path raw speed"). This module is the raw-speed layer under
/// it:
///
///  * `Interner` — a thread-local arena that hash-conses expression and
///    statement subtrees: structurally equal subtrees are interned to one
///    shared node, each node's structural hash is memoized at construction,
///    and a whole-description canonical fingerprint memo answers repeat
///    fingerprints of structurally identical descriptions without
///    re-walking them (widening rounds and transposition re-reaches hit
///    this constantly).
///
///  * `FeatureVec` — the structural-distance feature vector as a fixed
///    array instead of a `std::map<std::string,int>`: building one is a
///    single allocation-free walk, and the L1 distance is a flat loop.
///    Slot counts are defined to agree exactly with the legacy map keys
///    (binary `-` and unary negation share one slot, as the legacy
///    spelling-keyed map merged them).
///
///  * `DescHandle` — a refcounted copy-on-write handle to an immutable
///    `Description` version. Search nodes hold handles, so a child shares
///    its untouched side with its parent as a pointer copy; the canonical
///    fingerprint and the feature vector are computed once per version and
///    cached on the payload. Mutation goes through `clone()` (materialize
///    a private deep copy), never through the shared payload.
///
/// Thread model: the interner is `thread_local` (each batch worker owns an
/// arena; no locks on the hot path). `DescHandle` caches use atomics with
/// idempotent-recompute races, so handles may be read from several threads,
/// but the payload description itself is immutable once wrapped.
///
/// Interner NodeRefs are transient: nothing outside a call chain stores
/// them, so the arena can be reset when it grows past its soft cap without
/// invalidating any cached fingerprint *values*.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_ISDL_INTERN_H
#define EXTRA_ISDL_INTERN_H

#include "isdl/AST.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace extra {
namespace isdl {

//===----------------------------------------------------------------------===//
// FeatureVec
//===----------------------------------------------------------------------===//

/// Fixed-slot feature vector of a description's syntactic categories.
/// `distance` over two of these equals the legacy map-based structural
/// distance exactly (same categories, same merges).
struct FeatureVec {
  enum Slot : unsigned {
    Routines,
    Decls,
    Assign,
    If,
    Repeat,
    Exit,
    InputArity,
    OutputArity,
    Constrain,
    Assert,
    Mem,
    Call,
    Lit,
    // Operators, one slot per legacy "op:<spelling>" key. Binary minus
    // and unary negation share a spelling and therefore a slot.
    OpAdd,
    OpSubOrNeg,
    OpMul,
    OpDiv,
    OpAnd,
    OpOr,
    OpEq,
    OpNe,
    OpLt,
    OpLe,
    OpGt,
    OpGe,
    OpNot,
    NumSlots
  };

  int32_t C[NumSlots] = {0};

  /// One full walk of \p D, no allocations.
  static FeatureVec of(const Description &D);

  /// L1 distance, the beam's structural-distance signal.
  unsigned distance(const FeatureVec &O) const {
    unsigned D = 0;
    for (unsigned I = 0; I < NumSlots; ++I) {
      int32_t Diff = C[I] - O.C[I];
      D += static_cast<unsigned>(Diff < 0 ? -Diff : Diff);
    }
    return D;
  }

  bool operator==(const FeatureVec &O) const {
    for (unsigned I = 0; I < NumSlots; ++I)
      if (C[I] != O.C[I])
        return false;
    return true;
  }
};

//===----------------------------------------------------------------------===//
// Interner
//===----------------------------------------------------------------------===//

/// Thread-local hash-consing arena over ISDL subtrees, plus the canonical
/// fingerprint memo keyed by whole-description structural identity.
class Interner {
public:
  using NodeRef = uint32_t;
  using SymId = uint32_t;
  static constexpr NodeRef NoNode = ~NodeRef(0);

  /// This thread's arena.
  static Interner &local();

  /// Interned symbol id of \p S (stable for the arena's lifetime).
  SymId symbol(const std::string &S);
  const std::string &symbolName(SymId Id) const { return SymNames[Id]; }

  /// Arena node. `Kids` holds child NodeRefs, except for Input nodes
  /// where the entries are SymIds of the target names.
  struct Node {
    enum class K : uint8_t {
      IntLit,
      CharLit,
      VarRef,
      MemRef,
      CallE,
      Unary,
      Binary,
      AssignS,
      IfS,
      RepeatS,
      ExitWhenS,
      InputS,
      OutputS,
      ConstrainS,
      AssertS,
      List,
    };
    K Kind;
    uint8_t Op = 0;        ///< Unary/binary operator, when applicable.
    int64_t Value = 0;     ///< Literal value or SymId payload.
    uint64_t Hash = 0;     ///< Structural hash, memoized at construction.
    NodeRef Next = NoNode; ///< Hash-bucket chain.
    std::vector<NodeRef> Kids;
  };

  /// Interns a subtree; structurally equal subtrees return the same ref.
  NodeRef intern(const Expr &E);
  NodeRef intern(const Stmt &S);
  NodeRef intern(const StmtList &L);

  const Node &node(NodeRef R) const { return Nodes[R]; }

  /// Structural identity of the whole description (names included): equal
  /// identities imply equal canonical fingerprints. 64-bit, same collision
  /// tolerance as the transposition table.
  uint64_t identity(const Description &D);

  /// Rename-invariant canonical fingerprint, memoized by `identity`. The
  /// token stream reproduces search::fingerprint's legacy Canonicalizer
  /// byte for byte, so values are unchanged (MemoStore keys, registry
  /// dedup keys and recorded traces stay valid).
  uint64_t canonicalFingerprint(const Description &D);

  /// Nodes currently interned (tests and the soft-cap policy).
  size_t nodeCount() const { return Nodes.size(); }
  /// Canonical-fingerprint memo entries answered without a re-walk.
  uint64_t memoHits() const { return MemoHits; }

  /// Drops the arena, symbol table and memos. Cached fingerprint *values*
  /// held elsewhere stay valid; only transient NodeRefs die. Called
  /// automatically past the soft cap.
  void reset();

private:
  Interner() = default;

  NodeRef internNode(Node::K Kind, uint8_t Op, int64_t Value,
                     std::vector<NodeRef> Kids);
  uint64_t canonicalWalk(const Description &D);

  std::vector<Node> Nodes;
  std::unordered_map<uint64_t, NodeRef> Buckets;
  std::unordered_map<std::string, SymId> Syms;
  std::vector<std::string> SymNames;
  /// identity -> canonical fingerprint.
  std::unordered_map<uint64_t, uint64_t> FpMemo;
  uint64_t MemoHits = 0;

  /// Soft cap on arena size; `intern` resets everything past it. Sized so
  /// a full 14-pairing batch never trips it in practice.
  static constexpr size_t SoftNodeCap = 1u << 22;
};

//===----------------------------------------------------------------------===//
// DescHandle
//===----------------------------------------------------------------------===//

/// Refcounted copy-on-write handle to one immutable description version.
/// Copying a handle is the "refcounted handle copy" the searcher uses to
/// share a child's untouched side with its parent; `clone()` materializes
/// a private mutable deep copy for the transform engine.
class DescHandle {
public:
  DescHandle() = default;
  explicit DescHandle(Description D)
      : P(std::make_shared<Payload>(std::move(D))) {}

  bool valid() const { return P != nullptr; }
  const Description &get() const { return P->D; }
  const Description &operator*() const { return P->D; }
  const Description *operator->() const { return &P->D; }

  /// Same underlying version (pointer equality) — the short-circuit for
  /// shared untouched sides.
  bool same(const DescHandle &O) const { return P == O.P; }

  /// Deep copy for mutation.
  Description clone() const { return P->D.clone(); }

  /// Moves the description out when this handle is the sole owner, else
  /// deep-copies. Invalidates this handle.
  Description take() &&;

  /// Canonical fingerprint, computed once per version (then a load).
  uint64_t fingerprint() const;

  /// Feature vector, computed once per version (then a load).
  const FeatureVec &features() const;

  /// Cached-distance entry point: 0 on pointer-equal handles, otherwise
  /// L1 over the cached feature vectors.
  static unsigned distance(const DescHandle &A, const DescHandle &B) {
    if (A.same(B))
      return 0;
    return A.features().distance(B.features());
  }

private:
  struct Payload {
    explicit Payload(Description D) : D(std::move(D)) {}
    Description D;
    std::atomic<uint64_t> Fp{0};
    std::atomic<bool> FpReady{false};
    FeatureVec FV;
    std::atomic<bool> FVReady{false};
  };
  std::shared_ptr<Payload> P;
};

/// Rename-invariant canonical fingerprint of \p D through the thread-local
/// interner (memoized). search::fingerprint delegates here.
uint64_t canonicalFingerprint(const Description &D);

} // namespace isdl
} // namespace extra

#endif // EXTRA_ISDL_INTERN_H
