//===- Lexer.h - Tokenizer for the ISDL notation ----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the ISPS-like description notation. Comments start with
/// `!` and run to end of line. Identifiers may contain dots (`Src.Base`)
/// and underscores. `<-` (or the UTF-8 arrow `←`) is assignment; `<>`
/// serves both as the not-equal operator and the one-bit register
/// declarator — the parser disambiguates by context.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_ISDL_LEXER_H
#define EXTRA_ISDL_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace extra {
namespace isdl {

/// Token kinds for the ISDL notation.
enum class TokKind {
  Eof,
  Ident,
  Int,
  CharLit,
  // Punctuation.
  ColonEq,   // :=
  Arrow,     // <- or ←
  LParen,    // (
  RParen,    // )
  LBracket,  // [
  RBracket,  // ]
  Less,      // <
  Greater,   // >
  LessEq,    // <=
  GreaterEq, // >=
  LessGreater, // <> (not-equal, or the flag declarator)
  Eq,        // =
  Comma,     // ,
  Semi,      // ;
  Colon,     // :
  Plus,      // +
  Minus,     // -
  Star,      // *
  Slash,     // /
  StarStar,  // ** (section delimiter)
  // Keywords.
  KwBegin,
  KwEnd,
  KwIf,
  KwThen,
  KwElse,
  KwEndIf,
  KwRepeat,
  KwEndRepeat,
  KwExitWhen,
  KwInput,
  KwOutput,
  KwConstrain,
  KwAssert,
  KwNot,
  KwAnd,
  KwOr,
};

/// Spelled name of a token kind, for diagnostics.
const char *tokKindName(TokKind K);

/// One lexed token.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;    ///< Identifier spelling; empty otherwise.
  int64_t IntValue = 0; ///< Value for Int and CharLit tokens.
  SourceLoc Loc;

  bool is(TokKind K) const { return Kind == K; }
};

/// Tokenizes an entire description source. Errors (bad characters,
/// unterminated character literals) are reported to the DiagnosticEngine
/// and lexing continues so the parser can report more than one problem.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// Lexes all tokens including the trailing Eof token.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(size_t Ahead = 0) const;
  char advance();
  bool match(char Expected);
  SourceLoc loc() const { return {Line, Col}; }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace isdl
} // namespace extra

#endif // EXTRA_ISDL_LEXER_H
