//===- Intern.cpp - Hash-consed AST arena and COW handles -------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/Intern.h"

#include "isdl/Traverse.h"

#include <cassert>

using namespace extra;
using namespace extra::isdl;

//===----------------------------------------------------------------------===//
// FeatureVec
//===----------------------------------------------------------------------===//

namespace {

unsigned binarySlot(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return FeatureVec::OpAdd;
  case BinaryOp::Sub:
    return FeatureVec::OpSubOrNeg;
  case BinaryOp::Mul:
    return FeatureVec::OpMul;
  case BinaryOp::Div:
    return FeatureVec::OpDiv;
  case BinaryOp::And:
    return FeatureVec::OpAnd;
  case BinaryOp::Or:
    return FeatureVec::OpOr;
  case BinaryOp::Eq:
    return FeatureVec::OpEq;
  case BinaryOp::Ne:
    return FeatureVec::OpNe;
  case BinaryOp::Lt:
    return FeatureVec::OpLt;
  case BinaryOp::Le:
    return FeatureVec::OpLe;
  case BinaryOp::Gt:
    return FeatureVec::OpGt;
  case BinaryOp::Ge:
    return FeatureVec::OpGe;
  }
  return FeatureVec::OpAdd;
}

} // namespace

FeatureVec FeatureVec::of(const Description &D) {
  FeatureVec F;
  std::vector<const Routine *> Routines = D.routines();
  F.C[FeatureVec::Routines] = static_cast<int32_t>(Routines.size());
  F.C[FeatureVec::Decls] = static_cast<int32_t>(D.decls().size());
  for (const Routine *R : Routines) {
    forEachStmt(R->Body, [&](const Stmt &S) {
      switch (S.getKind()) {
      case Stmt::Kind::Assign:
        ++F.C[FeatureVec::Assign];
        break;
      case Stmt::Kind::If:
        ++F.C[FeatureVec::If];
        break;
      case Stmt::Kind::Repeat:
        ++F.C[FeatureVec::Repeat];
        break;
      case Stmt::Kind::ExitWhen:
        ++F.C[FeatureVec::Exit];
        break;
      case Stmt::Kind::Input:
        F.C[FeatureVec::InputArity] +=
            static_cast<int32_t>(cast<InputStmt>(&S)->getTargets().size());
        break;
      case Stmt::Kind::Output:
        F.C[FeatureVec::OutputArity] +=
            static_cast<int32_t>(cast<OutputStmt>(&S)->getValues().size());
        break;
      case Stmt::Kind::Constrain:
        ++F.C[FeatureVec::Constrain];
        break;
      case Stmt::Kind::Assert:
        ++F.C[FeatureVec::Assert];
        break;
      }
      forEachExpr(S, [&](const Expr &E) {
        switch (E.getKind()) {
        case Expr::Kind::Binary:
          ++F.C[binarySlot(cast<BinaryExpr>(&E)->getOp())];
          break;
        case Expr::Kind::Unary:
          // Legacy keyed operators by spelling: unary negation shares
          // the "-" key with binary subtraction.
          ++F.C[cast<UnaryExpr>(&E)->getOp() == UnaryOp::Not
                    ? FeatureVec::OpNot
                    : FeatureVec::OpSubOrNeg];
          break;
        case Expr::Kind::MemRef:
          ++F.C[FeatureVec::Mem];
          break;
        case Expr::Kind::Call:
          ++F.C[FeatureVec::Call];
          break;
        case Expr::Kind::IntLit:
          ++F.C[FeatureVec::Lit];
          break;
        default:
          break;
        }
      });
    });
  }
  return F;
}

//===----------------------------------------------------------------------===//
// Interner: arena and hash-consing
//===----------------------------------------------------------------------===//

Interner &Interner::local() {
  thread_local Interner I;
  return I;
}

Interner::SymId Interner::symbol(const std::string &S) {
  auto [It, Inserted] = Syms.emplace(S, static_cast<SymId>(SymNames.size()));
  if (Inserted)
    SymNames.push_back(S);
  return It->second;
}

namespace {

uint64_t fnvMix(uint64_t H, uint64_t V) {
  for (int I = 0; I < 8; ++I) {
    H ^= (V >> (I * 8)) & 0xFF;
    H *= 1099511628211ULL;
  }
  return H;
}

constexpr uint64_t FnvBasis = 14695981039346656037ULL;

} // namespace

Interner::NodeRef Interner::internNode(Node::K Kind, uint8_t Op, int64_t Value,
                                       std::vector<NodeRef> Kids) {
  // Shallow structural hash: children are already interned, so their refs
  // stand in for their whole subtrees. O(1) per node.
  uint64_t H = fnvMix(FnvBasis, static_cast<uint64_t>(Kind));
  H = fnvMix(H, Op);
  H = fnvMix(H, static_cast<uint64_t>(Value));
  H = fnvMix(H, Kids.size());
  for (NodeRef K : Kids)
    H = fnvMix(H, K);

  auto [It, Inserted] = Buckets.try_emplace(H, NoNode);
  if (!Inserted) {
    for (NodeRef R = It->second; R != NoNode; R = Nodes[R].Next) {
      const Node &N = Nodes[R];
      if (N.Hash == H && N.Kind == Kind && N.Op == Op && N.Value == Value &&
          N.Kids == Kids)
        return R;
    }
  }
  NodeRef R = static_cast<NodeRef>(Nodes.size());
  Nodes.push_back(Node{Kind, Op, Value, H, It->second, std::move(Kids)});
  It->second = R;
  return R;
}

Interner::NodeRef Interner::intern(const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
    return internNode(Node::K::IntLit, 0, cast<IntLit>(&E)->getValue(), {});
  case Expr::Kind::CharLit:
    return internNode(Node::K::CharLit, 0, cast<CharLit>(&E)->getValue(), {});
  case Expr::Kind::VarRef:
    return internNode(Node::K::VarRef, 0,
                      symbol(cast<VarRef>(&E)->getName()), {});
  case Expr::Kind::MemRef:
    return internNode(Node::K::MemRef, 0, 0,
                      {intern(*cast<MemRef>(&E)->getAddress())});
  case Expr::Kind::Call:
    return internNode(Node::K::CallE, 0,
                      symbol(cast<CallExpr>(&E)->getCallee()), {});
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    return internNode(Node::K::Unary, static_cast<uint8_t>(U->getOp()), 0,
                      {intern(*U->getOperand())});
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    NodeRef L = intern(*B->getLHS());
    NodeRef R = intern(*B->getRHS());
    return internNode(Node::K::Binary, static_cast<uint8_t>(B->getOp()), 0,
                      {L, R});
  }
  }
  assert(false && "unknown expression kind");
  return NoNode;
}

Interner::NodeRef Interner::intern(const Stmt &S) {
  switch (S.getKind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    NodeRef T = intern(*A->getTarget());
    NodeRef V = intern(*A->getValue());
    return internNode(Node::K::AssignS, 0, 0, {T, V});
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(&S);
    NodeRef C = intern(*If->getCond());
    NodeRef T = intern(If->getThen());
    NodeRef E = intern(If->getElse());
    return internNode(Node::K::IfS, 0, 0, {C, T, E});
  }
  case Stmt::Kind::Repeat:
    return internNode(Node::K::RepeatS, 0, 0,
                      {intern(cast<RepeatStmt>(&S)->getBody())});
  case Stmt::Kind::ExitWhen:
    return internNode(Node::K::ExitWhenS, 0, 0,
                      {intern(*cast<ExitWhenStmt>(&S)->getCond())});
  case Stmt::Kind::Input: {
    const auto *In = cast<InputStmt>(&S);
    std::vector<NodeRef> Targets;
    Targets.reserve(In->getTargets().size());
    for (const std::string &T : In->getTargets())
      Targets.push_back(symbol(T)); // SymIds, per the Node contract.
    return internNode(Node::K::InputS, 0, 0, std::move(Targets));
  }
  case Stmt::Kind::Output: {
    const auto *Out = cast<OutputStmt>(&S);
    std::vector<NodeRef> Values;
    Values.reserve(Out->getValues().size());
    for (const ExprPtr &V : Out->getValues())
      Values.push_back(intern(*V));
    return internNode(Node::K::OutputS, 0, 0, std::move(Values));
  }
  case Stmt::Kind::Constrain: {
    const auto *C = cast<ConstrainStmt>(&S);
    return internNode(Node::K::ConstrainS, 0, symbol(C->getTag()),
                      {intern(*C->getPred())});
  }
  case Stmt::Kind::Assert:
    return internNode(Node::K::AssertS, 0, 0,
                      {intern(*cast<AssertStmt>(&S)->getPred())});
  }
  assert(false && "unknown statement kind");
  return NoNode;
}

Interner::NodeRef Interner::intern(const StmtList &L) {
  std::vector<NodeRef> Kids;
  Kids.reserve(L.size());
  for (const StmtPtr &S : L)
    Kids.push_back(intern(*S));
  return internNode(Node::K::List, 0, 0, std::move(Kids));
}

uint64_t Interner::identity(const Description &D) {
  // Arena soft cap, checked only at this entry point: a reset during a
  // recursive intern would invalidate sibling NodeRefs held by callers.
  // NodeRefs are transient by contract, so resetting here only costs warm
  // caches, never correctness.
  if (Nodes.size() > SoftNodeCap)
    reset();
  // Everything the canonical fingerprint can observe: the entry routine
  // choice, every routine's name and (interned) body in order, and the
  // declared-name set that classifies first mentions. Decl types and
  // dead text the matcher never sees are included anyway via names —
  // over-approximating identity only costs memo hits, never correctness.
  uint64_t H = FnvBasis;
  const Routine *Entry = D.entryRoutine();
  H = fnvMix(H, Entry ? symbol(Entry->Name) + 1 : 0);
  for (const Section &Sec : D.getSections())
    for (const SectionItem &It : Sec.Items) {
      if (It.K == SectionItem::Kind::Decl) {
        H = fnvMix(H, 0x9E3779B97F4A7C15ULL);
        H = fnvMix(H, symbol(It.D.Name));
      } else {
        H = fnvMix(H, 0xC2B2AE3D27D4EB4FULL);
        H = fnvMix(H, symbol(It.R->Name));
        H = fnvMix(H, intern(It.R->Body));
      }
    }
  return H;
}

void Interner::reset() {
  Nodes.clear();
  Buckets.clear();
  Syms.clear();
  SymNames.clear();
  FpMemo.clear();
}

//===----------------------------------------------------------------------===//
// Canonical fingerprint over the interned DAG
//===----------------------------------------------------------------------===//

namespace {

/// Streams the same canonical token stream as the legacy map-based
/// Canonicalizer (search/Canon.cpp), but over interned nodes with a flat
/// vector keyed by SymId as the rename map. Tags and mixing order are
/// byte-identical, so fingerprint values are unchanged.
class DagCanonicalizer {
public:
  DagCanonicalizer(Interner &I, const Description &D) : I(I), D(D) {}

  uint64_t run() {
    const Routine *Entry = D.entryRoutine();
    if (!Entry) {
      mix(Tag::NoEntry);
      return H;
    }
    // Pre-intern every routine body and classify every declared name; the
    // walk below then never consults the description again.
    for (const Routine *R : D.routines()) {
      Interner::SymId S = I.symbol(R->Name);
      // First routine with a name wins, like Description::findRoutine.
      if (kindOf(S) == NameKind::Unknown) {
        setKind(S, NameKind::RoutineName);
        RoutineBody.emplace_back(S, I.intern(R->Body));
      }
    }
    for (const Decl *Dl : D.decls()) {
      Interner::SymId S = I.symbol(Dl->Name);
      if (kindOf(S) == NameKind::Unknown)
        setKind(S, NameKind::DeclaredVar);
    }

    nameId(I.symbol(Entry->Name));
    while (NextToExpand < Mentioned.size()) {
      Interner::SymId S = Mentioned[NextToExpand++];
      const Interner::NodeRef *Body = bodyOf(S);
      if (!Body)
        continue;
      mix(Tag::RoutineBody);
      walkList(*Body);
      mix(Tag::End);
    }
    return H;
  }

private:
  // Tag values must stay identical to the legacy Canonicalizer's.
  enum class Tag : uint64_t {
    NoEntry = 1,
    RoutineBody,
    End,
    Assign,
    AssignToMem,
    If,
    Else,
    Repeat,
    ExitWhen,
    Input,
    Output,
    Constrain,
    Assert,
    IntLit,
    CharLit,
    VarRef,
    MemRef,
    Call,
    Unary,
    Binary,
    DeclaredVar,
    UndeclaredVar,
    RoutineName,
  };

  enum class NameKind : uint8_t { Unknown, RoutineName, DeclaredVar };

  void mix(uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xFF;
      H *= 1099511628211ULL;
    }
  }
  void mix(Tag T) { mix(static_cast<uint64_t>(T)); }

  /// Flat-vector accessors, grown on demand: SymIds are small dense ints,
  /// so the rename map and the kind table are plain indexed loads instead
  /// of ordered string lookups.
  void growTo(Interner::SymId S) {
    if (S >= CanonId.size()) {
      CanonId.resize(S + 1, NoId);
      Kind.resize(S + 1, NameKind::Unknown);
    }
  }
  NameKind kindOf(Interner::SymId S) {
    growTo(S);
    return Kind[S];
  }
  void setKind(Interner::SymId S, NameKind K) {
    growTo(S);
    Kind[S] = K;
  }
  const Interner::NodeRef *bodyOf(Interner::SymId S) const {
    for (const auto &[Sym, Body] : RoutineBody)
      if (Sym == S)
        return &Body;
    return nullptr;
  }

  void nameId(Interner::SymId S) {
    growTo(S);
    if (CanonId[S] == NoId) {
      CanonId[S] = static_cast<uint32_t>(Mentioned.size());
      Mentioned.push_back(S);
      switch (Kind[S]) {
      case NameKind::RoutineName:
        mix(Tag::RoutineName);
        break;
      case NameKind::DeclaredVar:
        mix(Tag::DeclaredVar);
        break;
      case NameKind::Unknown:
        mix(Tag::UndeclaredVar);
        break;
      }
    }
    mix(CanonId[S]);
  }

  void walk(Interner::NodeRef R) {
    const Interner::Node &N = I.node(R);
    using K = Interner::Node::K;
    switch (N.Kind) {
    case K::IntLit:
      mix(Tag::IntLit);
      mix(static_cast<uint64_t>(N.Value));
      return;
    case K::CharLit:
      mix(Tag::CharLit);
      mix(static_cast<uint64_t>(N.Value));
      return;
    case K::VarRef:
      mix(Tag::VarRef);
      nameId(static_cast<Interner::SymId>(N.Value));
      return;
    case K::MemRef:
      mix(Tag::MemRef);
      walk(N.Kids[0]);
      return;
    case K::CallE:
      mix(Tag::Call);
      nameId(static_cast<Interner::SymId>(N.Value));
      return;
    case K::Unary:
      mix(Tag::Unary);
      mix(N.Op);
      walk(N.Kids[0]);
      return;
    case K::Binary:
      mix(Tag::Binary);
      mix(N.Op);
      walk(N.Kids[0]);
      walk(N.Kids[1]);
      return;
    case K::AssignS:
      mix(I.node(N.Kids[0]).Kind == K::MemRef ? Tag::AssignToMem
                                              : Tag::Assign);
      walk(N.Kids[0]);
      walk(N.Kids[1]);
      return;
    case K::IfS:
      mix(Tag::If);
      walk(N.Kids[0]);
      walkList(N.Kids[1]);
      mix(Tag::Else);
      walkList(N.Kids[2]);
      mix(Tag::End);
      return;
    case K::RepeatS:
      mix(Tag::Repeat);
      walkList(N.Kids[0]);
      mix(Tag::End);
      return;
    case K::ExitWhenS:
      mix(Tag::ExitWhen);
      walk(N.Kids[0]);
      return;
    case K::InputS:
      mix(Tag::Input);
      mix(N.Kids.size());
      for (Interner::NodeRef T : N.Kids)
        nameId(static_cast<Interner::SymId>(T));
      return;
    case K::OutputS:
      mix(Tag::Output);
      mix(N.Kids.size());
      for (Interner::NodeRef V : N.Kids)
        walk(V);
      return;
    case K::ConstrainS:
      mix(Tag::Constrain);
      for (char Ch : I.symbolName(static_cast<Interner::SymId>(N.Value)))
        mix(static_cast<uint64_t>(Ch));
      walk(N.Kids[0]);
      return;
    case K::AssertS:
      mix(Tag::Assert);
      walk(N.Kids[0]);
      return;
    case K::List:
      walkList(R);
      return;
    }
  }

  void walkList(Interner::NodeRef R) {
    const Interner::Node &N = I.node(R);
    for (Interner::NodeRef S : N.Kids)
      walk(S);
  }

  static constexpr uint32_t NoId = ~uint32_t(0);

  Interner &I;
  const Description &D;
  uint64_t H = FnvBasis;
  std::vector<uint32_t> CanonId;
  std::vector<NameKind> Kind;
  std::vector<Interner::SymId> Mentioned;
  std::vector<std::pair<Interner::SymId, Interner::NodeRef>> RoutineBody;
  size_t NextToExpand = 0;
};

} // namespace

uint64_t Interner::canonicalWalk(const Description &D) {
  return DagCanonicalizer(*this, D).run();
}

uint64_t Interner::canonicalFingerprint(const Description &D) {
  uint64_t Id = identity(D);
  auto It = FpMemo.find(Id);
  if (It != FpMemo.end()) {
    ++MemoHits;
    return It->second;
  }
  uint64_t Fp = canonicalWalk(D);
  FpMemo.emplace(Id, Fp);
  return Fp;
}

uint64_t isdl::canonicalFingerprint(const Description &D) {
  return Interner::local().canonicalFingerprint(D);
}

//===----------------------------------------------------------------------===//
// DescHandle
//===----------------------------------------------------------------------===//

Description DescHandle::take() && {
  assert(P && "take() on an empty handle");
  Description Out = P.use_count() == 1 ? std::move(P->D) : P->D.clone();
  P.reset();
  return Out;
}

uint64_t DescHandle::fingerprint() const {
  assert(P && "fingerprint() on an empty handle");
  if (P->FpReady.load(std::memory_order_acquire))
    return P->Fp.load(std::memory_order_relaxed);
  // Idempotent recompute: a racing thread lands on the same value.
  uint64_t Fp = isdl::canonicalFingerprint(P->D);
  P->Fp.store(Fp, std::memory_order_relaxed);
  P->FpReady.store(true, std::memory_order_release);
  return Fp;
}

const FeatureVec &DescHandle::features() const {
  assert(P && "features() on an empty handle");
  if (!P->FVReady.load(std::memory_order_acquire)) {
    P->FV = FeatureVec::of(P->D);
    P->FVReady.store(true, std::memory_order_release);
  }
  return P->FV;
}
