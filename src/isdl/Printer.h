//===- Printer.h - Pretty-printer for ISDL ASTs -----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders descriptions back to the notation of the paper's figures. The
/// printer is the inverse of the parser up to whitespace and comments:
/// parse(print(D)) is structurally equal to D (round-trip property tests
/// rely on this).
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_ISDL_PRINTER_H
#define EXTRA_ISDL_PRINTER_H

#include "isdl/AST.h"

#include <string>

namespace extra {
namespace isdl {

/// Renders an expression with minimal parentheses.
std::string printExpr(const Expr &E);

/// Renders one statement (multi-line for if/repeat) at \p Indent levels.
std::string printStmt(const Stmt &S, unsigned Indent = 0);

/// Renders a statement list at \p Indent levels.
std::string printStmts(const StmtList &Stmts, unsigned Indent = 0);

/// Renders a whole description in the style of the paper's figures.
std::string printDescription(const Description &D);

} // namespace isdl
} // namespace extra

#endif // EXTRA_ISDL_PRINTER_H
