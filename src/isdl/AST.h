//===- AST.h - ISPS-like description language AST ---------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the ISPS-like notation the paper uses to describe
/// both high-level language operators and exotic machine instructions
/// (Figures 2 through 5). A Description is a named collection of sections;
/// a section holds register/variable declarations and zero-argument
/// routines; routine bodies are statement lists over a small expression
/// language with byte memory access through the array `Mb`.
///
/// The hierarchy uses LLVM-style kind tags with isa/cast/dyn_cast-style
/// helpers instead of RTTI, and unique_ptr ownership throughout.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_ISDL_AST_H
#define EXTRA_ISDL_AST_H

#include "support/Diagnostics.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace extra {
namespace isdl {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// The declared type of a register, variable, or routine result.
///
/// Registers carry explicit bit ranges (`di<15:0>`, flags are `f<>`, one
/// bit). Language-operator descriptions use the abstract names `integer`
/// and `character` instead; the equivalence matcher derives range
/// constraints when an abstract variable is bound to a sized register.
struct TypeRef {
  enum class Kind {
    None,      ///< No declared type (routine with no result annotation).
    Integer,   ///< Abstract integer, unbounded at description level.
    Character, ///< Abstract character (one byte when interpreted).
    Bits,      ///< Sized register field `<Hi:Lo>`; `<>` is one bit.
  };

  Kind K = Kind::None;
  int Hi = 0; ///< High bit index, inclusive (Bits only).
  int Lo = 0; ///< Low bit index, inclusive (Bits only).

  static TypeRef none() { return TypeRef(); }
  static TypeRef integer() { return TypeRef{Kind::Integer, 0, 0}; }
  static TypeRef character() { return TypeRef{Kind::Character, 0, 0}; }
  static TypeRef bits(int Hi, int Lo) { return TypeRef{Kind::Bits, Hi, Lo}; }
  static TypeRef flag() { return bits(0, 0); }

  bool isBits() const { return K == Kind::Bits; }
  bool isFlag() const { return isBits() && Hi == 0 && Lo == 0; }

  /// Width in bits, or 0 when no bound is declared.
  unsigned widthInBits() const {
    if (K == Kind::Bits)
      return static_cast<unsigned>(Hi - Lo + 1);
    if (K == Kind::Character)
      return 8;
    return 0;
  }

  bool operator==(const TypeRef &O) const {
    return K == O.K && (K != Kind::Bits || (Hi == O.Hi && Lo == O.Lo));
  }

  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class for ISDL expressions.
class Expr {
public:
  enum class Kind {
    IntLit,
    CharLit,
    VarRef,
    MemRef,
    Call,
    Unary,
    Binary,
  };

  virtual ~Expr() = default;

  Kind getKind() const { return K; }
  SourceLoc getLoc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  /// Deep copy, preserving structure (locations are copied verbatim).
  ExprPtr clone() const;

protected:
  explicit Expr(Kind K) : K(K) {}

private:
  Kind K;
  SourceLoc Loc;
};

/// Integer literal.
class IntLit : public Expr {
public:
  explicit IntLit(int64_t Value) : Expr(Kind::IntLit), Value(Value) {}

  int64_t getValue() const { return Value; }
  void setValue(int64_t V) { Value = V; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// Character literal, e.g. 'a'.
class CharLit : public Expr {
public:
  explicit CharLit(uint8_t Value) : Expr(Kind::CharLit), Value(Value) {}

  uint8_t getValue() const { return Value; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::CharLit; }

private:
  uint8_t Value;
};

/// Reference to a declared register or variable, e.g. `Src.Base` or `di`.
class VarRef : public Expr {
public:
  explicit VarRef(std::string Name) : Expr(Kind::VarRef), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  static bool classof(const Expr *E) { return E->getKind() == Kind::VarRef; }

private:
  std::string Name;
};

/// Main-memory access `Mb[Address]` (one byte, per the paper's model).
class MemRef : public Expr {
public:
  explicit MemRef(ExprPtr Address)
      : Expr(Kind::MemRef), Address(std::move(Address)) {}

  const Expr *getAddress() const { return Address.get(); }
  Expr *getAddress() { return Address.get(); }
  ExprPtr takeAddress() { return std::move(Address); }
  void setAddress(ExprPtr A) { Address = std::move(A); }

  static bool classof(const Expr *E) { return E->getKind() == Kind::MemRef; }

private:
  ExprPtr Address;
};

/// Zero-argument routine call, e.g. `read()` or `fetch()`. Per the paper's
/// restrictions (call-by-value, no aliasing), routines take no reference
/// parameters; operand flow is through description-level state.
class CallExpr : public Expr {
public:
  explicit CallExpr(std::string Callee)
      : Expr(Kind::Call), Callee(std::move(Callee)) {}

  const std::string &getCallee() const { return Callee; }
  void setCallee(std::string C) { Callee = std::move(C); }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Call; }

private:
  std::string Callee;
};

/// Unary operator kinds.
enum class UnaryOp { Not, Neg };

/// Unary expression: `not e` or `-e`.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand)
      : Expr(Kind::Unary), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp getOp() const { return Op; }
  const Expr *getOperand() const { return Operand.get(); }
  Expr *getOperand() { return Operand.get(); }
  ExprPtr takeOperand() { return std::move(Operand); }
  void setOperand(ExprPtr E) { Operand = std::move(E); }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Operand;
};

/// Binary operator kinds, covering arithmetic, logical and relational
/// operators used by the paper's descriptions.
enum class BinaryOp { Add, Sub, Mul, Div, And, Or, Eq, Ne, Lt, Le, Gt, Ge };

/// True for =, <>, <, <=, >, >=.
bool isRelational(BinaryOp Op);
/// Negates a relational operator (= becomes <>, < becomes >=, ...).
BinaryOp negateRelational(BinaryOp Op);
/// Mirrors a relational operator across its operands (< becomes >, ...).
BinaryOp swapRelational(BinaryOp Op);
/// The source spelling of an operator ("+", "and", "=", ...).
const char *spelling(BinaryOp Op);
const char *spelling(UnaryOp Op);

/// Binary expression.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(Kind::Binary), Op(Op), LHS(std::move(LHS)), RHS(std::move(RHS)) {}

  BinaryOp getOp() const { return Op; }
  void setOp(BinaryOp O) { Op = O; }
  const Expr *getLHS() const { return LHS.get(); }
  Expr *getLHS() { return LHS.get(); }
  const Expr *getRHS() const { return RHS.get(); }
  Expr *getRHS() { return RHS.get(); }
  ExprPtr takeLHS() { return std::move(LHS); }
  ExprPtr takeRHS() { return std::move(RHS); }
  void setLHS(ExprPtr E) { LHS = std::move(E); }
  void setRHS(ExprPtr E) { RHS = std::move(E); }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }

private:
  BinaryOp Op;
  ExprPtr LHS, RHS;
};

//===----------------------------------------------------------------------===//
// LLVM-style casting helpers
//===----------------------------------------------------------------------===//

template <typename To, typename From> bool isa(const From *Node) {
  assert(Node && "isa<> on null node");
  return To::classof(Node);
}

template <typename To, typename From> To *cast(From *Node) {
  assert(isa<To>(Node) && "cast<> to incompatible kind");
  return static_cast<To *>(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast<> to incompatible kind");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> To *dyn_cast(From *Node) {
  return Node && To::classof(Node) ? static_cast<To *>(Node) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return Node && To::classof(Node) ? static_cast<const To *>(Node) : nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

/// Deep-copies a statement list.
StmtList cloneStmts(const StmtList &Stmts);

/// Base class for ISDL statements.
class Stmt {
public:
  enum class Kind {
    Assign,
    If,
    Repeat,
    ExitWhen,
    Input,
    Output,
    Constrain,
    Assert,
  };

  virtual ~Stmt() = default;

  Kind getKind() const { return K; }
  SourceLoc getLoc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  /// Deep copy.
  StmtPtr clone() const;

protected:
  explicit Stmt(Kind K) : K(K) {}

private:
  Kind K;
  SourceLoc Loc;
};

/// Assignment `target <- value;` where target is a VarRef or MemRef.
class AssignStmt : public Stmt {
public:
  AssignStmt(ExprPtr Target, ExprPtr Value)
      : Stmt(Kind::Assign), Target(std::move(Target)), Value(std::move(Value)) {
    assert((isa<VarRef>(this->Target.get()) ||
            isa<MemRef>(this->Target.get())) &&
           "assignment target must be a variable or memory reference");
  }

  const Expr *getTarget() const { return Target.get(); }
  Expr *getTarget() { return Target.get(); }
  const Expr *getValue() const { return Value.get(); }
  Expr *getValue() { return Value.get(); }
  ExprPtr takeValue() { return std::move(Value); }
  void setValue(ExprPtr V) { Value = std::move(V); }
  void setTarget(ExprPtr T) { Target = std::move(T); }

  /// If the target is a plain variable, its name; otherwise empty.
  std::string targetVarName() const {
    if (const auto *V = dyn_cast<VarRef>(Target.get()))
      return V->getName();
    return std::string();
  }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }

private:
  ExprPtr Target;
  ExprPtr Value;
};

/// Conditional `if c then ... else ... end_if`.
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtList Then, StmtList Else)
      : Stmt(Kind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr *getCond() const { return Cond.get(); }
  Expr *getCond() { return Cond.get(); }
  ExprPtr takeCond() { return std::move(Cond); }
  void setCond(ExprPtr C) { Cond = std::move(C); }

  StmtList &getThen() { return Then; }
  const StmtList &getThen() const { return Then; }
  StmtList &getElse() { return Else; }
  const StmtList &getElse() const { return Else; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtList Then;
  StmtList Else;
};

/// Loop `repeat ... end_repeat`, exited only through exit_when.
class RepeatStmt : public Stmt {
public:
  explicit RepeatStmt(StmtList Body) : Stmt(Kind::Repeat), Body(std::move(Body)) {}

  StmtList &getBody() { return Body; }
  const StmtList &getBody() const { return Body; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Repeat; }

private:
  StmtList Body;
};

/// Loop exit `exit_when cond;` — leaves the innermost repeat when cond is
/// true (nonzero).
class ExitWhenStmt : public Stmt {
public:
  explicit ExitWhenStmt(ExprPtr Cond) : Stmt(Kind::ExitWhen), Cond(std::move(Cond)) {}

  const Expr *getCond() const { return Cond.get(); }
  Expr *getCond() { return Cond.get(); }
  ExprPtr takeCond() { return std::move(Cond); }
  void setCond(ExprPtr C) { Cond = std::move(C); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::ExitWhen; }

private:
  ExprPtr Cond;
};

/// Explicit operand intake `input (a, b, c);` — the description's formal
/// operands, bound positionally during matching.
class InputStmt : public Stmt {
public:
  explicit InputStmt(std::vector<std::string> Targets)
      : Stmt(Kind::Input), Targets(std::move(Targets)) {}

  std::vector<std::string> &getTargets() { return Targets; }
  const std::vector<std::string> &getTargets() const { return Targets; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Input; }

private:
  std::vector<std::string> Targets;
};

/// Explicit result emission `output (e1, e2);` — the description's results,
/// bound positionally during matching.
class OutputStmt : public Stmt {
public:
  explicit OutputStmt(std::vector<ExprPtr> Values)
      : Stmt(Kind::Output), Values(std::move(Values)) {}

  std::vector<ExprPtr> &getValues() { return Values; }
  const std::vector<ExprPtr> &getValues() const { return Values; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Output; }

private:
  std::vector<ExprPtr> Values;
};

/// Constraint annotation carried in the description text (§3: "constraints
/// and auxiliary assertions [are] created and manipulated by
/// transformations like any other part of the description text").
///
/// The Tag names the constraint family (value, range, offset, relation);
/// Pred is its predicate over description operands.
class ConstrainStmt : public Stmt {
public:
  ConstrainStmt(std::string Tag, ExprPtr Pred)
      : Stmt(Kind::Constrain), Tag(std::move(Tag)), Pred(std::move(Pred)) {}

  const std::string &getTag() const { return Tag; }
  const Expr *getPred() const { return Pred.get(); }
  Expr *getPred() { return Pred.get(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Constrain; }

private:
  std::string Tag;
  ExprPtr Pred;
};

/// Auxiliary assertion `assert e;` — a fact transformations may rely on.
class AssertStmt : public Stmt {
public:
  explicit AssertStmt(ExprPtr Pred) : Stmt(Kind::Assert), Pred(std::move(Pred)) {}

  const Expr *getPred() const { return Pred.get(); }
  Expr *getPred() { return Pred.get(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assert; }

private:
  ExprPtr Pred;
};

//===----------------------------------------------------------------------===//
// Declarations, routines, sections, descriptions
//===----------------------------------------------------------------------===//

/// A register or variable declaration within a section.
struct Decl {
  std::string Name;
  TypeRef Type;
  std::string Comment; ///< Trailing `!` comment from the source, if any.
  SourceLoc Loc;
};

/// A zero-argument routine, e.g. `fetch()<7:0> := begin ... end`.
///
/// A routine returns a value by assigning to its own name (Pascal style),
/// as in `read <- Mb[Src.Base + Src.Index];`.
struct Routine {
  std::string Name;
  TypeRef ResultType;
  StmtList Body;
  std::string Comment;
  SourceLoc Loc;

  Routine() = default;
  Routine(std::string Name, TypeRef ResultType, StmtList Body)
      : Name(std::move(Name)), ResultType(ResultType), Body(std::move(Body)) {}

  Routine clone() const;
};

/// One item of a section, preserving source order of declarations and
/// routines (Figure 3 interleaves them).
///
/// Routines are heap-allocated so that `Routine*` pointers handed out by
/// Description lookups stay valid when the item vector grows (e.g. when
/// a transformation allocates a temporary declaration).
struct SectionItem {
  enum class Kind { Decl, Routine };
  Kind K;
  Decl D;                     ///< Valid when K == Kind::Decl.
  std::unique_ptr<Routine> R; ///< Valid when K == Kind::Routine.

  static SectionItem decl(Decl D) {
    SectionItem I;
    I.K = Kind::Decl;
    I.D = std::move(D);
    return I;
  }
  static SectionItem routine(Routine R) {
    SectionItem I;
    I.K = Kind::Routine;
    I.R = std::make_unique<Routine>(std::move(R));
    return I;
  }
  SectionItem clone() const;
};

/// A `** NAME **` section grouping declarations and routines.
struct Section {
  std::string Name;
  std::vector<SectionItem> Items;

  Section clone() const;
};

/// A complete description of a language operator or machine instruction.
class Description {
public:
  Description() = default;
  explicit Description(std::string Name) : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  std::vector<Section> &getSections() { return Sections; }
  const std::vector<Section> &getSections() const { return Sections; }

  /// Finds a routine by name anywhere in the description, or null.
  Routine *findRoutine(const std::string &Name);
  const Routine *findRoutine(const std::string &Name) const;

  /// Finds a declaration by name anywhere in the description, or null.
  Decl *findDecl(const std::string &Name);
  const Decl *findDecl(const std::string &Name) const;

  /// The entry routine: the unique routine whose name ends in ".execute"
  /// or ".operation", falling back to the last routine declared. Null for
  /// an empty description.
  Routine *entryRoutine();
  const Routine *entryRoutine() const;

  /// All routines in declaration order.
  std::vector<Routine *> routines();
  std::vector<const Routine *> routines() const;

  /// All declarations in declaration order.
  std::vector<const Decl *> decls() const;

  /// Finds the section with the given name, or null.
  Section *findSection(const std::string &Name);

  /// Adds a declaration to the section named \p SectionName, creating the
  /// section if needed. Returns the new declaration.
  Decl &addDecl(const std::string &SectionName, Decl D);

  /// Removes the declaration named \p Name; returns true if found.
  bool removeDecl(const std::string &Name);

  Description clone() const;

private:
  std::string Name;
  std::vector<Section> Sections;
};

//===----------------------------------------------------------------------===//
// Expression & statement construction helpers
//===----------------------------------------------------------------------===//

/// Convenience builders used heavily by transformations and tests.
ExprPtr intLit(int64_t V);
ExprPtr charLit(uint8_t V);
ExprPtr varRef(std::string Name);
ExprPtr memRef(ExprPtr Address);
ExprPtr call(std::string Callee);
ExprPtr unary(UnaryOp Op, ExprPtr E);
ExprPtr binary(BinaryOp Op, ExprPtr L, ExprPtr R);

StmtPtr assign(std::string Var, ExprPtr Value);
StmtPtr assignMem(ExprPtr Address, ExprPtr Value);
StmtPtr ifStmt(ExprPtr Cond, StmtList Then, StmtList Else = {});
StmtPtr repeatStmt(StmtList Body);
StmtPtr exitWhen(ExprPtr Cond);
StmtPtr inputStmt(std::vector<std::string> Targets);
StmtPtr outputStmt(std::vector<ExprPtr> Values);

} // namespace isdl
} // namespace extra

#endif // EXTRA_ISDL_AST_H
