//===- Validate.cpp - Description well-formedness checks --------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/Validate.h"

#include "isdl/Traverse.h"
#include "support/FaultInjection.h"

#include <set>

using namespace extra;
using namespace extra::isdl;

bool isdl::validate(const Description &D, DiagnosticEngine &Diags) {
  // Fault-injection site: a synthetic semantic rejection, reported as an
  // ordinary diagnostic.
  if (FaultInjector::instance().shouldFail("validate")) {
    Diags.error("injected fault: validate");
    return false;
  }
  unsigned ErrorsBefore = Diags.errorCount();

  std::set<std::string> DeclNames;
  std::set<std::string> RoutineNames;
  for (const Decl *Dl : D.decls()) {
    if (!DeclNames.insert(Dl->Name).second)
      Diags.error(Dl->Loc, "duplicate declaration of '" + Dl->Name + "'");
    if (Dl->Type.K == TypeRef::Kind::Bits &&
        (Dl->Type.Hi < Dl->Type.Lo || Dl->Type.Lo < 0 || Dl->Type.Hi > 63))
      Diags.error(Dl->Loc, "register '" + Dl->Name +
                               "' has an invalid bit range " +
                               Dl->Type.str());
  }
  for (const Routine *R : D.routines()) {
    if (!RoutineNames.insert(R->Name).second)
      Diags.error(R->Loc, "duplicate routine '" + R->Name + "'");
    if (DeclNames.count(R->Name))
      Diags.error(R->Loc,
                  "routine '" + R->Name + "' shadows a declaration");
  }

  if (!D.entryRoutine()) {
    Diags.error(SourceLoc(), "description '" + D.getName() +
                                 "' has no routines");
    return false;
  }

  for (const Routine *R : D.routines()) {
    // exit_when nesting check.
    std::function<void(const StmtList &, unsigned)> CheckExits =
        [&](const StmtList &Stmts, unsigned LoopDepth) {
          for (const StmtPtr &S : Stmts) {
            switch (S->getKind()) {
            case Stmt::Kind::ExitWhen:
              if (LoopDepth == 0)
                Diags.error(S->getLoc(),
                            "exit_when outside of a repeat loop in routine '" +
                                R->Name + "'");
              break;
            case Stmt::Kind::Repeat:
              CheckExits(cast<RepeatStmt>(S.get())->getBody(), LoopDepth + 1);
              break;
            case Stmt::Kind::If:
              CheckExits(cast<IfStmt>(S.get())->getThen(), LoopDepth);
              CheckExits(cast<IfStmt>(S.get())->getElse(), LoopDepth);
              break;
            default:
              break;
            }
          }
        };
    CheckExits(R->Body, 0);

    // Name resolution: every VarRef must be a declaration or this routine's
    // own name (result assignment); every call must name a routine.
    forEachStmt(R->Body, [&](const Stmt &S) {
      forEachExpr(S, [&](const Expr &E) {
        if (const auto *V = dyn_cast<VarRef>(&E)) {
          const std::string &N = V->getName();
          if (!DeclNames.count(N) && N != R->Name) {
            if (RoutineNames.count(N))
              Diags.error(E.getLoc(), "routine '" + N +
                                          "' used as a variable in '" +
                                          R->Name + "'");
            else
              Diags.error(E.getLoc(), "undeclared name '" + N +
                                          "' in routine '" + R->Name + "'");
          }
        } else if (const auto *C = dyn_cast<CallExpr>(&E)) {
          if (!RoutineNames.count(C->getCallee()))
            Diags.error(E.getLoc(), "call of unknown routine '" +
                                        C->getCallee() + "' in '" + R->Name +
                                        "'");
        }
      });
      if (const auto *In = dyn_cast<InputStmt>(&S)) {
        for (const std::string &T : In->getTargets())
          if (!DeclNames.count(T))
            Diags.error(S.getLoc(), "undeclared input operand '" + T + "'");
      }
      // Aliasing backdoor: assigning some *other* routine's name.
      if (const auto *A = dyn_cast<AssignStmt>(&S)) {
        std::string Target = A->targetVarName();
        if (!Target.empty() && RoutineNames.count(Target) &&
            Target != R->Name)
          Diags.error(S.getLoc(), "routine '" + R->Name +
                                      "' assigns result of routine '" +
                                      Target + "'");
      }
    });
  }

  return Diags.errorCount() == ErrorsBefore;
}
