//===- Printer.cpp - Pretty-printer for ISDL ASTs ---------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/Printer.h"

using namespace extra;
using namespace extra::isdl;

namespace {

/// Precedence levels used to decide where parentheses are required.
/// Larger binds tighter.
enum Precedence {
  PrecOr = 1,
  PrecAnd = 2,
  PrecNot = 3,
  PrecRel = 4,
  PrecAdd = 5,
  PrecMul = 6,
  PrecNeg = 7,
  PrecPrimary = 8,
};

int precedenceOf(const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::CharLit:
  case Expr::Kind::VarRef:
  case Expr::Kind::MemRef:
  case Expr::Kind::Call:
    return PrecPrimary;
  case Expr::Kind::Unary:
    return cast<UnaryExpr>(&E)->getOp() == UnaryOp::Not ? PrecNot : PrecNeg;
  case Expr::Kind::Binary:
    switch (cast<BinaryExpr>(&E)->getOp()) {
    case BinaryOp::Or:
      return PrecOr;
    case BinaryOp::And:
      return PrecAnd;
    case BinaryOp::Add:
    case BinaryOp::Sub:
      return PrecAdd;
    case BinaryOp::Mul:
    case BinaryOp::Div:
      return PrecMul;
    default:
      return PrecRel;
    }
  }
  return PrecPrimary;
}

void printExprInto(const Expr &E, int MinPrec, std::string &Out) {
  int Prec = precedenceOf(E);
  bool Paren = Prec < MinPrec;
  if (Paren)
    Out += '(';

  switch (E.getKind()) {
  case Expr::Kind::IntLit:
    Out += std::to_string(cast<IntLit>(&E)->getValue());
    break;
  case Expr::Kind::CharLit: {
    Out += '\'';
    Out += static_cast<char>(cast<CharLit>(&E)->getValue());
    Out += '\'';
    break;
  }
  case Expr::Kind::VarRef:
    Out += cast<VarRef>(&E)->getName();
    break;
  case Expr::Kind::MemRef:
    Out += "Mb[";
    printExprInto(*cast<MemRef>(&E)->getAddress(), PrecOr, Out);
    Out += ']';
    break;
  case Expr::Kind::Call:
    Out += cast<CallExpr>(&E)->getCallee();
    Out += "()";
    break;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    if (U->getOp() == UnaryOp::Not) {
      Out += "not ";
      printExprInto(*U->getOperand(), PrecNot, Out);
    } else {
      Out += '-';
      printExprInto(*U->getOperand(), PrecNeg, Out);
    }
    break;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    // Subtraction and division are left-associative: the right operand of
    // `a - b - c` needs parens when it is itself additive.
    int LeftMin = Prec;
    int RightMin = (B->getOp() == BinaryOp::Sub || B->getOp() == BinaryOp::Div)
                       ? Prec + 1
                       : Prec;
    if (isRelational(B->getOp())) {
      // Relational operators are non-associative; operands sit one level up.
      LeftMin = PrecAdd;
      RightMin = PrecAdd;
    }
    printExprInto(*B->getLHS(), LeftMin, Out);
    Out += ' ';
    Out += spelling(B->getOp());
    Out += ' ';
    printExprInto(*B->getRHS(), RightMin, Out);
    break;
  }
  }

  if (Paren)
    Out += ')';
}

std::string indentStr(unsigned Indent) { return std::string(Indent * 2, ' '); }

void printStmtInto(const Stmt &S, unsigned Indent, std::string &Out);

void printStmtsInto(const StmtList &Stmts, unsigned Indent, std::string &Out) {
  for (const StmtPtr &S : Stmts)
    printStmtInto(*S, Indent, Out);
}

void printStmtInto(const Stmt &S, unsigned Indent, std::string &Out) {
  std::string Ind = indentStr(Indent);
  switch (S.getKind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    Out += Ind;
    printExprInto(*A->getTarget(), PrecOr, Out);
    Out += " <- ";
    printExprInto(*A->getValue(), PrecOr, Out);
    Out += ";\n";
    break;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    Out += Ind + "if ";
    printExprInto(*I->getCond(), PrecOr, Out);
    Out += " then\n";
    printStmtsInto(I->getThen(), Indent + 1, Out);
    if (!I->getElse().empty()) {
      Out += Ind + "else\n";
      printStmtsInto(I->getElse(), Indent + 1, Out);
    }
    Out += Ind + "end_if;\n";
    break;
  }
  case Stmt::Kind::Repeat: {
    Out += Ind + "repeat\n";
    printStmtsInto(cast<RepeatStmt>(&S)->getBody(), Indent + 1, Out);
    Out += Ind + "end_repeat;\n";
    break;
  }
  case Stmt::Kind::ExitWhen: {
    Out += Ind + "exit_when (";
    printExprInto(*cast<ExitWhenStmt>(&S)->getCond(), PrecOr, Out);
    Out += ");\n";
    break;
  }
  case Stmt::Kind::Input: {
    const auto *I = cast<InputStmt>(&S);
    Out += Ind + "input (";
    for (size_t K = 0; K < I->getTargets().size(); ++K) {
      if (K != 0)
        Out += ", ";
      Out += I->getTargets()[K];
    }
    Out += ");\n";
    break;
  }
  case Stmt::Kind::Output: {
    const auto *O = cast<OutputStmt>(&S);
    Out += Ind + "output (";
    for (size_t K = 0; K < O->getValues().size(); ++K) {
      if (K != 0)
        Out += ", ";
      printExprInto(*O->getValues()[K], PrecOr, Out);
    }
    Out += ");\n";
    break;
  }
  case Stmt::Kind::Constrain: {
    const auto *C = cast<ConstrainStmt>(&S);
    Out += Ind + "constrain ";
    if (!C->getTag().empty()) {
      Out += C->getTag();
      Out += ": ";
    }
    printExprInto(*C->getPred(), PrecOr, Out);
    Out += ";\n";
    break;
  }
  case Stmt::Kind::Assert: {
    Out += Ind + "assert ";
    printExprInto(*cast<AssertStmt>(&S)->getPred(), PrecOr, Out);
    Out += ";\n";
    break;
  }
  }
}

} // namespace

std::string isdl::printExpr(const Expr &E) {
  std::string Out;
  printExprInto(E, PrecOr, Out);
  return Out;
}

std::string isdl::printStmt(const Stmt &S, unsigned Indent) {
  std::string Out;
  printStmtInto(S, Indent, Out);
  return Out;
}

std::string isdl::printStmts(const StmtList &Stmts, unsigned Indent) {
  std::string Out;
  printStmtsInto(Stmts, Indent, Out);
  return Out;
}

std::string isdl::printDescription(const Description &D) {
  std::string Out = D.getName() + " := begin\n";
  for (const Section &S : D.getSections()) {
    Out += "  ** " + S.Name + " **\n";
    for (const SectionItem &I : S.Items) {
      if (I.K == SectionItem::Kind::Decl) {
        Out += "    " + I.D.Name;
        std::string Ty = I.D.Type.str();
        if (I.D.Type.K == TypeRef::Kind::Integer ||
            I.D.Type.K == TypeRef::Kind::Character)
          Out += ": " + Ty;
        else
          Out += Ty;
        Out += ",";
        if (!I.D.Comment.empty())
          Out += "  ! " + I.D.Comment;
        Out += "\n";
        continue;
      }
      const Routine &R = *I.R;
      Out += "    " + R.Name + "()";
      if (R.ResultType.K == TypeRef::Kind::Integer ||
          R.ResultType.K == TypeRef::Kind::Character)
        Out += ": " + R.ResultType.str();
      else
        Out += R.ResultType.str();
      Out += " := begin";
      if (!R.Comment.empty())
        Out += "  ! " + R.Comment;
      Out += "\n";
      Out += printStmts(R.Body, 3);
      Out += "    end\n";
    }
  }
  Out += "end\n";
  return Out;
}
