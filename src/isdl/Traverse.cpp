//===- Traverse.cpp - AST walking and rewriting helpers ---------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/Traverse.h"

using namespace extra;
using namespace extra::isdl;

void isdl::forEachExpr(const Expr &E,
                       const std::function<void(const Expr &)> &Fn) {
  Fn(E);
  switch (E.getKind()) {
  case Expr::Kind::MemRef:
    forEachExpr(*cast<MemRef>(&E)->getAddress(), Fn);
    break;
  case Expr::Kind::Unary:
    forEachExpr(*cast<UnaryExpr>(&E)->getOperand(), Fn);
    break;
  case Expr::Kind::Binary:
    forEachExpr(*cast<BinaryExpr>(&E)->getLHS(), Fn);
    forEachExpr(*cast<BinaryExpr>(&E)->getRHS(), Fn);
    break;
  default:
    break;
  }
}

void isdl::forEachExpr(const Stmt &S,
                       const std::function<void(const Expr &)> &Fn) {
  switch (S.getKind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    forEachExpr(*A->getTarget(), Fn);
    forEachExpr(*A->getValue(), Fn);
    break;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(&S);
    forEachExpr(*I->getCond(), Fn);
    forEachExpr(I->getThen(), Fn);
    forEachExpr(I->getElse(), Fn);
    break;
  }
  case Stmt::Kind::Repeat:
    forEachExpr(cast<RepeatStmt>(&S)->getBody(), Fn);
    break;
  case Stmt::Kind::ExitWhen:
    forEachExpr(*cast<ExitWhenStmt>(&S)->getCond(), Fn);
    break;
  case Stmt::Kind::Input:
    break;
  case Stmt::Kind::Output:
    for (const ExprPtr &V : cast<OutputStmt>(&S)->getValues())
      forEachExpr(*V, Fn);
    break;
  case Stmt::Kind::Constrain:
    forEachExpr(*cast<ConstrainStmt>(&S)->getPred(), Fn);
    break;
  case Stmt::Kind::Assert:
    forEachExpr(*cast<AssertStmt>(&S)->getPred(), Fn);
    break;
  }
}

void isdl::forEachExpr(const StmtList &Stmts,
                       const std::function<void(const Expr &)> &Fn) {
  for (const StmtPtr &S : Stmts)
    forEachExpr(*S, Fn);
}

void isdl::forEachStmt(const Stmt &S,
                       const std::function<void(const Stmt &)> &Fn) {
  Fn(S);
  switch (S.getKind()) {
  case Stmt::Kind::If:
    forEachStmt(cast<IfStmt>(&S)->getThen(), Fn);
    forEachStmt(cast<IfStmt>(&S)->getElse(), Fn);
    break;
  case Stmt::Kind::Repeat:
    forEachStmt(cast<RepeatStmt>(&S)->getBody(), Fn);
    break;
  default:
    break;
  }
}

void isdl::forEachStmt(const StmtList &Stmts,
                       const std::function<void(const Stmt &)> &Fn) {
  for (const StmtPtr &S : Stmts)
    forEachStmt(*S, Fn);
}

void isdl::forEachExprSlot(ExprPtr &Slot,
                           const std::function<void(ExprPtr &)> &Fn) {
  assert(Slot && "null expression slot");
  switch (Slot->getKind()) {
  case Expr::Kind::MemRef: {
    auto *M = cast<MemRef>(Slot.get());
    ExprPtr Addr = M->takeAddress();
    forEachExprSlot(Addr, Fn);
    M->setAddress(std::move(Addr));
    break;
  }
  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(Slot.get());
    ExprPtr Op = U->takeOperand();
    forEachExprSlot(Op, Fn);
    U->setOperand(std::move(Op));
    break;
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(Slot.get());
    ExprPtr L = B->takeLHS();
    forEachExprSlot(L, Fn);
    B->setLHS(std::move(L));
    ExprPtr R = B->takeRHS();
    forEachExprSlot(R, Fn);
    B->setRHS(std::move(R));
    break;
  }
  default:
    break;
  }
  Fn(Slot);
}

void isdl::forEachExprSlot(Stmt &S, const std::function<void(ExprPtr &)> &Fn) {
  switch (S.getKind()) {
  case Stmt::Kind::Assign: {
    auto *A = cast<AssignStmt>(&S);
    // The target slot is visited too; callers must preserve the VarRef/
    // MemRef invariant when rewriting it.
    if (auto *M = dyn_cast<MemRef>(A->getTarget())) {
      ExprPtr Addr = M->takeAddress();
      forEachExprSlot(Addr, Fn);
      M->setAddress(std::move(Addr));
    }
    ExprPtr V = A->takeValue();
    forEachExprSlot(V, Fn);
    A->setValue(std::move(V));
    break;
  }
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(&S);
    ExprPtr C = I->takeCond();
    forEachExprSlot(C, Fn);
    I->setCond(std::move(C));
    forEachExprSlot(I->getThen(), Fn);
    forEachExprSlot(I->getElse(), Fn);
    break;
  }
  case Stmt::Kind::Repeat:
    forEachExprSlot(cast<RepeatStmt>(&S)->getBody(), Fn);
    break;
  case Stmt::Kind::ExitWhen: {
    auto *E = cast<ExitWhenStmt>(&S);
    ExprPtr C = E->takeCond();
    forEachExprSlot(C, Fn);
    E->setCond(std::move(C));
    break;
  }
  case Stmt::Kind::Input:
    break;
  case Stmt::Kind::Output:
    for (ExprPtr &V : cast<OutputStmt>(&S)->getValues())
      forEachExprSlot(V, Fn);
    break;
  case Stmt::Kind::Constrain:
  case Stmt::Kind::Assert:
    // Constraint/assertion predicates describe operand conditions; they are
    // rewritten only by dedicated constraint transformations.
    break;
  }
}

void isdl::forEachExprSlot(StmtList &Stmts,
                           const std::function<void(ExprPtr &)> &Fn) {
  for (StmtPtr &S : Stmts)
    forEachExprSlot(*S, Fn);
}

bool isdl::mentionsVar(const Expr &E, const std::string &Name) {
  bool Found = false;
  forEachExpr(E, [&](const Expr &Sub) {
    if (const auto *V = dyn_cast<VarRef>(&Sub))
      if (V->getName() == Name)
        Found = true;
  });
  return Found;
}

bool isdl::mentionsVar(const Stmt &S, const std::string &Name) {
  bool Found = false;
  forEachExpr(S, [&](const Expr &Sub) {
    if (const auto *V = dyn_cast<VarRef>(&Sub))
      if (V->getName() == Name)
        Found = true;
  });
  if (const auto *In = dyn_cast<InputStmt>(&S))
    for (const std::string &T : In->getTargets())
      if (T == Name)
        Found = true;
  return Found;
}

bool isdl::hasCallOrMem(const Expr &E) {
  bool Found = false;
  forEachExpr(E, [&](const Expr &Sub) {
    if (isa<CallExpr>(&Sub) || isa<MemRef>(&Sub))
      Found = true;
  });
  return Found;
}

std::set<std::string> isdl::referencedVars(const Stmt &S) {
  std::set<std::string> Out;
  forEachExpr(S, [&](const Expr &Sub) {
    if (const auto *V = dyn_cast<VarRef>(&Sub))
      Out.insert(V->getName());
  });
  forEachStmt(S, [&](const Stmt &Sub) {
    if (const auto *In = dyn_cast<InputStmt>(&Sub))
      for (const std::string &T : In->getTargets())
        Out.insert(T);
  });
  return Out;
}

std::set<std::string> isdl::referencedVars(const StmtList &Stmts) {
  std::set<std::string> Out;
  for (const StmtPtr &S : Stmts) {
    std::set<std::string> Sub = referencedVars(*S);
    Out.insert(Sub.begin(), Sub.end());
  }
  return Out;
}

std::set<std::string> isdl::calledRoutines(const StmtList &Stmts) {
  std::set<std::string> Out;
  forEachExpr(Stmts, [&](const Expr &Sub) {
    if (const auto *C = dyn_cast<CallExpr>(&Sub))
      Out.insert(C->getCallee());
  });
  return Out;
}

void isdl::renameVar(Stmt &S, const std::string &From, const std::string &To) {
  forEachExprSlot(S, [&](ExprPtr &Slot) {
    if (auto *V = dyn_cast<VarRef>(Slot.get()))
      if (V->getName() == From)
        V->setName(To);
  });
  // Assignment targets that are plain VarRefs are not visited as slots;
  // handle them, input lists, and annotation predicates (which the slot
  // walker deliberately skips) explicitly — a rename must reach every
  // mention of the name.
  std::function<void(Expr &)> RenameIn = [&](Expr &E) {
    forEachExpr(E, [&](const Expr &Sub) {
      if (const auto *V = dyn_cast<VarRef>(&Sub))
        if (V->getName() == From)
          const_cast<VarRef *>(V)->setName(To);
    });
  };
  forEachStmt(S, [&](const Stmt &Sub) {
    auto &MutSub = const_cast<Stmt &>(Sub);
    if (auto *A = dyn_cast<AssignStmt>(&MutSub)) {
      if (auto *V = dyn_cast<VarRef>(A->getTarget()))
        if (V->getName() == From)
          V->setName(To);
    } else if (auto *In = dyn_cast<InputStmt>(&MutSub)) {
      for (std::string &T : In->getTargets())
        if (T == From)
          T = To;
    } else if (auto *As = dyn_cast<AssertStmt>(&MutSub)) {
      RenameIn(*As->getPred());
    } else if (auto *C = dyn_cast<ConstrainStmt>(&MutSub)) {
      RenameIn(*C->getPred());
    }
  });
}

void isdl::renameVar(StmtList &Stmts, const std::string &From,
                     const std::string &To) {
  for (StmtPtr &S : Stmts)
    renameVar(*S, From, To);
}

void isdl::renameCall(StmtList &Stmts, const std::string &From,
                      const std::string &To) {
  forEachExprSlot(Stmts, [&](ExprPtr &Slot) {
    if (auto *C = dyn_cast<CallExpr>(Slot.get()))
      if (C->getCallee() == From)
        C->setCallee(To);
  });
}

StmtLocus isdl::resolvePath(StmtList &Body, const StmtPath &Path) {
  StmtList *List = &Body;
  StmtLocus Out;
  for (size_t I = 0; I < Path.size(); ++I) {
    unsigned Index = Path[I];
    if (Index >= List->size())
      return StmtLocus();
    Out.List = List;
    Out.Index = Index;
    if (I + 1 == Path.size())
      return Out;
    Stmt *S = (*List)[Index].get();
    if (auto *If = dyn_cast<IfStmt>(S)) {
      ++I;
      if (I >= Path.size())
        return StmtLocus();
      unsigned Arm = Path[I];
      if (Arm == 0)
        List = &If->getThen();
      else if (Arm == 1)
        List = &If->getElse();
      else
        return StmtLocus();
    } else if (auto *Rep = dyn_cast<RepeatStmt>(S)) {
      List = &Rep->getBody();
    } else {
      return StmtLocus();
    }
  }
  return StmtLocus();
}
