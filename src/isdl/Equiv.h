//===- Equiv.h - Structural equality modulo renaming ------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "common form" test (§3): two descriptions are equivalent
/// when they are *identical except for variable and register names*. The
/// matcher walks both descriptions in lockstep, accumulating a bijective
/// name binding (operator variable ↔ instruction register, operator
/// routine ↔ instruction routine). The binding is the analysis product:
/// it tells the code generator which registers implement which operands
/// and induces register-size range constraints.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_ISDL_EQUIV_H
#define EXTRA_ISDL_EQUIV_H

#include "isdl/AST.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <map>
#include <string>
#include <vector>

namespace extra {
namespace isdl {

/// A bijective mapping between names on the "A" side (language operator)
/// and the "B" side (machine instruction).
class NameBinding {
public:
  /// Records a pair; fails (returns false) when either name is already
  /// bound to a different partner.
  bool bind(const std::string &A, const std::string &B);

  /// The partner of an A-side name, or empty.
  std::string lookupA(const std::string &A) const;
  /// The partner of a B-side name, or empty.
  std::string lookupB(const std::string &B) const;

  const std::map<std::string, std::string> &pairs() const { return AtoB; }
  bool empty() const { return AtoB.empty(); }

  /// Renders as "A <-> B" lines, sorted, for reports and tests.
  std::string str() const;

private:
  std::map<std::string, std::string> AtoB;
  std::map<std::string, std::string> BtoA;
};

/// A half-open range [Begin, End) of top-level statements in the body of
/// the named routine.
struct StmtSpan {
  std::string RoutineName;
  size_t Begin = 0;
  size_t End = 0;

  size_t size() const { return End > Begin ? End - Begin : 0; }
  bool empty() const { return End <= Begin; }
};

/// Structured account of where a failed common-form match diverged. The
/// matcher re-walks the failing routine pair, committing every statement
/// pair that matches from the front and the largest block that matches
/// from the back; what remains in the middle is the divergence. This is
/// the input to argument synthesis (src/synth): the spans are the
/// statements one side has and the other lacks, and `Partial` maps every
/// name the two sides agree on.
struct DivergenceReport {
  bool Valid = false;
  /// Binding accumulated over everything that did match: the prefix of
  /// the failing bodies, the suffix block, and all routine pairs matched
  /// before the failure.
  NameBinding Partial;
  /// The routine pair whose bodies diverge.
  std::string RoutineA;
  std::string RoutineB;
  /// The unmatched middle on each side. Either span may be empty (one
  /// side simply has extra statements).
  StmtSpan SpanA;
  StmtSpan SpanB;
  /// First mismatch message within the spans, for reports.
  std::string Detail;
};

/// Result of a common-form comparison.
struct MatchResult {
  bool Matched = false;
  NameBinding Binding;
  /// Human-readable reason for the first mismatch, empty on success.
  std::string Mismatch;
  /// Structured divergence location, valid when a routine-body match
  /// failed (not for pre-body failures such as a missing entry routine).
  DivergenceReport Divergence;
};

/// Exact structural equality (names must be identical).
bool exactEqual(const Expr &A, const Expr &B);
bool exactEqual(const Stmt &A, const Stmt &B);
bool exactEqual(const StmtList &A, const StmtList &B);

/// Structural equality modulo renaming; extends \p Binding and fails on
/// binding conflicts.
bool matchExpr(const Expr &A, const Expr &B, NameBinding &Binding,
               std::string *Mismatch = nullptr);
bool matchStmt(const Stmt &A, const Stmt &B, NameBinding &Binding,
               std::string *Mismatch = nullptr);
bool matchStmts(const StmtList &A, const StmtList &B, NameBinding &Binding,
                std::string *Mismatch = nullptr);

/// Full common-form check between two descriptions.
///
/// Matching starts at the entry routines and follows call sites: when a
/// call of routine `r` on side A matches a call of `s` on side B, the
/// bodies of `r` and `s` must match under the same binding. Declarations
/// do not need to agree on width/type — width differences become range
/// constraints, derived later from the binding — but every name referenced
/// by matched code must be declared on its side.
///
/// Observability (both optional, non-owning): with \p Metrics installed
/// the call records `match.attempt`, `match.success` or
/// `match.fail.<cause>`, and the `match.ns` latency histogram; with an
/// enabled \p Trace sink, a failing match emits a "match-divergence"
/// event under \p TraceSpan carrying the diverging routine pair and the
/// unmatched statement spans of the DivergenceReport.
MatchResult matchDescriptions(const Description &A, const Description &B,
                              obs::Metrics *Metrics = nullptr,
                              obs::TraceSink *Trace = nullptr,
                              uint64_t TraceSpan = 0);

} // namespace isdl
} // namespace extra

#endif // EXTRA_ISDL_EQUIV_H
