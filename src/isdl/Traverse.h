//===- Traverse.h - AST walking and rewriting helpers -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic walkers over ISDL statements and expressions. Transformations
/// and dataflow analyses use these instead of hand-rolled recursion.
/// `forEachExprSlot` visits owning ExprPtr slots bottom-up so callers can
/// rewrite subexpressions in place.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_ISDL_TRAVERSE_H
#define EXTRA_ISDL_TRAVERSE_H

#include "isdl/AST.h"

#include <functional>
#include <set>
#include <string>

namespace extra {
namespace isdl {

/// Visits \p E and every subexpression, pre-order.
void forEachExpr(const Expr &E, const std::function<void(const Expr &)> &Fn);

/// Visits every expression contained in \p S (including nested statements),
/// pre-order.
void forEachExpr(const Stmt &S, const std::function<void(const Expr &)> &Fn);

/// Visits every expression contained in \p Stmts.
void forEachExpr(const StmtList &Stmts,
                 const std::function<void(const Expr &)> &Fn);

/// Visits \p S and every nested statement, pre-order.
void forEachStmt(const Stmt &S, const std::function<void(const Stmt &)> &Fn);

/// Visits every statement in \p Stmts, pre-order, including nested bodies.
void forEachStmt(const StmtList &Stmts,
                 const std::function<void(const Stmt &)> &Fn);

/// Visits every owning expression slot under \p S bottom-up, allowing the
/// callback to replace the pointed-to expression.
void forEachExprSlot(Stmt &S, const std::function<void(ExprPtr &)> &Fn);

/// Visits every owning expression slot in \p Stmts bottom-up.
void forEachExprSlot(StmtList &Stmts, const std::function<void(ExprPtr &)> &Fn);

/// Visits every owning expression slot under \p E bottom-up, then \p Slot
/// itself.
void forEachExprSlot(ExprPtr &Slot, const std::function<void(ExprPtr &)> &Fn);

/// True if any (sub)expression of \p E is a VarRef named \p Name.
bool mentionsVar(const Expr &E, const std::string &Name);

/// True if any expression within \p S mentions \p Name (as a VarRef).
bool mentionsVar(const Stmt &S, const std::string &Name);

/// True if \p E contains a memory reference or a routine call (and thus
/// cannot be freely duplicated or reordered without side-effect analysis).
bool hasCallOrMem(const Expr &E);

/// Names of all variables referenced (read or written) under \p S.
std::set<std::string> referencedVars(const Stmt &S);

/// Names of all variables referenced under \p Stmts.
std::set<std::string> referencedVars(const StmtList &Stmts);

/// Names of all routines called under \p Stmts.
std::set<std::string> calledRoutines(const StmtList &Stmts);

/// Renames every VarRef (and input-list entry) named \p From to \p To under
/// \p S. Routine call names are not touched.
void renameVar(Stmt &S, const std::string &From, const std::string &To);
void renameVar(StmtList &Stmts, const std::string &From, const std::string &To);

/// Renames every call of routine \p From to \p To under \p Stmts.
void renameCall(StmtList &Stmts, const std::string &From, const std::string &To);

//===----------------------------------------------------------------------===//
// Statement paths
//===----------------------------------------------------------------------===//

/// Addresses a statement inside a routine body. Steps select statement
/// indices; descending into an IfStmt takes an extra arm step (0 = then,
/// 1 = else); descending into a RepeatStmt has no arm step.
///
/// Example: {2, 0, 1} inside a body means: statement 2 (an if), then-arm,
/// statement 1 of that arm... The interpretation is: after selecting a
/// compound statement, the next number selects the arm for ifs, and the
/// number after that the index within the arm; repeats consume a single
/// index into their body.
using StmtPath = std::vector<unsigned>;

/// A resolved location: the owning list and index within it. Valid until
/// the list is structurally modified.
struct StmtLocus {
  StmtList *List = nullptr;
  size_t Index = 0;

  bool isValid() const { return List && Index < List->size(); }
  Stmt *get() const { return isValid() ? (*List)[Index].get() : nullptr; }
};

/// Resolves \p Path against \p Body. Returns an invalid locus when the path
/// does not address a statement.
StmtLocus resolvePath(StmtList &Body, const StmtPath &Path);

} // namespace isdl
} // namespace extra

#endif // EXTRA_ISDL_TRAVERSE_H
