//===- Parser.h - Recursive-descent parser for ISDL -------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the ISPS-like description notation into the AST of AST.h. See
/// DESIGN.md §4 for the grammar. Parsing never throws; failures are
/// reported to the DiagnosticEngine and parseDescription returns nullptr.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_ISDL_PARSER_H
#define EXTRA_ISDL_PARSER_H

#include "isdl/AST.h"
#include "isdl/Lexer.h"
#include "support/Error.h"

#include <memory>
#include <string_view>

namespace extra {
namespace isdl {

/// Parses one complete description from \p Source.
///
/// \returns the parsed description, or nullptr after reporting errors.
std::unique_ptr<Description> parseDescription(std::string_view Source,
                                              DiagnosticEngine &Diags);

/// Fault-typed wrapper over parseDescription for callers that propagate
/// errors as values (the robustness layer): a failed parse becomes a
/// Fault{Parse} carrying the rendered diagnostics.
Expected<std::unique_ptr<Description>>
parseDescriptionChecked(std::string_view Source);

/// Parses a single expression (used by tests and transformation scripts).
ExprPtr parseExpr(std::string_view Source, DiagnosticEngine &Diags);

/// Parses a statement list (used by augment scripts, which supply
/// prologue/epilogue code as source text).
StmtList parseStmts(std::string_view Source, DiagnosticEngine &Diags);

} // namespace isdl
} // namespace extra

#endif // EXTRA_ISDL_PARSER_H
