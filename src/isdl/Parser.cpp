//===- Parser.cpp - Recursive-descent parser for ISDL -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/Parser.h"

#include "support/FaultInjection.h"

using namespace extra;
using namespace extra::isdl;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  std::unique_ptr<Description> parseDescription();
  ExprPtr parseExprTop();
  StmtList parseStmtsTop();

private:
  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &advance() {
    const Token &T = peek();
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool check(TokKind K) const { return peek().is(K); }
  bool accept(TokKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokKind K, const char *Context) {
    if (accept(K))
      return true;
    Diags.error(peek().Loc, std::string("expected ") + tokKindName(K) +
                                " in " + Context + ", found " +
                                tokKindName(peek().Kind));
    return false;
  }

  Section parseSection();
  void parseItem(Section &S);
  Routine parseRoutine(std::string Name);
  TypeRef parseOptionalType(bool &Ok);
  StmtList parseStmtList(const char *Context);
  StmtPtr parseStmt();
  StmtPtr parseStmtInner();
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseNot();
  ExprPtr parseRel();
  ExprPtr parseAdd();
  ExprPtr parseMul();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  bool atStmtStart() const;

  /// Recursion guard shared by expression and statement nesting: a
  /// description deep enough to threaten the parser's own stack is a
  /// malformed input, reported as a diagnostic like any other (the
  /// robustness layer's no-crash contract). The bound comfortably clears
  /// every library description and the 200-deep nesting tests.
  static constexpr unsigned MaxNesting = 512;
  bool enterNested() {
    if (++Depth <= MaxNesting)
      return true;
    Diags.error(peek().Loc, "nesting too deep (limit " +
                                std::to_string(MaxNesting) + ")");
    return false;
  }
  void leaveNested() { --Depth; }

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Depth = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// Descriptions, sections, declarations, routines
//===----------------------------------------------------------------------===//

std::unique_ptr<Description> Parser::parseDescription() {
  unsigned ErrorsBefore = Diags.errorCount();

  if (!check(TokKind::Ident)) {
    Diags.error(peek().Loc, "expected description name");
    return nullptr;
  }
  auto Desc = std::make_unique<Description>(advance().Text);
  if (!expect(TokKind::ColonEq, "description header") ||
      !expect(TokKind::KwBegin, "description header"))
    return nullptr;

  while (check(TokKind::StarStar))
    Desc->getSections().push_back(parseSection());

  expect(TokKind::KwEnd, "description");
  if (Diags.errorCount() != ErrorsBefore)
    return nullptr;
  return Desc;
}

Section Parser::parseSection() {
  Section S;
  expect(TokKind::StarStar, "section header");
  if (check(TokKind::Ident))
    S.Name = advance().Text;
  else
    Diags.error(peek().Loc, "expected section name");
  expect(TokKind::StarStar, "section header");

  while (check(TokKind::Ident))
    parseItem(S);
  return S;
}

void Parser::parseItem(Section &S) {
  SourceLoc Loc = peek().Loc;
  std::string Name = advance().Text;

  // Routine forms:   name() ... := begin   |   name := begin
  // Declaration:     name<hi:lo>  |  name<>  |  name : typename
  bool IsRoutine = false;
  if (check(TokKind::LParen))
    IsRoutine = true;
  else if (check(TokKind::ColonEq))
    IsRoutine = true;

  if (IsRoutine) {
    Routine R = parseRoutine(std::move(Name));
    R.Loc = Loc;
    S.Items.push_back(SectionItem::routine(std::move(R)));
    return;
  }

  Decl D;
  D.Name = std::move(Name);
  D.Loc = Loc;
  if (accept(TokKind::LessGreater)) {
    D.Type = TypeRef::flag();
  } else if (accept(TokKind::Less)) {
    int Hi = 0, Lo = 0;
    if (check(TokKind::Int))
      Hi = static_cast<int>(advance().IntValue);
    else
      Diags.error(peek().Loc, "expected high bit index in register declaration");
    expect(TokKind::Colon, "register declaration");
    if (check(TokKind::Int))
      Lo = static_cast<int>(advance().IntValue);
    else
      Diags.error(peek().Loc, "expected low bit index in register declaration");
    expect(TokKind::Greater, "register declaration");
    D.Type = TypeRef::bits(Hi, Lo);
  } else if (accept(TokKind::Colon)) {
    if (check(TokKind::Ident)) {
      std::string TypeName = advance().Text;
      if (TypeName == "integer")
        D.Type = TypeRef::integer();
      else if (TypeName == "character")
        D.Type = TypeRef::character();
      else
        Diags.error(Loc, "unknown type name '" + TypeName + "'");
    } else {
      Diags.error(peek().Loc, "expected type name after ':'");
    }
  } else {
    Diags.error(peek().Loc,
                "expected register width, type, or routine body after '" +
                    D.Name + "'");
  }
  accept(TokKind::Comma);
  S.Items.push_back(SectionItem::decl(std::move(D)));
}

TypeRef Parser::parseOptionalType(bool &Ok) {
  Ok = true;
  if (accept(TokKind::LessGreater))
    return TypeRef::flag();
  if (accept(TokKind::Less)) {
    int Hi = 0, Lo = 0;
    if (check(TokKind::Int))
      Hi = static_cast<int>(advance().IntValue);
    else
      Ok = false;
    if (!expect(TokKind::Colon, "result width"))
      Ok = false;
    if (check(TokKind::Int))
      Lo = static_cast<int>(advance().IntValue);
    else
      Ok = false;
    if (!expect(TokKind::Greater, "result width"))
      Ok = false;
    return TypeRef::bits(Hi, Lo);
  }
  if (accept(TokKind::Colon)) {
    if (check(TokKind::Ident)) {
      std::string TypeName = advance().Text;
      if (TypeName == "integer")
        return TypeRef::integer();
      if (TypeName == "character")
        return TypeRef::character();
      Diags.error(peek().Loc, "unknown type name '" + TypeName + "'");
      Ok = false;
      return TypeRef::none();
    }
    Diags.error(peek().Loc, "expected type name after ':'");
    Ok = false;
  }
  return TypeRef::none();
}

Routine Parser::parseRoutine(std::string Name) {
  Routine R;
  R.Name = std::move(Name);
  if (accept(TokKind::LParen))
    expect(TokKind::RParen, "routine parameter list");
  bool Ok = true;
  R.ResultType = parseOptionalType(Ok);
  expect(TokKind::ColonEq, "routine definition");
  expect(TokKind::KwBegin, "routine body");
  R.Body = parseStmtList("routine body");
  expect(TokKind::KwEnd, "routine body");
  accept(TokKind::Semi);
  accept(TokKind::Comma);
  return R;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

bool Parser::atStmtStart() const {
  switch (peek().Kind) {
  case TokKind::Ident:
  case TokKind::KwIf:
  case TokKind::KwRepeat:
  case TokKind::KwExitWhen:
  case TokKind::KwInput:
  case TokKind::KwOutput:
  case TokKind::KwConstrain:
  case TokKind::KwAssert:
    return true;
  default:
    return false;
  }
}

StmtList Parser::parseStmtList(const char *Context) {
  StmtList Out;
  unsigned LastErrors = Diags.errorCount();
  while (atStmtStart()) {
    StmtPtr S = parseStmt();
    if (!S) {
      // Error recovery: skip to the next semicolon or block terminator.
      while (!check(TokKind::Eof) && !check(TokKind::Semi) &&
             !check(TokKind::KwEnd) && !check(TokKind::KwEndIf) &&
             !check(TokKind::KwEndRepeat) && !check(TokKind::KwElse))
        advance();
      accept(TokKind::Semi);
      if (Diags.errorCount() == LastErrors)
        Diags.error(peek().Loc, std::string("invalid statement in ") + Context);
      LastErrors = Diags.errorCount();
      continue;
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

StmtPtr Parser::parseStmt() {
  if (!enterNested()) {
    leaveNested();
    return nullptr;
  }
  StmtPtr Out = parseStmtInner();
  leaveNested();
  return Out;
}

StmtPtr Parser::parseStmtInner() {
  SourceLoc Loc = peek().Loc;
  StmtPtr Out;

  switch (peek().Kind) {
  case TokKind::Ident: {
    // Assignment to a variable, a routine-name result, or Mb[addr].
    std::string Name = advance().Text;
    ExprPtr Target;
    if (Name == "Mb") {
      if (!expect(TokKind::LBracket, "memory assignment"))
        return nullptr;
      ExprPtr Addr = parseExpr();
      if (!Addr || !expect(TokKind::RBracket, "memory assignment"))
        return nullptr;
      Target = memRef(std::move(Addr));
    } else {
      Target = varRef(std::move(Name));
    }
    if (!expect(TokKind::Arrow, "assignment"))
      return nullptr;
    ExprPtr Value = parseExpr();
    if (!Value)
      return nullptr;
    expect(TokKind::Semi, "assignment");
    Out = std::make_unique<AssignStmt>(std::move(Target), std::move(Value));
    break;
  }
  case TokKind::KwIf: {
    advance();
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokKind::KwThen, "if statement"))
      return nullptr;
    StmtList Then = parseStmtList("then branch");
    StmtList Else;
    if (accept(TokKind::KwElse))
      Else = parseStmtList("else branch");
    expect(TokKind::KwEndIf, "if statement");
    accept(TokKind::Semi);
    Out = std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                   std::move(Else));
    break;
  }
  case TokKind::KwRepeat: {
    advance();
    StmtList Body = parseStmtList("repeat body");
    expect(TokKind::KwEndRepeat, "repeat statement");
    accept(TokKind::Semi);
    Out = std::make_unique<RepeatStmt>(std::move(Body));
    break;
  }
  case TokKind::KwExitWhen: {
    advance();
    ExprPtr Cond = parseExpr();
    if (!Cond)
      return nullptr;
    expect(TokKind::Semi, "exit_when");
    Out = std::make_unique<ExitWhenStmt>(std::move(Cond));
    break;
  }
  case TokKind::KwInput: {
    advance();
    if (!expect(TokKind::LParen, "input statement"))
      return nullptr;
    std::vector<std::string> Targets;
    if (!check(TokKind::RParen)) {
      do {
        if (!check(TokKind::Ident)) {
          Diags.error(peek().Loc, "expected operand name in input list");
          return nullptr;
        }
        Targets.push_back(advance().Text);
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "input statement");
    expect(TokKind::Semi, "input statement");
    Out = std::make_unique<InputStmt>(std::move(Targets));
    break;
  }
  case TokKind::KwOutput: {
    advance();
    if (!expect(TokKind::LParen, "output statement"))
      return nullptr;
    std::vector<ExprPtr> Values;
    if (!check(TokKind::RParen)) {
      do {
        ExprPtr V = parseExpr();
        if (!V)
          return nullptr;
        Values.push_back(std::move(V));
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "output statement");
    expect(TokKind::Semi, "output statement");
    Out = std::make_unique<OutputStmt>(std::move(Values));
    break;
  }
  case TokKind::KwConstrain: {
    advance();
    std::string Tag;
    if (check(TokKind::Ident) && peek(1).is(TokKind::Colon)) {
      Tag = advance().Text;
      advance(); // ':'
    }
    ExprPtr Pred = parseExpr();
    if (!Pred)
      return nullptr;
    expect(TokKind::Semi, "constrain statement");
    Out = std::make_unique<ConstrainStmt>(std::move(Tag), std::move(Pred));
    break;
  }
  case TokKind::KwAssert: {
    advance();
    ExprPtr Pred = parseExpr();
    if (!Pred)
      return nullptr;
    expect(TokKind::Semi, "assert statement");
    Out = std::make_unique<AssertStmt>(std::move(Pred));
    break;
  }
  default:
    Diags.error(Loc, std::string("unexpected ") + tokKindName(peek().Kind) +
                         " at start of statement");
    return nullptr;
  }

  if (Out)
    Out->setLoc(Loc);
  return Out;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() {
  if (!enterNested()) {
    leaveNested();
    return nullptr;
  }
  ExprPtr E = parseOr();
  leaveNested();
  return E;
}

ExprPtr Parser::parseOr() {
  ExprPtr L = parseAnd();
  while (L && accept(TokKind::KwOr)) {
    ExprPtr R = parseAnd();
    if (!R)
      return nullptr;
    L = binary(BinaryOp::Or, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseAnd() {
  ExprPtr L = parseNot();
  while (L && accept(TokKind::KwAnd)) {
    ExprPtr R = parseNot();
    if (!R)
      return nullptr;
    L = binary(BinaryOp::And, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseNot() {
  if (accept(TokKind::KwNot)) {
    ExprPtr E = parseNot();
    if (!E)
      return nullptr;
    return unary(UnaryOp::Not, std::move(E));
  }
  return parseRel();
}

ExprPtr Parser::parseRel() {
  ExprPtr L = parseAdd();
  if (!L)
    return nullptr;
  BinaryOp Op;
  switch (peek().Kind) {
  case TokKind::Eq:
    Op = BinaryOp::Eq;
    break;
  case TokKind::LessGreater:
    Op = BinaryOp::Ne;
    break;
  case TokKind::Less:
    Op = BinaryOp::Lt;
    break;
  case TokKind::LessEq:
    Op = BinaryOp::Le;
    break;
  case TokKind::Greater:
    Op = BinaryOp::Gt;
    break;
  case TokKind::GreaterEq:
    Op = BinaryOp::Ge;
    break;
  default:
    return L;
  }
  advance();
  ExprPtr R = parseAdd();
  if (!R)
    return nullptr;
  return binary(Op, std::move(L), std::move(R));
}

ExprPtr Parser::parseAdd() {
  ExprPtr L = parseMul();
  for (;;) {
    if (!L)
      return nullptr;
    BinaryOp Op;
    if (check(TokKind::Plus))
      Op = BinaryOp::Add;
    else if (check(TokKind::Minus))
      Op = BinaryOp::Sub;
    else
      return L;
    advance();
    ExprPtr R = parseMul();
    if (!R)
      return nullptr;
    L = binary(Op, std::move(L), std::move(R));
  }
}

ExprPtr Parser::parseMul() {
  ExprPtr L = parseUnary();
  for (;;) {
    if (!L)
      return nullptr;
    BinaryOp Op;
    if (check(TokKind::Star))
      Op = BinaryOp::Mul;
    else if (check(TokKind::Slash))
      Op = BinaryOp::Div;
    else
      return L;
    advance();
    ExprPtr R = parseUnary();
    if (!R)
      return nullptr;
    L = binary(Op, std::move(L), std::move(R));
  }
}

ExprPtr Parser::parseUnary() {
  if (accept(TokKind::Minus)) {
    ExprPtr E = parseUnary();
    if (!E)
      return nullptr;
    return unary(UnaryOp::Neg, std::move(E));
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  ExprPtr Out;

  switch (peek().Kind) {
  case TokKind::Int:
    Out = intLit(advance().IntValue);
    break;
  case TokKind::CharLit:
    Out = charLit(static_cast<uint8_t>(advance().IntValue));
    break;
  case TokKind::LParen: {
    advance();
    Out = parseExpr();
    if (!Out)
      return nullptr;
    expect(TokKind::RParen, "parenthesized expression");
    break;
  }
  case TokKind::Ident: {
    std::string Name = advance().Text;
    if (Name == "Mb") {
      if (!expect(TokKind::LBracket, "memory reference"))
        return nullptr;
      ExprPtr Addr = parseExpr();
      if (!Addr || !expect(TokKind::RBracket, "memory reference"))
        return nullptr;
      Out = memRef(std::move(Addr));
    } else if (accept(TokKind::LParen)) {
      expect(TokKind::RParen, "routine call");
      Out = call(std::move(Name));
    } else {
      Out = varRef(std::move(Name));
    }
    break;
  }
  default:
    Diags.error(Loc, std::string("unexpected ") + tokKindName(peek().Kind) +
                         " in expression");
    return nullptr;
  }

  if (Out)
    Out->setLoc(Loc);
  return Out;
}

ExprPtr Parser::parseExprTop() {
  ExprPtr E = parseExpr();
  if (E && !check(TokKind::Eof))
    Diags.error(peek().Loc, "trailing tokens after expression");
  return E;
}

StmtList Parser::parseStmtsTop() {
  StmtList Out = parseStmtList("statement sequence");
  if (!check(TokKind::Eof))
    Diags.error(peek().Loc, "trailing tokens after statements");
  return Out;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

std::unique_ptr<Description>
isdl::parseDescription(std::string_view Source, DiagnosticEngine &Diags) {
  // Fault-injection site: a synthetic front-end failure, reported exactly
  // like a genuine parse error so the containment layers above cannot
  // tell the difference.
  if (FaultInjector::instance().shouldFail("parser")) {
    Diags.error("injected fault: parser");
    return nullptr;
  }
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  return P.parseDescription();
}

ExprPtr isdl::parseExpr(std::string_view Source, DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  return P.parseExprTop();
}

StmtList isdl::parseStmts(std::string_view Source, DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  return P.parseStmtsTop();
}

Expected<std::unique_ptr<Description>>
isdl::parseDescriptionChecked(std::string_view Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Description> D = parseDescription(Source, Diags);
  if (!D || Diags.hasErrors())
    return makeFault(FaultCategory::Parse,
                     Diags.hasErrors() ? Diags.str()
                                       : "parse failed without diagnostics");
  return D;
}
