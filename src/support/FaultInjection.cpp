//===- FaultInjection.cpp - Deterministic seeded fault injection *- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/StringUtil.h"

#include <cstdlib>

using namespace extra;

namespace {

/// Per-thread injection context: the active scope hash and one decision
/// counter per configured site (indexed like FaultInjector::Sites).
struct TlState {
  uint64_t Scope = 0;
  unsigned SuppressDepth = 0;
  std::vector<uint64_t> Counts;
};

TlState &tl() {
  static thread_local TlState State;
  return State;
}

uint64_t fnv1a(std::string_view S) {
  uint64_t H = 1469598103934665603ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

} // namespace

FaultInjector &FaultInjector::instance() {
  static FaultInjector I;
  return I;
}

const std::vector<std::string> &FaultInjector::knownSites() {
  static const std::vector<std::string> Sites = {
      "parser", "validate", "interp", "rule-apply", "synth", "store"};
  return Sites;
}

bool FaultInjector::configure(const std::string &Spec, std::string *Error) {
  for (const std::string &Part : split(Spec, ',')) {
    std::string Item(trim(Part));
    if (Item.empty())
      continue;
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos) {
      if (Error)
        *Error = "bad injection spec '" + Item + "' (want <site>=<rate>)";
      return false;
    }
    std::string Name(trim(Item.substr(0, Eq)));
    std::string RateText(trim(Item.substr(Eq + 1)));
    bool Known = false;
    for (const std::string &S : knownSites())
      Known = Known || S == Name;
    if (!Known) {
      std::string All;
      for (const std::string &S : knownSites())
        All += (All.empty() ? "" : ", ") + S;
      if (Error)
        *Error = "unknown injection site '" + Name + "' (known: " + All + ")";
      return false;
    }
    errno = 0;
    char *End = nullptr;
    double Rate = std::strtod(RateText.c_str(), &End);
    if (End == RateText.c_str() || *End != '\0' || errno != 0 || Rate < 0 ||
        Rate > 1) {
      if (Error)
        *Error = "bad injection rate '" + RateText + "' for site '" + Name +
                 "' (want a number in [0,1])";
      return false;
    }
    Site *Slot = nullptr;
    for (Site &S : Sites)
      if (S.Name == Name)
        Slot = &S;
    if (!Slot) {
      Sites.emplace_back();
      Slot = &Sites.back();
      Slot->Name = Name;
      Slot->NameHash = fnv1a(Name);
    }
    Slot->Rate = Rate;
  }
  bool AnyArmed = false;
  for (const Site &S : Sites)
    AnyArmed = AnyArmed || S.Rate > 0;
  Armed.store(AnyArmed, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::configureFromEnv(std::string *Error) {
  const char *Env = std::getenv("EXTRA_INJECT");
  if (!Env || !*Env)
    return true;
  return configure(Env, Error);
}

void FaultInjector::reset() {
  Armed.store(false, std::memory_order_relaxed);
  Sites.clear();
  Injected.store(0, std::memory_order_relaxed);
  Seed = 0x5EEDFA17;
  TlState &T = tl();
  T.Scope = 0;
  T.Counts.clear();
}

bool FaultInjector::shouldFailSlow(std::string_view Site) {
  TlState &T = tl();
  if (T.SuppressDepth)
    return false;
  for (size_t I = 0; I < Sites.size(); ++I) {
    struct Site &S = Sites[I];
    if (S.Name != Site)
      continue;
    if (S.Rate <= 0)
      return false;
    if (T.Counts.size() <= I)
      T.Counts.resize(Sites.size(), 0);
    uint64_t N = T.Counts[I]++;
    // The decision stream: a pure function of (seed, site, scope, N), so
    // a case replays identically on any thread and any schedule.
    uint64_t X = splitmix64(Seed ^ splitmix64(S.NameHash ^ splitmix64(
                                                  T.Scope ^ splitmix64(N))));
    double U = static_cast<double>(X >> 11) * (1.0 / 9007199254740992.0);
    if (U >= S.Rate)
      return false;
    S.Fired.fetch_add(1, std::memory_order_relaxed);
    Injected.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::vector<std::pair<std::string, uint64_t>>
FaultInjector::firedBySite() const {
  std::vector<std::pair<std::string, uint64_t>> Out;
  for (const Site &S : Sites)
    Out.emplace_back(S.Name, S.Fired.load(std::memory_order_relaxed));
  return Out;
}

FaultScope::FaultScope(std::string_view Label) {
  TlState &T = tl();
  SavedScope = T.Scope;
  SavedCounts = T.Counts;
  T.Scope = fnv1a(Label);
  T.Counts.assign(T.Counts.size(), 0);
}

FaultScope::~FaultScope() {
  TlState &T = tl();
  T.Scope = SavedScope;
  T.Counts = std::move(SavedCounts);
}

FaultSuppress::FaultSuppress() { ++tl().SuppressDepth; }
FaultSuppress::~FaultSuppress() { --tl().SuppressDepth; }
