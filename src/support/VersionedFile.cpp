//===- VersionedFile.cpp - Versioned JSONL file helpers ---------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "support/VersionedFile.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace extra;
using namespace extra::support;

namespace {

Fault storeFault(std::string Message) {
  return makeFault(FaultCategory::Store, std::move(Message));
}

void appendJsonEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

/// A header line is a flat object whose only members are the "format"
/// string and the "version" number. This scanner recognizes exactly
/// that shape; anything else — record lines, torn tails, prose — is
/// "not a header", which is the tolerance the readers rely on. (The
/// general JSON line reader lives in obs, which links *against* this
/// library, so the header parser must be self-contained.)
struct HeaderScanner {
  std::string_view S;
  size_t I = 0;

  bool eat(char C) {
    if (I < S.size() && S[I] == C) {
      ++I;
      return true;
    }
    return false;
  }

  void skipWs() {
    while (I < S.size() && (S[I] == ' ' || S[I] == '\t'))
      ++I;
  }

  std::optional<std::string> string() {
    skipWs();
    if (!eat('"'))
      return std::nullopt;
    std::string Out;
    while (I < S.size() && S[I] != '"') {
      char C = S[I++];
      if (C == '\\') {
        if (I >= S.size())
          return std::nullopt;
        char E = S[I++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        default:
          return std::nullopt;
        }
      } else {
        Out += C;
      }
    }
    if (!eat('"'))
      return std::nullopt;
    return Out;
  }

  std::optional<uint32_t> number() {
    skipWs();
    size_t Start = I;
    while (I < S.size() && S[I] >= '0' && S[I] <= '9')
      ++I;
    if (I == Start)
      return std::nullopt;
    return static_cast<uint32_t>(
        std::strtoul(std::string(S.substr(Start, I - Start)).c_str(),
                     nullptr, 10));
  }
};

} // namespace

std::string support::versionHeaderLine(std::string_view Format,
                                       uint32_t Version) {
  std::string Out = "{\"format\":\"";
  appendJsonEscaped(Out, Format);
  Out += "\",\"version\":" + std::to_string(Version) + "}";
  return Out;
}

std::optional<std::pair<std::string, uint32_t>>
support::parseVersionHeader(std::string_view Line) {
  HeaderScanner P{Line};
  P.skipWs();
  if (!P.eat('{'))
    return std::nullopt;
  std::optional<std::string> Format;
  std::optional<uint32_t> Version;
  for (;;) {
    auto Key = P.string();
    if (!Key)
      return std::nullopt;
    P.skipWs();
    if (!P.eat(':'))
      return std::nullopt;
    if (*Key == "format") {
      Format = P.string();
      if (!Format)
        return std::nullopt;
    } else if (*Key == "version") {
      Version = P.number();
      if (!Version)
        return std::nullopt;
    } else {
      // An object carrying any other member is a record, not a header.
      return std::nullopt;
    }
    P.skipWs();
    if (P.eat(','))
      continue;
    break;
  }
  if (!P.eat('}'))
    return std::nullopt;
  P.skipWs();
  if (P.I != P.S.size())
    return std::nullopt;
  if (!Format || !Version)
    return std::nullopt;
  return std::make_pair(std::move(*Format), *Version);
}

std::optional<Fault>
support::checkHeader(const std::pair<std::string, uint32_t> &H,
                     const FileFormat &F, const std::string &Path) {
  if (H.first != F.Tag)
    return storeFault("'" + Path + "' is a '" + H.first + "' file, not a " +
                      F.Noun);
  if (H.second > F.Version)
    return storeFault(std::string(F.Noun) + " '" + Path + "' is version " +
                      std::to_string(H.second) +
                      "; this build reads up to version " +
                      std::to_string(F.Version));
  return std::nullopt;
}

Expected<std::vector<std::string>>
support::readVersionedLines(const std::string &Path, const FileFormat &F) {
  std::vector<std::string> Out;
  std::ifstream In(Path);
  if (!In)
    return Out; // A missing file reads as empty.
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    if (auto Header = parseVersionHeader(Line)) {
      // Absent headers are tolerated, but a present header must name
      // this format at a version we can read.
      if (auto Bad = checkHeader(*Header, F, Path))
        return *Bad;
      continue;
    }
    Out.push_back(Line);
  }
  return Out;
}

Expected<bool> support::appendVersionedLine(const std::string &Path,
                                            const FileFormat &F,
                                            const std::string &Line) {
  // A run killed mid-append leaves an unterminated final line; appending
  // straight after it would weld two records into one garbage line. Start
  // on a fresh line whenever the existing tail lacks its newline.
  bool NeedLeadingNewline = false;
  bool Empty = true;
  {
    std::ifstream In(Path, std::ios::binary);
    if (In) {
      In.seekg(0, std::ios::end);
      std::streamoff Size = In.tellg();
      if (Size > 0) {
        Empty = false;
        In.seekg(Size - 1);
        NeedLeadingNewline = In.get() != '\n';
      }
    }
  }
  std::ofstream OS(Path, std::ios::app);
  if (!OS)
    return storeFault("cannot open " + std::string(F.Noun) + " '" + Path +
                      "' for append");
  if (NeedLeadingNewline)
    OS << "\n";
  if (Empty)
    OS << versionHeaderLine(F.Tag, F.Version) << "\n";
  OS << Line << "\n";
  OS.flush();
  if (!OS)
    return storeFault("write to " + std::string(F.Noun) + " '" + Path +
                      "' failed");
  return true;
}

Expected<bool> support::writeVersionedFile(const std::string &Path,
                                           const FileFormat &F,
                                           const std::vector<std::string> &Lines) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream OS(Tmp, std::ios::trunc);
    if (!OS)
      return storeFault("cannot open '" + Tmp + "' for writing");
    OS << versionHeaderLine(F.Tag, F.Version) << "\n";
    for (const std::string &L : Lines)
      OS << L << "\n";
    OS.flush();
    if (!OS)
      return storeFault("write to '" + Tmp + "' failed");
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return storeFault("cannot rename '" + Tmp + "' over '" + Path + "'");
  }
  return true;
}
