//===- Diagnostics.h - Error reporting for EXTRA --------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and a diagnostic sink shared by the ISDL front end and
/// the transformation engine. Library code never aborts on user input; it
/// reports through a DiagnosticEngine and returns a failure value.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SUPPORT_DIAGNOSTICS_H
#define EXTRA_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace extra {

/// A 1-based line/column position within a description source text.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported problem, with an optional source position.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics produced while parsing or transforming.
///
/// The engine is append-only; callers snapshot \c errorCount() around an
/// operation to find out whether it failed.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void error(std::string Message) { error(SourceLoc(), std::move(Message)); }
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  unsigned errorCount() const { return NumErrors; }
  bool hasErrors() const { return NumErrors != 0; }
  void clear();

  /// Renders every diagnostic, one per line, for test assertions and tools.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace extra

#endif // EXTRA_SUPPORT_DIAGNOSTICS_H
