//===- VersionedFile.h - Versioned JSONL file helpers -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared durability contract of every JSONL artifact the system
/// persists — checkpoints (search/Checkpoint), the server MemoStore, and
/// the binding registry (src/registry). One place implements it:
///
///  * Files carry a schema-version header record as their first line,
///    `{"format":"<tag>","version":N}`. The header is tolerated-if-
///    absent (pre-header files still load), but a header naming a
///    foreign format or a version above what the build knows is a typed
///    Store fault — never a silent misparse.
///  * Appends are open-append-close per record. A run killed mid-append
///    leaves at most one unterminated trailing line; the next append
///    starts on a fresh line so two records are never welded together,
///    and readers skip the torn line.
///  * Whole-file writes go through a temp file + rename, so a crash
///    mid-write leaves the old file intact.
///
/// The header parser here is deliberately self-contained (extra_support
/// is the leaf library; obs, which owns the general JSON line reader,
/// links against it). It only needs to recognize the two header fields —
/// any line it cannot read is simply not a header, which is exactly the
/// tolerance the record readers rely on.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SUPPORT_VERSIONEDFILE_H
#define EXTRA_SUPPORT_VERSIONEDFILE_H

#include "support/Error.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace extra {
namespace support {

/// Identity of one versioned file format: the header tag, the highest
/// version this build reads/writes, and the human noun used in fault
/// messages ("checkpoint", "memo store", "binding registry").
struct FileFormat {
  const char *Tag;
  uint32_t Version;
  const char *Noun;
};

/// Renders a `{"format":"<tag>","version":N}` header line (no trailing
/// newline).
std::string versionHeaderLine(std::string_view Format, uint32_t Version);

/// Parses a header line; nullopt when \p Line is not a version header
/// (records and torn lines are not headers).
std::optional<std::pair<std::string, uint32_t>>
parseVersionHeader(std::string_view Line);

/// Checks a parsed header against \p F. Returns no fault for a matching
/// header at a readable version; a typed Store fault ("'<path>' is a
/// '<tag>' file, not a <noun>" / "<noun> '<path>' is version N; this
/// build reads up to version M") otherwise.
std::optional<Fault> checkHeader(const std::pair<std::string, uint32_t> &H,
                                 const FileFormat &F, const std::string &Path);

/// Reads every data line of the versioned file at \p Path, header lines
/// stripped after validation. A missing file reads as empty; blank lines
/// are dropped; an absent header is tolerated (the file is read as the
/// current version). A header naming a foreign format or a future
/// version is a typed Store fault.
Expected<std::vector<std::string>> readVersionedLines(const std::string &Path,
                                                      const FileFormat &F);

/// Appends \p Line (one complete record, no trailing newline) to \p
/// Path, creating the file — stamped with the version header — on first
/// use. When the existing tail lacks its newline (a run killed
/// mid-append), the record starts on a fresh line. Store fault when the
/// file cannot be opened or the write fails.
Expected<bool> appendVersionedLine(const std::string &Path,
                                   const FileFormat &F,
                                   const std::string &Line);

/// Rewrites \p Path as header + \p Lines through a temp file + rename,
/// so a crash mid-write leaves the old file intact. Store fault on any
/// I/O failure.
Expected<bool> writeVersionedFile(const std::string &Path, const FileFormat &F,
                                  const std::vector<std::string> &Lines);

} // namespace support
} // namespace extra

#endif // EXTRA_SUPPORT_VERSIONEDFILE_H
