//===- FaultInjection.h - Deterministic seeded fault injection --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, deterministic fault injector for exercising the
/// robustness layer. Named sites in the parser, validator, interpreter,
/// rule application, and synthesis call `shouldFail("<site>")`; when the
/// injector is armed with a rate for that site, the call deterministically
/// returns true for a pseudo-random subset of invocations and the site
/// raises a typed fault (a diagnostic, a failed ExecResult, or a
/// FaultError for the nearest containment layer to catch).
///
/// Design constraints, in order:
///
///  * **Zero cost when disabled.** `shouldFail` is an inline relaxed
///    bool load and a branch; nothing else happens in production.
///  * **Deterministic and schedule-independent.** The decision for the
///    Nth check of a site is a pure function of (seed, site, scope, N).
///    Scope is a thread-local hash set by FaultScope — the batch driver
///    scopes each case by its id — and the per-site counters are
///    thread-local and reset at scope entry, so a case sees the same
///    injected faults whether the batch runs on 1 thread or 8.
///  * **Configured once, before workers start.** configure()/setSeed()
///    are not synchronized against concurrent shouldFail(); the batch
///    drivers and the CLI arm the injector up front.
///
/// Spec syntax (CLI `--inject`, env `EXTRA_INJECT`):
///   "<site>=<rate>[,<site>=<rate>...]"   rate in [0,1]
/// Unknown site names are rejected so typos surface.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SUPPORT_FAULTINJECTION_H
#define EXTRA_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace extra {

class FaultInjector {
public:
  /// The process-wide injector.
  static FaultInjector &instance();

  /// The named sites compiled into the code base.
  static const std::vector<std::string> &knownSites();

  /// Parses and installs a "<site>=<rate>,..." spec (rates accumulate
  /// over calls; a later spec overrides a site's earlier rate). Arms the
  /// injector when any rate is positive. Returns false + \p Error on
  /// malformed specs or unknown sites.
  bool configure(const std::string &Spec, std::string *Error = nullptr);

  /// Reads the EXTRA_INJECT environment variable, if set, through
  /// configure(). Returns false only on a malformed value.
  bool configureFromEnv(std::string *Error = nullptr);

  /// Seed of the decision stream (default 0x5EED'FA17).
  void setSeed(uint64_t Seed) { this->Seed = Seed; }

  /// Disarms and forgets all rates, counters, and the seed override.
  void reset();

  /// True when any site has a positive rate.
  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  /// The hot-path check. Inline fast exit when disarmed.
  bool shouldFail(std::string_view Site) {
    if (!Armed.load(std::memory_order_relaxed))
      return false;
    return shouldFailSlow(Site);
  }

  /// Total injected faults since the last reset().
  uint64_t injectedTotal() const {
    return Injected.load(std::memory_order_relaxed);
  }
  /// (site, fired-count) for every configured site, in site-name order.
  std::vector<std::pair<std::string, uint64_t>> firedBySite() const;

private:
  FaultInjector() = default;
  bool shouldFailSlow(std::string_view Site);

  struct Site {
    std::string Name;
    uint64_t NameHash = 0;
    double Rate = 0;
    std::atomic<uint64_t> Fired{0};
  };
  // Append-only after configure; scanned linearly — the site count is
  // tiny. A deque because Site holds an atomic (non-movable) and needs
  // stable addresses across appends.
  std::deque<Site> Sites;
  std::atomic<bool> Armed{false};
  std::atomic<uint64_t> Injected{0};
  uint64_t Seed = 0x5EEDFA17;

  friend class FaultScope;
  friend class FaultSuppress;
};

/// RAII injection scope: decisions inside the scope depend on \p Label
/// (and restart their per-site counters), so the same case id sees the
/// same faults regardless of which worker thread runs it or what ran
/// before. Scopes nest; the previous scope is restored on exit.
class FaultScope {
public:
  explicit FaultScope(std::string_view Label);
  ~FaultScope();
  FaultScope(const FaultScope &) = delete;
  FaultScope &operator=(const FaultScope &) = delete;

private:
  uint64_t SavedScope;
  std::vector<uint64_t> SavedCounts;
};

/// RAII suppression: shouldFail() is false inside, however armed. Used
/// where a failure would violate an invariant rather than exercise a
/// recovery path (e.g. descriptions::load asserts the built-in library
/// parses; the checked loader is the injectable entry point).
class FaultSuppress {
public:
  FaultSuppress();
  ~FaultSuppress();
  FaultSuppress(const FaultSuppress &) = delete;
  FaultSuppress &operator=(const FaultSuppress &) = delete;
};

} // namespace extra

#endif // EXTRA_SUPPORT_FAULTINJECTION_H
