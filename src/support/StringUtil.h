//===- StringUtil.h - Small string helpers --------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SUPPORT_STRINGUTIL_H
#define EXTRA_SUPPORT_STRINGUTIL_H

#include <string>
#include <string_view>
#include <vector>

namespace extra {

/// Returns \p S with leading and trailing ASCII whitespace removed.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep, keeping empty fields.
std::vector<std::string> split(std::string_view S, char Sep);

/// True if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 std::string_view Sep);

/// Left-pads \p S with spaces to at least \p Width columns.
std::string padLeft(std::string_view S, size_t Width);

/// Right-pads \p S with spaces to at least \p Width columns.
std::string padRight(std::string_view S, size_t Width);

} // namespace extra

#endif // EXTRA_SUPPORT_STRINGUTIL_H
