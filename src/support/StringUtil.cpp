//===- StringUtil.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <cctype>

using namespace extra;

std::string_view extra::trim(std::string_view S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

std::vector<std::string> extra::split(std::string_view S, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Out.emplace_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Out;
}

bool extra::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

std::string extra::join(const std::vector<std::string> &Parts,
                        std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string extra::padLeft(std::string_view S, size_t Width) {
  std::string Out;
  if (S.size() < Width)
    Out.assign(Width - S.size(), ' ');
  Out += S;
  return Out;
}

std::string extra::padRight(std::string_view S, size_t Width) {
  std::string Out(S);
  if (Out.size() < Width)
    Out.append(Width - Out.size(), ' ');
  return Out;
}
