//===- Error.cpp - Typed fault taxonomy -------------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

using namespace extra;

const char *extra::faultCategoryName(FaultCategory C) {
  switch (C) {
  case FaultCategory::None:
    return "none";
  case FaultCategory::Parse:
    return "parse";
  case FaultCategory::Validate:
    return "validate";
  case FaultCategory::InterpBudget:
    return "interp-budget";
  case FaultCategory::RuleApplication:
    return "rule-application";
  case FaultCategory::Synth:
    return "synth";
  case FaultCategory::Protocol:
    return "protocol";
  case FaultCategory::Store:
    return "store";
  case FaultCategory::Transport:
    return "transport";
  case FaultCategory::Internal:
    return "internal";
  }
  return "internal";
}

FaultCategory extra::faultCategoryFromName(const std::string &Name) {
  for (FaultCategory C :
       {FaultCategory::None, FaultCategory::Parse, FaultCategory::Validate,
        FaultCategory::InterpBudget, FaultCategory::RuleApplication,
        FaultCategory::Synth, FaultCategory::Protocol, FaultCategory::Store,
        FaultCategory::Transport, FaultCategory::Internal})
    if (Name == faultCategoryName(C))
      return C;
  return FaultCategory::Internal;
}

std::string Fault::str() const {
  if (!isFault())
    return "none";
  std::string Out = faultCategoryName(Category);
  if (!Message.empty()) {
    Out += ": ";
    Out += Message;
  }
  return Out;
}
