//===- Error.h - Typed fault taxonomy for EXTRA -----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured error taxonomy of the robustness layer. Library code
/// never lets an exception cross a subsystem boundary: entry points the
/// batch searcher calls (parsing, validation, interpretation, rule
/// application, synthesis) report failures as *values* — a Fault with a
/// typed category — so one bad case can be recorded, retried, and
/// reported without taking down a whole discovery batch.
///
/// Three pieces:
///
///  * FaultCategory / Fault — the taxonomy itself. Categories are coarse
///    on purpose: they drive batch outcome classification and the
///    fault-injection matrix, not fine-grained diagnostics (those stay in
///    DiagnosticEngine and the free-form message).
///  * Expected<T> — a minimal result-or-fault carrier for entry points
///    that produce a value. Deliberately tiny (no monadic surface): the
///    call sites test `if (!R)` and read `R.fault()`.
///  * FaultError — the one sanctioned exception type, thrown only by
///    fault-injection sites and caught at the nearest containment layer
///    (transform::Engine::apply, search::searchDerivation, the batch
///    worker's catch-all), where it turns back into a Fault value.
///
//===----------------------------------------------------------------------===//

#ifndef EXTRA_SUPPORT_ERROR_H
#define EXTRA_SUPPORT_ERROR_H

#include <cassert>
#include <exception>
#include <optional>
#include <string>
#include <utility>

namespace extra {

/// Coarse classification of a contained failure. The order is stable and
/// serialized by name (checkpoint records, trace events), never by value.
enum class FaultCategory {
  None,            ///< No fault (the success value of fault-carrying results).
  Parse,           ///< The ISDL front end rejected or failed on input text.
  Validate,        ///< Semantic validation rejected a parsed description.
  InterpBudget,    ///< The interpreter hit its step budget (runaway loop).
  RuleApplication, ///< A transformation rule failed abnormally (not a
                   ///< polite refusal — those carry reasons, not faults).
  Synth,           ///< Argument synthesis failed abnormally.
  Protocol,        ///< A discovery-service request was malformed or
                   ///< violated the line-delimited JSON protocol.
  Store,           ///< The persistent memo/checkpoint store failed
                   ///< (unwritable file, version mismatch, lock conflict).
  Transport,       ///< The network layer under the protocol failed: a
                   ///< connect/read/write timed out, the peer vanished
                   ///< mid-line, or a frame exceeded the line cap.
  Internal,        ///< Anything else: logic errors, injected chaos,
                   ///< foreign exceptions caught by a containment layer.
};

/// Stable lower-case name of a category ("parse", "rule-application", ...).
const char *faultCategoryName(FaultCategory C);

/// Parses a category name back; FaultCategory::Internal for unknown text
/// (a checkpoint from a newer build must still load).
FaultCategory faultCategoryFromName(const std::string &Name);

/// One contained failure: what kind, and a human-readable message.
struct Fault {
  FaultCategory Category = FaultCategory::None;
  std::string Message;

  bool isFault() const { return Category != FaultCategory::None; }
  /// "category: message" (or "none").
  std::string str() const;
};

/// The only exception the robustness layer itself throws — from
/// fault-injection sites — always caught by a containment layer and
/// converted back into a Fault value. Production code paths never throw
/// it; catching `FaultError` (or `std::exception`, which it derives from)
/// at a boundary covers both injected and genuine foreign exceptions.
class FaultError : public std::exception {
public:
  explicit FaultError(Fault F) : F(std::move(F)) {}
  const Fault &fault() const { return F; }
  const char *what() const noexcept override { return F.Message.c_str(); }

private:
  Fault F;
};

/// A value or a Fault. The minimal Expected: construction from either,
/// boolean test, dereference. Dereferencing a faulted Expected is a
/// programming error (asserted).
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Fault F) : F(std::move(F)) {
    assert(this->F.isFault() && "Expected constructed from a non-fault");
  }

  explicit operator bool() const { return Value.has_value(); }
  bool hasValue() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "dereferencing a faulted Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing a faulted Expected");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// The fault; Category None when the Expected holds a value.
  const Fault &fault() const { return F; }

  /// Moves the value out (the Expected is left empty-but-valueless).
  T take() {
    assert(Value && "taking from a faulted Expected");
    T Out = std::move(*Value);
    Value.reset();
    return Out;
  }

private:
  std::optional<T> Value;
  Fault F;
};

/// Convenience constructor used at fault sites.
inline Fault makeFault(FaultCategory C, std::string Message) {
  Fault F;
  F.Category = C;
  F.Message = std::move(Message);
  return F;
}

} // namespace extra

#endif // EXTRA_SUPPORT_ERROR_H
