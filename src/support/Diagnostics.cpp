//===- Diagnostics.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace extra;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Col);
}

std::string Diagnostic::str() const {
  const char *Prefix = "error";
  switch (Kind) {
  case DiagKind::Error:
    Prefix = "error";
    break;
  case DiagKind::Warning:
    Prefix = "warning";
    break;
  case DiagKind::Note:
    Prefix = "note";
    break;
  }
  std::string Out = Loc.isValid() ? Loc.str() + ": " : std::string();
  Out += Prefix;
  Out += ": ";
  Out += Message;
  return Out;
}

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
