//===- discover_derivation.cpp - Autonomous discovery walkthrough -*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// The paper's §7 asks for "methods ... to help the user in deciding how
// the analysis should proceed". This example removes the user entirely:
// the searcher (src/search) is pointed at the PC2 block-clear operator
// and the 8086 stosb instruction with *no recorded script*, discovers a
// derivation on its own — rule arguments synthesized from the structured
// divergence reports (src/synth) — verifies it end to end, and finally
// diffs the discovery against the derivation a user recorded by hand.
//
// Build and run:   ./build/examples/discover_derivation
//
//===----------------------------------------------------------------------===//

#include "analysis/Derivations.h"
#include "descriptions/Descriptions.h"
#include "search/Searcher.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace extra;
using namespace extra::search;

namespace {

void printScript(const char *Title, const transform::Script &S) {
  std::printf("%s (%zu step%s):\n", Title, S.size(), S.size() == 1 ? "" : "s");
  for (const transform::Step &St : S)
    std::printf("  %s\n", St.str().c_str());
  if (S.empty())
    std::printf("  (none)\n");
}

std::vector<std::string> constraintLines(const constraint::ConstraintSet &CS) {
  std::vector<std::string> Out;
  for (const constraint::Constraint &C : CS.items())
    Out.push_back(C.str());
  std::sort(Out.begin(), Out.end());
  return Out;
}

} // namespace

int main() {
  const char *OperatorId = "pc2.clear";
  const char *InstructionId = "i8086.stosb";

  std::printf("==== Autonomous analysis: can %s implement %s? ====\n\n",
              InstructionId, OperatorId);

  // The searcher sees only the two descriptions and its budgets; the
  // recorded derivation library is never consulted.
  SearchLimits Limits;
  DiscoveryResult R = discoverAndVerify(OperatorId, InstructionId, Limits);
  if (!R.Outcome.Found) {
    std::fprintf(stderr, "no derivation found: %s\n",
                 R.Outcome.FailureReason.c_str());
    return 1;
  }
  std::printf("derivation discovered in %.1f ms (%llu nodes expanded, "
              "%llu candidate steps tried)\n",
              R.Outcome.Stats.WallMs,
              (unsigned long long)R.Outcome.Stats.NodesExpanded,
              (unsigned long long)R.Outcome.Stats.CandidatesTried);
  std::printf("end-to-end replay: %s\n\n",
              R.Verified ? "VERIFIED" : "FAILED");
  if (!R.Verified)
    return 1;

  printScript("discovered operator script", R.Outcome.OperatorScript);
  std::printf("\n");
  printScript("discovered instruction script", R.Outcome.InstructionScript);

  std::printf("\nbinding of the common form:\n");
  for (const auto &[A, B] : R.Outcome.Binding.pairs())
    std::printf("  %s <-> %s\n", A.c_str(), B.c_str());

  std::printf("\nconstraints the assembler must establish:\n");
  for (const std::string &L : constraintLines(R.Replay.Constraints))
    std::printf("  %s\n", L.c_str());

  // ==== Diff against the hand-recorded derivation ====
  const analysis::AnalysisCase *Recorded =
      analysis::findCase("i8086.stosb/pc2.clear");
  if (!Recorded) {
    std::fprintf(stderr, "recorded case not found\n");
    return 1;
  }
  analysis::AnalysisResult Replay = analysis::runAnalysis(*Recorded);
  if (!Replay.Succeeded) {
    std::fprintf(stderr, "recorded replay failed\n");
    return 1;
  }

  std::printf("\n==== Diff vs the hand-recorded derivation ====\n\n");
  printScript("recorded operator script", Recorded->OperatorScript);
  std::printf("\n");
  printScript("recorded instruction script", Recorded->InstructionScript);

  std::printf("\nscript lengths: discovered %zu+%zu vs recorded %zu+%zu "
              "(operator+instruction)\n",
              R.Outcome.OperatorScript.size(),
              R.Outcome.InstructionScript.size(),
              Recorded->OperatorScript.size(),
              Recorded->InstructionScript.size());

  // Scripts may legitimately differ — several step orders reach common
  // form — but the *meaning* of the analysis is its constraint set, and
  // that must coincide exactly.
  std::vector<std::string> Mine = constraintLines(R.Replay.Constraints);
  std::vector<std::string> Theirs = constraintLines(Replay.Constraints);
  if (Mine == Theirs) {
    std::printf("\nconstraint sets: IDENTICAL (%zu constraints)\n",
                Mine.size());
  } else {
    std::printf("\nconstraint sets DIFFER:\n");
    for (const std::string &L : Mine)
      if (std::find(Theirs.begin(), Theirs.end(), L) == Theirs.end())
        std::printf("  only discovered: %s\n", L.c_str());
    for (const std::string &L : Theirs)
      if (std::find(Mine.begin(), Mine.end(), L) == Mine.end())
        std::printf("  only recorded:   %s\n", L.c_str());
    return 1;
  }
  return 0;
}
