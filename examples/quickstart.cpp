//===- quickstart.cpp - EXTRA in five minutes -------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// A first tour of the public API:
//
//   1. parse an ISPS-like description of a toy instruction,
//   2. apply verified source-to-source transformations to simplify it,
//   3. match it against a language operator, modulo names,
//   4. inspect the constraints the analysis produced.
//
// Build and run:   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "isdl/Parser.h"
#include "isdl/Printer.h"
#include "isdl/Equiv.h"
#include "isdl/Validate.h"
#include "transform/Transform.h"

#include <cstdio>

using namespace extra;

namespace {

// A toy "clear memory" instruction with a direction flag, like the 8086
// string instructions have.
const char *InstructionSource = R"(
zap.instruction := begin
  ** OPERANDS **
    p<15:0>,    ! area address
    n<15:0>,    ! byte count
    down<>,     ! direction flag
  ** PROCESS **
    zap.execute := begin
      input (down, p, n);
      repeat
        exit_when (n = 0);
        n <- n - 1;
        Mb[p] <- 0;
        if down then
          p <- p - 1;
        else
          p <- p + 1;
        end_if;
      end_repeat;
      output (p);
    end
end
)";

// The language operator: clear n bytes from low to high addresses.
const char *OperatorSource = R"(
clear.operation := begin
  ** OPERANDS **
    area: integer,
    count: integer,
  ** PROCESS **
    clear.execute := begin
      input (area, count);
      repeat
        exit_when (count = 0);
        count <- count - 1;
        Mb[area] <- 0;
        area <- area + 1;
      end_repeat;
      output (area);
    end
end
)";

} // namespace

int main() {
  DiagnosticEngine Diags;

  // 1. Parse and validate both descriptions.
  auto Instruction = isdl::parseDescription(InstructionSource, Diags);
  auto Operator = isdl::parseDescription(OperatorSource, Diags);
  if (!Instruction || !Operator || !isdl::validate(*Instruction, Diags) ||
      !isdl::validate(*Operator, Diags)) {
    std::fprintf(stderr, "parse/validate failed:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("=== instruction, as described in the manual ===\n%s\n",
              isdl::printDescription(*Instruction).c_str());

  // 2. Simplify: pin the direction flag to "up" and fold the conditional
  // away. Every step's applicability conditions are verified by the
  // engine; a failed step leaves the description untouched.
  transform::Engine Session(Instruction->clone());
  transform::Script Steps = {
      {"fix-operand-value", "", {{"operand", "down"}, {"value", "0"}}},
      {"global-constant-propagate", "", {{"var", "down"}}},
      {"if-false-elim", "", {}},
      {"dead-assign-elim", "", {{"var", "down"}}},
      {"dead-decl-elim", "", {{"var", "down"}}},
  };
  std::string Error;
  size_t Applied = Session.applyScript(Steps, &Error);
  if (Applied != Steps.size()) {
    std::fprintf(stderr, "transformation failed: %s\n", Error.c_str());
    return 1;
  }
  std::printf("=== after %zu verified transformation steps ===\n%s\n",
              Applied, isdl::printDescription(Session.current()).c_str());

  // 3. The common-form check: identical except for names?
  isdl::MatchResult Match =
      isdl::matchDescriptions(*Operator, Session.current());
  if (!Match.Matched) {
    std::fprintf(stderr, "no common form: %s\n", Match.Mismatch.c_str());
    return 1;
  }
  std::printf("=== operator/register binding ===\n%s\n",
              Match.Binding.str().c_str());

  // 4. The constraints a code generator must satisfy to use `zap` for
  // `clear`: the pinned flag, recorded during simplification.
  std::printf("=== constraints ===\n%s",
              Session.constraints().str().c_str());
  std::printf("\n(plus the register-size bounds induced by the binding:\n"
              " area and count must fit the 16-bit operand registers)\n");
  return 0;
}
