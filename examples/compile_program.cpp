//===- compile_program.cpp - Compile a textual program ----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// A miniature compiler driver: reads a program in the little string
// language (from a file argument, or a built-in demo), generates code for
// the requested target, prints the instruction selection and the
// assembly, and executes it on the matching simulator.
//
//   ./build/examples/compile_program [i8086|vax|ibm370] [program-file]
//
//===----------------------------------------------------------------------===//

#include "codegen/Frontend.h"
#include "codegen/Target.h"
#include "sim/Sim370.h"
#include "sim/Sim8086.h"
#include "sim/SimVax.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace extra;
using namespace extra::codegen;

namespace {

const char *DemoProgram = R"(
! Pascal-like fragment: s2 := s1; found := index(s2, 'i');
! all strings declared with capacity 16.
range len 0 16;
assume pascal.no-overlap;
const len = 14;
move(300, 100, len);
found := index(300, len, 'i');
same := equal(100, 300, len);
clear(500, 8);
)";

} // namespace

int main(int argc, char **argv) {
  std::string TargetName = argc > 1 ? argv[1] : "i8086";
  std::string Source = DemoProgram;
  if (argc > 2) {
    std::ifstream F(argv[2]);
    if (!F.good()) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[2]);
      return 1;
    }
    std::ostringstream Buf;
    Buf << F.rdbuf();
    Source = Buf.str();
  }

  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  if (!P) {
    std::fprintf(stderr, "parse errors:\n%s", Diags.str().c_str());
    return 1;
  }

  std::unique_ptr<Target> T;
  sim::SimResult (*Run)(const std::vector<std::string> &,
                        const interp::Memory &,
                        const std::map<std::string, int64_t> &,
                        uint64_t) = nullptr;
  if (TargetName == "i8086") {
    T = makeI8086Target();
    Run = sim::run8086;
  } else if (TargetName == "vax") {
    T = makeVaxTarget();
    Run = sim::runVax;
  } else if (TargetName == "ibm370") {
    T = makeIbm370Target();
    Run = sim::run370;
  } else {
    std::fprintf(stderr, "unknown target '%s' (i8086|vax|ibm370)\n",
                 TargetName.c_str());
    return 1;
  }

  CodeGenResult Code = T->generate(*P);
  std::printf("; target: %s\n; instruction selection:\n", T->name().c_str());
  for (const SelectionNote &N : Code.Notes)
    std::printf(";   %-10s -> %-18s %s\n", N.Operator.c_str(),
                N.Chosen.c_str(), N.Reason.c_str());
  std::printf("\n");
  for (const std::string &Line : Code.Asm)
    std::printf("%s\n", Line.c_str());

  interp::Memory M;
  interp::storeBytes(M, 100, "reproduction!!"); // 14 bytes, sic
  sim::SimResult S = Run(Code.Asm, M, {}, 1000000);
  if (!S.Ok) {
    std::fprintf(stderr, "\nsimulation failed: %s\n", S.Error.c_str());
    return 1;
  }
  std::printf("\n; simulated: %llu dispatches, %llu byte ops\n",
              static_cast<unsigned long long>(S.Instructions),
              static_cast<unsigned long long>(S.MicroOps));
  std::printf("; results: found=%lld same=%lld moved=\"%s\"\n",
              static_cast<long long>(S.reg("found")),
              static_cast<long long>(S.reg("same")),
              interp::loadBytes(S.Mem, 300, 14).c_str());
  return 0;
}
