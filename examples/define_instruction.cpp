//===- define_instruction.cpp - Analyzing your own instruction --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// Retargeting in practice: a user brings a machine the library has never
// seen — here the Zilog Z80's CPIR (compare, increment, repeat), a real
// exotic search instruction — writes its ISPS-like description from the
// manual, and derives its equivalence to the stock Rigel index operator
// with the transformation engine. The result is the same artifact the
// built-in analyses produce: a name binding plus a constraint set a code
// generator can consume.
//
// Build and run:   ./build/examples/define_instruction
//
//===----------------------------------------------------------------------===//

#include "analysis/DiffCheck.h"
#include "descriptions/Descriptions.h"
#include "isdl/Equiv.h"
#include "isdl/Parser.h"
#include "isdl/Printer.h"
#include "isdl/Validate.h"
#include "transform/Transform.h"

#include <cstdio>

using namespace extra;

namespace {

// Z80 CPIR, from the Z80 CPU User Manual: compares A with (HL), walking
// HL upward and counting BC down; repeats until a match or BC = 0. The
// paper's analysis (§2) would classify the BC-and-match exit pair exactly
// like scasb's.
const char *CpirSource = R"(
cpir.instruction := begin
  ** OPERANDS **
    hl<15:0>,   ! string pointer
    bc<15:0>,   ! byte counter
    a<7:0>,     ! character sought
  ** STATE **
    z<>,        ! zero flag: set when a match stopped the scan
  ** PROCESS **
    cpir.execute := begin
      input (hl, bc, a);
      z <- 0;
      repeat
        exit_when (bc = 0);
        bc <- bc - 1;
        if (a - probe()) = 0 then
          z <- 1;
        else
          z <- 0;
        end_if;
        exit_when (z);
      end_repeat;
      output (z, hl, bc);
    end
  ** ACCESS **
    probe()<7:0> := begin
      probe <- Mb[hl];
      hl <- hl + 1;
    end
end
)";

} // namespace

int main() {
  DiagnosticEngine Diags;
  auto Cpir = isdl::parseDescription(CpirSource, Diags);
  if (!Cpir || !isdl::validate(*Cpir, Diags)) {
    std::fprintf(stderr, "bad description:\n%s", Diags.str().c_str());
    return 1;
  }
  auto Index = descriptions::load("rigel.index");

  // Instruction side: CPIR needs only augments — the initial pointer
  // save and the index epilogue (its z flag and loop already have the
  // right shape). Every step is differentially verified.
  transform::Engine InstrSession(Cpir->clone());
  InstrSession.setVerifier(
      analysis::makeStepVerifier(InstrSession.constraints()));
  transform::Script InstrScript = {
      {"allocate-temp", "",
       {{"name", "org"}, {"type", "bits:15:0"}, {"section", "STATE"}}},
      {"add-prologue", "", {{"code", "org <- hl;"}}},
      {"replace-output", "",
       {{"code",
         "if z then output (hl - org); else output (0); end_if;"}}},
  };
  std::string Error;
  if (InstrSession.applyScript(InstrScript, &Error) != InstrScript.size()) {
    std::fprintf(stderr, "instruction derivation failed: %s\n",
                 Error.c_str());
    return 1;
  }

  // Operator side: the same reshaping the scasb analysis used.
  transform::Engine OpSession(Index->clone());
  OpSession.setVerifier(analysis::makeStepVerifier(OpSession.constraints()));
  transform::Script OpScript = {
      {"allocate-temp", "",
       {{"name", "found"}, {"type", "flag"}, {"section", "STATE"}}},
      {"record-exit-cause", "", {{"flag", "found"}}},
      {"move-up", "", {{"var", "Src.Length"}}},
      {"move-up", "", {{"var", "Src.Length"}}},
      {"eq-to-diff-zero", "", {}},
      {"index-to-pointer", "",
       {{"index-var", "Src.Index"},
        {"base-var", "Src.Base"},
        {"pointer-var", "ptr"}}},
      {"dead-decl-elim", "", {{"var", "Src.Index"}}},
  };
  if (OpSession.applyScript(OpScript, &Error) != OpScript.size()) {
    std::fprintf(stderr, "operator derivation failed: %s\n", Error.c_str());
    return 1;
  }

  std::printf("=== augmented CPIR ===\n%s\n",
              isdl::printDescription(InstrSession.current()).c_str());

  isdl::MatchResult Match =
      isdl::matchDescriptions(OpSession.current(), InstrSession.current());
  if (!Match.Matched) {
    std::fprintf(stderr, "no common form: %s\n", Match.Mismatch.c_str());
    return 1;
  }
  std::printf("=== binding: Rigel index <-> Z80 cpir ===\n%s\n",
              Match.Binding.str().c_str());
  std::printf("=== constraints for the Z80 code generator ===\n%s",
              InstrSession.constraints().str().c_str());
  std::printf("range: 0 <= Src.Length <= 65535  "
              "! induced by the binding to bc<15:0>\n");
  std::printf("\n%zu + %zu verified steps; CPIR can implement index.\n",
              OpSession.stepsApplied(), InstrSession.stepsApplied());
  return 0;
}
