//===- analyze_scasb.cpp - The §4.1 walkthrough ----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// Replays the paper's flagship example end to end: proving the Intel 8086
// scasb instruction implements the Rigel index operator. Prints the
// intermediate forms corresponding to Figures 2-5, the binding, and the
// constraint set, then shows the real 8086 code the binding produces.
//
// Build and run:   ./build/examples/analyze_scasb
//
//===----------------------------------------------------------------------===//

#include "analysis/Derivations.h"
#include "codegen/Target.h"
#include "descriptions/Descriptions.h"
#include "isdl/Printer.h"
#include "sim/Sim8086.h"

#include <cstdio>

using namespace extra;
using namespace extra::analysis;

int main() {
  const AnalysisCase *Case = findCase("i8086.scasb/rigel.index");
  if (!Case) {
    std::fprintf(stderr, "case not found\n");
    return 1;
  }

  std::printf("==== Figure 2: the Rigel index operator ====\n%s\n",
              descriptions::sourceFor("rigel.index"));
  std::printf("==== Figure 3: the 8086 scasb instruction ====\n%s\n",
              descriptions::sourceFor("i8086.scasb"));

  // Replay the instruction-side derivation in two halves so the
  // intermediate (Figure 4) form is visible.
  auto Instruction = descriptions::load(Case->InstructionId);
  transform::Engine Session(std::move(*Instruction));
  size_t SimplificationSteps = 0;
  for (const transform::Step &S : Case->InstructionScript) {
    // The augment phase starts at the zf prologue fix.
    bool AugmentPhase =
        S.Rule == "fix-operand-value" && S.Args.count("operand") &&
        S.Args.at("operand") == "zf";
    if (AugmentPhase && SimplificationSteps == 0) {
      SimplificationSteps = Session.stepsApplied();
      std::printf("==== Figure 4: scasb simplified (%zu steps: rf=1, "
                  "rfz=0, df=0) ====\n%s\n",
                  SimplificationSteps,
                  isdl::printDescription(Session.current()).c_str());
    }
    transform::ApplyResult R = Session.apply(S);
    if (!R.Applied) {
      std::fprintf(stderr, "step '%s' failed: %s\n", S.str().c_str(),
                   R.Reason.c_str());
      return 1;
    }
  }
  std::printf("==== Figure 5: scasb augmented (pointer save, zf zeroing, "
              "index epilogue) ====\n%s\n",
              isdl::printDescription(Session.current()).c_str());

  // The full analysis (both sides, differential checks, common form).
  AnalysisResult R = runAnalysis(*Case, Mode::Base);
  if (!R.Succeeded) {
    std::fprintf(stderr, "analysis failed: %s\n", R.FailureReason.c_str());
    return 1;
  }
  std::printf("==== analysis summary ====\n");
  std::printf("total steps: %u (operator %u + instruction %u); the paper "
              "reports %u with its finer-grained rules\n\n",
              R.StepsApplied, R.OperatorSteps, R.InstructionSteps,
              Case->PaperSteps);
  std::printf("binding (operator <-> instruction):\n%s\n",
              R.Binding.str().c_str());
  std::printf("constraints:\n%s\n", R.Constraints.str().c_str());

  // And the §4.1 payoff: real 8086 code for `index`, run on the
  // simulator.
  auto Target = codegen::makeI8086Target();
  codegen::Program P;
  P.Ops.push_back(codegen::strIndex("result",
                                    codegen::Value::symbol("string"),
                                    codegen::Value::symbol("length"),
                                    codegen::Value::symbol("char")));
  codegen::CodeGenResult Code = Target->generate(P);
  std::printf("==== generated 8086 code for index (cf. the §4.1 listing) "
              "====\n");
  for (const std::string &Line : Code.Asm)
    std::printf("%s\n", Line.c_str());

  interp::Memory M;
  interp::storeBytes(M, 100, "exotic");
  sim::SimResult S = sim::run8086(
      Code.Asm, M, {{"string", 100}, {"length", 6}, {"char", 't'}});
  std::printf("\nsimulated: index(\"exotic\", 't') = %lld (expected 4)\n",
              static_cast<long long>(S.reg("result")));
  return S.Ok && S.reg("result") == 4 ? 0 : 1;
}
