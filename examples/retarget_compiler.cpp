//===- retarget_compiler.cpp - One program, three machines ------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// The §6 story: a compiler front end hands the same high-level internal
// form to three different back ends. Each target consults its binding
// table, satisfies (or fails) the constraints, and emits exotic
// instructions or primitive loops. The generated code is then executed
// on the matching simulator and checked for identical observable
// results.
//
// Unlike the hand-built bootstrap tables, the bindings here come from a
// *registry*: the deployable artifact the discovery pipeline exports.
// Pass a registry file to compile with discovered bindings, or run with
// no arguments to build one in-process from the recorded corpus:
//
//   ./build/examples/retarget_compiler [registry.jsonl]
//
// Either way the hand tables are cleared first — every exotic emission
// below was compiled from a registry entry, not wired in by hand.
//
//===----------------------------------------------------------------------===//

#include "codegen/Target.h"
#include "registry/BindingCompiler.h"
#include "registry/RegistryBuilder.h"
#include "sim/Sim370.h"
#include "sim/Sim8086.h"
#include "sim/SimVax.h"

#include <cstdio>

using namespace extra;
using namespace extra::codegen;

int main(int argc, char **argv) {
  // Load the binding registry: from the file on the command line, or by
  // replaying the built-in recorded derivations when none is given.
  registry::Registry Reg;
  if (argc > 1) {
    auto Loaded = registry::Registry::load(argv[1]);
    if (!Loaded) {
      std::printf("cannot load registry %s: %s\n", argv[1],
                  Loaded.fault().Message.c_str());
      return 1;
    }
    Reg = std::move(*Loaded);
    std::printf("registry: %zu entries from %s\n\n", Reg.size(), argv[1]);
  } else {
    registry::RegistryBuilder Builder;
    if (auto Added = Builder.addRecordedCases()) {
      Reg = Builder.registry();
      std::printf("registry: %u entries from the recorded corpus\n\n", *Added);
    } else {
      std::printf("cannot build registry: %s\n",
                  Added.fault().Message.c_str());
      return 1;
    }
  }

  // The front end compiled something like:
  //   var buf: array of char;  s: string[16];
  //   buf := s;  i := index(buf, 'r');  eq := (buf = s);  clear(scratch);
  Program P;
  P.Ops.push_back(strMove(Value::literal(300), Value::literal(100),
                          Value::literal(16)));
  P.Ops.push_back(strIndex("i", Value::literal(300), Value::literal(16),
                           Value::literal('r')));
  P.Ops.push_back(strEqual("eq", Value::literal(100), Value::literal(300),
                           Value::literal(16)));
  P.Ops.push_back(blockClear(Value::literal(400), Value::literal(8)));
  // Pascal guarantees the move operands cannot overlap, and the strings
  // are declared with 16-byte capacity.
  P.Facts.Axioms.insert("pascal.no-overlap");

  interp::Memory M;
  interp::storeBytes(M, 100, "characteristic!!");
  for (int I = 0; I < 8; ++I)
    M[400 + I] = 0xEE;

  struct TargetRun {
    const char *Machine; ///< Registry machine id (RegistryEntry::Machine).
    std::unique_ptr<Target> T;
    sim::SimResult (*Run)(const std::vector<std::string> &,
                          const interp::Memory &,
                          const std::map<std::string, int64_t> &, uint64_t);
  };
  TargetRun Runs[] = {
      {"i8086", makeI8086Target(), sim::run8086},
      {"vax", makeVaxTarget(), sim::runVax},
      {"ibm370", makeIbm370Target(), sim::run370},
  };

  bool AllOk = true;
  for (TargetRun &TR : Runs) {
    // Drop the hand-built bootstrap table and compile the registry's
    // bindings onto the bare target.
    TR.T->clearBindings();
    std::vector<registry::CompileNote> Notes;
    unsigned Loaded =
        registry::loadRegistryBindings(Reg, TR.Machine, *TR.T, &Notes);
    CodeGenResult Code = TR.T->generate(P);
    std::printf("======== %s ========\n", TR.T->name().c_str());
    std::printf("%u bindings compiled from the registry\n", Loaded);
    std::printf("instruction selection:\n");
    for (const SelectionNote &N : Code.Notes)
      std::printf("  op %zu %-10s -> %-18s %s\n", N.OpIndex,
                  N.Operator.c_str(), N.Chosen.c_str(), N.Reason.c_str());
    std::printf("\n");
    for (const std::string &Line : Code.Asm)
      std::printf("%s\n", Line.c_str());

    sim::SimResult S = TR.Run(Code.Asm, M, {}, 1000000);
    if (!S.Ok) {
      std::printf("\nsimulation FAILED: %s\n\n", S.Error.c_str());
      AllOk = false;
      continue;
    }
    std::string Moved = interp::loadBytes(S.Mem, 300, 16);
    std::string Cleared = interp::loadBytes(S.Mem, 400, 8);
    bool Good = Moved == "characteristic!!" && S.reg("i") == 4 &&
                S.reg("eq") == 1 && Cleared == std::string(8, '\0');
    std::printf("\nsimulated results: moved=\"%s\" index=%lld eq=%lld "
                "cleared=%s   [%s]\n",
                Moved.c_str(), static_cast<long long>(S.reg("i")),
                static_cast<long long>(S.reg("eq")),
                Cleared == std::string(8, '\0') ? "yes" : "NO",
                Good ? "correct" : "WRONG");
    std::printf("cost: %llu instruction dispatches, %llu byte operations, "
                "%u instructions of code\n\n",
                static_cast<unsigned long long>(S.Instructions),
                static_cast<unsigned long long>(S.MicroOps),
                sim::codeSize(Code.Asm, ';'));
    AllOk = AllOk && Good;
  }
  return AllOk ? 0 : 1;
}
