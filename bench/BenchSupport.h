//===- BenchSupport.h - Machine-readable benchmark summaries ----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// Shared main-loop helper for the bench_* binaries: runs the registered
// benchmarks through the normal console reporter and *additionally*
// prints one machine-readable line per run to stdout:
//
//   BENCH_JSON {"bench":"<binary>","name":"<benchmark>","iterations":N,
//               "ns_per_op":X,"counters":{"k":v,...}}
//
// scripts/run_benches.sh greps the `BENCH_JSON ` prefix out of the mixed
// console output and collects every suite's lines into a single JSONL
// file — no dependence on --benchmark_format=json, which would swallow
// the human-readable tables these binaries exist to print.
//
//===----------------------------------------------------------------------===//

#ifndef EXTRA_BENCH_BENCHSUPPORT_H
#define EXTRA_BENCH_BENCHSUPPORT_H

#include "obs/Trace.h"

#include <benchmark/benchmark.h>
#include <cstdio>
#include <string>

namespace extra_bench {

/// Console reporter that also emits one `BENCH_JSON {...}` line per
/// benchmark run (aggregates and errored runs are skipped).
class JsonLineReporter : public benchmark::ConsoleReporter {
public:
  // OO_Tabular, not OO_Defaults: the default forces ANSI color even
  // when stdout is a pipe, and the escape codes would prefix the
  // BENCH_JSON lines run_benches.sh greps for.
  explicit JsonLineReporter(std::string BenchName)
      : benchmark::ConsoleReporter(OO_Tabular), Bench(std::move(BenchName)) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    benchmark::ConsoleReporter::ReportRuns(Runs);
    for (const Run &R : Runs) {
      if (R.run_type != Run::RT_Iteration || R.error_occurred)
        continue;
      double NsPerOp =
          R.iterations > 0
              ? R.real_accumulated_time / static_cast<double>(R.iterations) *
                    1e9
              : 0.0;
      std::string Line = "BENCH_JSON {\"bench\":\"" +
                         extra::obs::jsonEscape(Bench) + "\",\"name\":\"" +
                         extra::obs::jsonEscape(R.benchmark_name()) + "\"";
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), ",\"iterations\":%lld",
                    static_cast<long long>(R.iterations));
      Line += Buf;
      std::snprintf(Buf, sizeof(Buf), ",\"ns_per_op\":%.3f", NsPerOp);
      Line += Buf;
      Line += ",\"counters\":{";
      bool First = true;
      for (const auto &[Name, Counter] : R.counters) {
        if (!First)
          Line += ',';
        First = false;
        std::snprintf(Buf, sizeof(Buf), "%.6g",
                      static_cast<double>(Counter));
        Line += "\"" + extra::obs::jsonEscape(Name) + "\":" + Buf;
      }
      Line += "}}";
      std::printf("%s\n", Line.c_str());
    }
  }

private:
  std::string Bench;
};

/// Drop-in replacement for the Initialize/RunSpecifiedBenchmarks pair at
/// the bottom of each bench main. \p argv[0] names the suite in the
/// BENCH_JSON lines.
inline int runBenchmarks(int argc, char **argv) {
  std::string Name = argc > 0 && argv[0] ? argv[0] : "bench";
  // Strip the directory part; CI paths would otherwise differ per runner.
  size_t Slash = Name.find_last_of('/');
  if (Slash != std::string::npos)
    Name = Name.substr(Slash + 1);
  benchmark::Initialize(&argc, argv);
  JsonLineReporter Reporter(Name);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  return 0;
}

} // namespace extra_bench

#endif // EXTRA_BENCH_BENCHSUPPORT_H
