//===- bench_fig2to5_descriptions.cpp - Regenerates Figs. 2-5 ---*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// Figures 2 and 3 are the paper's source listings (Rigel index, 8086
// scasb); Figures 4 and 5 are *derived* forms — the simplified and
// augmented scasb — which this binary regenerates by replaying the
// recorded derivation through the engine.
//
// Benchmarks: the simplification prefix and full derivation replay.
//
//===----------------------------------------------------------------------===//

#include "analysis/Derivations.h"
#include "descriptions/Descriptions.h"
#include "isdl/Printer.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>
#include <cstdio>

using namespace extra;
using namespace extra::analysis;

namespace {

/// Splits the scasb script at the augment phase (the zf prologue fix).
size_t augmentPhaseStart(const transform::Script &S) {
  for (size_t I = 0; I < S.size(); ++I)
    if (S[I].Rule == "fix-operand-value" &&
        S[I].Args.count("operand") && S[I].Args.at("operand") == "zf")
      return I;
  return S.size();
}

void printFigures() {
  const AnalysisCase *Case = findCase("i8086.scasb/rigel.index");
  std::printf("==== Figure 2: Rigel Index Operator (library source) "
              "====\n%s\n",
              descriptions::sourceFor("rigel.index"));
  std::printf("==== Figure 3: Intel 8086 Scasb Instruction (library "
              "source) ====\n%s\n",
              descriptions::sourceFor("i8086.scasb"));

  auto Scasb = descriptions::load("i8086.scasb");
  transform::Engine E(std::move(*Scasb));
  size_t Split = augmentPhaseStart(Case->InstructionScript);
  std::string Error;
  for (size_t I = 0; I < Split; ++I)
    if (!E.apply(Case->InstructionScript[I]).Applied) {
      std::fprintf(stderr, "derivation failed\n");
      return;
    }
  std::printf("==== Figure 4: Simplified Intel 8086 Scasb (regenerated, "
              "%zu steps) ====\n%s\n",
              E.stepsApplied(), isdl::printDescription(E.current()).c_str());
  for (size_t I = Split; I < Case->InstructionScript.size(); ++I)
    if (!E.apply(Case->InstructionScript[I]).Applied) {
      std::fprintf(stderr, "derivation failed\n");
      return;
    }
  std::printf("==== Figure 5: Augmented Intel 8086 Scasb (regenerated, "
              "%zu steps) ====\n%s\n",
              E.stepsApplied(), isdl::printDescription(E.current()).c_str());
  std::printf("constraints uncovered along the way:\n%s\n",
              E.constraints().str().c_str());
}

void BM_SimplifyScasb(benchmark::State &State) {
  const AnalysisCase *Case = findCase("i8086.scasb/rigel.index");
  size_t Split = augmentPhaseStart(Case->InstructionScript);
  auto Scasb = descriptions::load("i8086.scasb");
  for (auto _ : State) {
    transform::Engine E(Scasb->clone());
    for (size_t I = 0; I < Split; ++I)
      benchmark::DoNotOptimize(E.apply(Case->InstructionScript[I]).Applied);
  }
}
BENCHMARK(BM_SimplifyScasb);

void BM_FullScasbDerivation(benchmark::State &State) {
  const AnalysisCase *Case = findCase("i8086.scasb/rigel.index");
  auto Scasb = descriptions::load("i8086.scasb");
  for (auto _ : State) {
    transform::Engine E(Scasb->clone());
    benchmark::DoNotOptimize(E.applyScript(Case->InstructionScript));
  }
}
BENCHMARK(BM_FullScasbDerivation);

} // namespace

int main(int argc, char **argv) {
  printFigures();
  return extra_bench::runBenchmarks(argc, argv);
}
