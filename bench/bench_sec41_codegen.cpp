//===- bench_sec41_codegen.cpp - The §4.1 generated listing -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// §4.1 closes with the hand-translated 8086 code for the augmented scasb
// bound to the index operator. This binary prints the paper's listing,
// the listing our code generator emits from the same binding, and runs
// the generated code on the 8086 simulator against the reference
// interpretation of the Rigel index description.
//
// Benchmarks: code generation and simulated execution.
//
//===----------------------------------------------------------------------===//

#include "codegen/Target.h"
#include "descriptions/Descriptions.h"
#include "interp/Interp.h"
#include "sim/Sim8086.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>
#include <cstdio>

using namespace extra;
using namespace extra::codegen;

namespace {

const char *PaperListing = R"(  ; operands already loaded:
  ;   di...string address   cx...string length   al...character sought
  mov bx,di     ; save initial address
  mov si,0      ; clear si to use in resetting zf
  cmp si,1      ; reset zero flag zf
  cld           ; reset direction flag df
  rep           ; set rf and reset rfz
  scasb         ; search string
  jz l1         ; jump if not found
  sub di,bx     ; compute index of char if found
  jmp l2
l1: mov di,0    ; return zero if not found
l2:             ; final result stored in di
)";

CodeGenResult generateIndex() {
  auto T = makeI8086Target();
  Program P;
  P.Ops.push_back(strIndex("result", Value::symbol("string"),
                           Value::symbol("length"), Value::symbol("char")));
  return T->generate(P);
}

void printListings() {
  std::printf("==== §4.1: the paper's hand translation ====\n%s\n",
              PaperListing);
  CodeGenResult R = generateIndex();
  std::printf("==== our generated code (same binding, same augments) "
              "====\n");
  for (const std::string &L : R.Asm)
    std::printf("%s\n", L.c_str());
  std::printf("\n(deviations: the repeat prefix is spelled `repne` — rf=1 "
              "with rfz=0 — and the\n not-found branch is `jnz`; the "
              "paper's `jz` comment contradicts its own zf sense.)\n\n");

  // Cross-validate: generated 8086 code vs the reference interpretation
  // of the Rigel description, over every position and a missing char.
  auto Index = descriptions::load("rigel.index");
  interp::Memory M;
  interp::storeBytes(M, 100, "validate me");
  bool AllAgree = true;
  for (int Ch : {'v', 'a', 'e', ' ', 'm', 'q'}) {
    auto Ref = interp::run(*Index, {100, 11, Ch}, M);
    sim::SimResult S = sim::run8086(
        R.Asm, M, {{"string", 100}, {"length", 11}, {"char", Ch}});
    bool Agree = Ref.Ok && S.Ok && Ref.Outputs.size() == 1 &&
                 Ref.Outputs[0] == S.reg("result");
    std::printf("index(\"validate me\", '%c'): description=%lld  "
                "generated-code=%lld  %s\n",
                Ch, Ref.Ok ? static_cast<long long>(Ref.Outputs[0]) : -1,
                static_cast<long long>(S.reg("result")),
                Agree ? "agree" : "DISAGREE");
    AllAgree = AllAgree && Agree;
  }
  std::printf("%s\n\n", AllAgree ? "all cases agree."
                                 : "DIVERGENCE DETECTED.");
}

void BM_GenerateIndex(benchmark::State &State) {
  auto T = makeI8086Target();
  Program P;
  P.Ops.push_back(strIndex("result", Value::symbol("string"),
                           Value::symbol("length"), Value::symbol("char")));
  for (auto _ : State)
    benchmark::DoNotOptimize(T->generate(P));
}
BENCHMARK(BM_GenerateIndex);

void BM_SimulateGeneratedIndex(benchmark::State &State) {
  CodeGenResult R = generateIndex();
  interp::Memory M;
  interp::storeBytes(M, 100, "validate me");
  for (auto _ : State)
    benchmark::DoNotOptimize(sim::run8086(
        R.Asm, M, {{"string", 100}, {"length", 11}, {"char", 'q'}}));
}
BENCHMARK(BM_SimulateGeneratedIndex);

void BM_InterpretIndexDescription(benchmark::State &State) {
  auto Index = descriptions::load("rigel.index");
  interp::Memory M;
  interp::storeBytes(M, 100, "validate me");
  for (auto _ : State)
    benchmark::DoNotOptimize(interp::run(*Index, {100, 11, 'q'}, M));
}
BENCHMARK(BM_InterpretIndexDescription);

} // namespace

int main(int argc, char **argv) {
  printListings();
  return extra_bench::runBenchmarks(argc, argv);
}
