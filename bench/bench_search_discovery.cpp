//===- bench_search_discovery.cpp - Autonomous discovery report -*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// In the 1982 system a user drove every derivation from a structure
// editor; src/search replaces the user with a beam search over the same
// transformation library, with rule arguments synthesized from the
// structured divergence reports (src/synth) and candidate order guided
// by rule-bigram priors mined from the recorded corpus. This exhibit
// reports, for every recorded pairing, whether the searcher rediscovers
// a derivation from scratch — no recorded script is consulted — plus the
// search effort: nodes expanded, transposition-table hit rate, and wall
// time. Discovered script lengths are printed next to the recorded ones;
// the searcher's macro moves often find shorter equivalent routes.
//
// Benchmarks: single-case discovery time, and the parallel batch at one,
// two, and four worker threads.
//
//===----------------------------------------------------------------------===//

#include "search/BatchDriver.h"

#include "analysis/Derivations.h"
#include "descriptions/Descriptions.h"
#include "obs/Metrics.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>
#include <cstdio>
#include <cstdlib>

using namespace extra;
using namespace extra::search;

namespace {

/// Tight limits for the report: the discoverable cases finish well
/// inside these, and the out-of-reach cases fail fast instead of
/// spending the full default budget proving it.
SearchLimits reportLimits() {
  SearchLimits L;
  L.TimeBudgetMs = 15000;
  L.MaxNodes = 20000;
  return L;
}

void printDiscoveryReport() {
  std::printf("==== Autonomous derivation discovery (src/search) ====\n\n");
  std::printf("  %-28s %-10s %-10s %-8s %-8s %-9s %s\n", "case",
              "discovered", "recorded", "nodes", "tt-hits", "wall-ms",
              "status");
  std::printf("  %-28s %-10s %-10s %-8s %-8s %-9s %s\n", "----",
              "----------", "--------", "-----", "-------", "-------",
              "------");

  BatchOptions Opts;
  Opts.Threads = 4;
  Opts.Limits = reportLimits();
  // Per-pairing wall times aggregate into the batch.case_wall_ms
  // histogram (src/obs) alongside the per-result timings.
  obs::Metrics Met;
  Opts.Limits.Metrics = &Met;
  BatchStats Stats;
  std::vector<BatchResult> Results =
      runBatch(libraryCases(), Opts, &Stats);

  uint64_t TotalExpanded = 0;
  double TotalSearchMs = 0;
  for (const BatchResult &R : Results) {
    TotalExpanded += R.Discovery.Outcome.Stats.NodesExpanded;
    TotalSearchMs += R.Discovery.Outcome.Stats.WallMs;
  }

  for (const BatchResult &R : Results) {
    const SearchOutcome &O = R.Discovery.Outcome;
    const analysis::AnalysisCase *Recorded =
        analysis::findCase(R.Case.Id);
    size_t RecordedLen = 0;
    if (Recorded)
      RecordedLen = Recorded->OperatorScript.size() +
                    Recorded->InstructionScript.size();

    char DiscLen[32] = "-";
    if (O.Found)
      std::snprintf(DiscLen, sizeof(DiscLen), "%zu+%zu",
                    O.OperatorScript.size(), O.InstructionScript.size());
    char HitRate[32];
    std::snprintf(HitRate, sizeof(HitRate), "%.1f%%",
                  O.Stats.hashHitRate() * 100.0);
    std::printf("  %-28s %-10s %-10zu %-8llu %-8s %-9.1f %s\n",
                R.Case.Id.c_str(), DiscLen, RecordedLen,
                static_cast<unsigned long long>(O.Stats.NodesExpanded),
                HitRate, R.WallMs,
                O.Found ? (R.Discovery.Verified ? "VERIFIED" : "UNVERIFIED")
                        : "not found");
  }

  std::printf("\n  batch: %u/%u discovered, %u verified end-to-end, "
              "%u thread(s), %.1f ms wall\n",
              Stats.Discovered, Stats.Cases, Stats.Verified,
              Stats.ThreadsUsed, Stats.WallMs);
  obs::Histogram::Snapshot CaseWall =
      Met.histogram("batch.case_wall_ms").snapshot();
  std::printf("  per-case wall: %.1f ms summed over %llu case(s), "
              "median ~%llu ms, slowest %s at %.1f ms\n",
              Stats.CaseWallMs,
              static_cast<unsigned long long>(CaseWall.Count),
              static_cast<unsigned long long>(CaseWall.P50),
              Stats.SlowestCase.c_str(), Stats.SlowestCaseMs);
  std::printf("  every discovery replays through the full analysis "
              "pipeline: per-step differential\n  checks, common-form "
              "match, binding constraints, end-to-end equivalence.\n");
  std::printf("  out-of-reach rows need wider beams or deeper "
              "interleavings than this report's\n  budget "
              "(vax.cmpc3/pascal.sequal lands at --beam 128); "
              "i8086.scasb and ibm370.mvc\n  pairings remain open — see "
              "ROADMAP.md.\n\n");

  // Suite-level machine-readable line (same shape as the per-benchmark
  // BENCH_JSON lines from BenchSupport.h, so run_benches.sh and the
  // perf-smoke gate parse it the same way). expansions_per_sec divides
  // total expanded states by summed *search* wall (not batch wall, which
  // depends on the thread count).
  double ExpPerSec =
      TotalSearchMs > 0 ? TotalExpanded * 1000.0 / TotalSearchMs : 0.0;
  std::printf("BENCH_JSON {\"bench\":\"bench_search_discovery\","
              "\"name\":\"discoveryReport/suite\",\"iterations\":1,"
              "\"ns_per_op\":%.3f,\"counters\":{"
              "\"search.expansions_per_sec\":%.6g,"
              "\"search.nodes_expanded\":%llu,"
              "\"search.wall_ms\":%.6g,"
              "\"cases.total\":%u,\"cases.discovered\":%u,"
              "\"cases.verified\":%u}}\n",
              Stats.WallMs * 1e6, ExpPerSec,
              static_cast<unsigned long long>(TotalExpanded), TotalSearchMs,
              Stats.Cases, Stats.Discovered, Stats.Verified);
}

void benchDiscovery(benchmark::State &State, const char *OperatorId,
                    const char *InstructionId) {
  SearchLimits Limits;
  uint64_t Expanded = 0;
  double SearchMs = 0;
  for (auto _ : State) {
    DiscoveryResult R =
        discoverAndVerify(OperatorId, InstructionId, Limits);
    benchmark::DoNotOptimize(R.Verified);
    Expanded += R.Outcome.Stats.NodesExpanded;
    SearchMs += R.Outcome.Stats.WallMs;
  }
  State.counters["search.expansions_per_sec"] =
      SearchMs > 0 ? Expanded * 1000.0 / SearchMs : 0.0;
}
BENCHMARK_CAPTURE(benchDiscovery, movc3_pc2copy, "pc2.copy", "vax.movc3");
BENCHMARK_CAPTURE(benchDiscovery, stosb_pc2clear, "pc2.clear",
                  "i8086.stosb");
BENCHMARK_CAPTURE(benchDiscovery, movc5_pc2clear, "pc2.clear",
                  "vax.movc5");
BENCHMARK_CAPTURE(benchDiscovery, locc_clusearch, "clu.search",
                  "vax.locc");
BENCHMARK_CAPTURE(benchDiscovery, movsb_pl1move, "pl1.move",
                  "i8086.movsb");

void benchBatch(benchmark::State &State) {
  // The three discoverable cases through the worker pool; the argument
  // is the thread count, so per-thread scaling reads off the report.
  std::vector<BatchCase> Cases;
  for (const char *Id :
       {"vax.movc3/pc2.copy", "i8086.stosb/pc2.clear", "vax.movc5/pc2.clear"})
    for (const BatchCase &C : libraryCases())
      if (C.Id == Id)
        Cases.push_back(C);

  BatchOptions Opts;
  Opts.Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    std::vector<BatchResult> R = runBatch(Cases, Opts);
    benchmark::DoNotOptimize(R.size());
  }
}
BENCHMARK(benchBatch)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void benchExpansionThroughput(benchmark::State &State, bool Legacy) {
  // In-binary A/B on the hardest report pairing: the same node-capped
  // search on the copy-on-write hot path and with LegacyHotPath
  // reproducing the pre-COW decision-path costs (per-attempt and
  // per-child deep copies, re-walked fingerprints, map-based distances,
  // inline pre-table verification, no caches). The differential suite
  // proves both expand the same nodes, so the ratio isolates those costs
  // machine-independently — but it cannot opt out of the arena-allocated
  // node representation itself, so it *understates* the end-to-end
  // speedup. scripts/perf_smoke.sh reports it informationally and gates
  // on the suite line above against the committed pre-COW baseline.
  auto Op = descriptions::load("pascal.sequal");
  auto Inst = descriptions::load("vax.cmpc3");
  SearchLimits Limits;
  // Deep enough to reach the widening rounds, where the representation
  // differences dominate: re-expanded states hit the candidate/synth
  // caches and the verify memo on the COW path but re-pay enumeration,
  // trials, clones and fingerprint walks on the legacy path. A shallow
  // cap would measure mostly the shared interpreter work and report a
  // diluted ratio.
  Limits.MaxNodes = 1200;
  Limits.TimeBudgetMs = 300000; // node-capped, never the clock
  Limits.LegacyHotPath = Legacy;
  uint64_t Expanded = 0;
  double SearchMs = 0;
  for (auto _ : State) {
    SearchOutcome O = searchDerivation(*Op, *Inst, Limits);
    benchmark::DoNotOptimize(O.Found);
    Expanded += O.Stats.NodesExpanded;
    SearchMs += O.Stats.WallMs;
  }
  State.counters["search.expansions_per_sec"] =
      SearchMs > 0 ? Expanded * 1000.0 / SearchMs : 0.0;
}
BENCHMARK_CAPTURE(benchExpansionThroughput, cow, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(benchExpansionThroughput, legacy, true)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  // EXTRA_BENCH_SKIP_REPORT=1 skips the ~90 s discovery report so the CI
  // perf-smoke gate (scripts/perf_smoke.sh) runs only its two benchmarks.
  const char *Skip = std::getenv("EXTRA_BENCH_SKIP_REPORT");
  if (!Skip || Skip[0] == '0')
    printDiscoveryReport();
  return extra_bench::runBenchmarks(argc, argv);
}
