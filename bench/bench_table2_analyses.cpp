//===- bench_table2_analyses.cpp - Regenerates Table 2 ----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// Table 2: "Exotic Instruction Analysis Summary" — the eleven successful
// analyses with their transformation step counts. Every row is re-derived
// live: the scripts replay, each step re-verifies its conditions and is
// differentially tested, the common form is checked, and the binding's
// register-size constraints are re-derived. Our step counts differ from
// the 1982 numbers (this engine's rules are coarser) but rank-correlate;
// both are printed.
//
// Benchmarks: full analysis time per representative row.
//
//===----------------------------------------------------------------------===//

#include "analysis/Derivations.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>
#include <cstdio>

using namespace extra;
using namespace extra::analysis;

static void printTable2() {
  std::printf("==== Table 2: Exotic Instruction Analysis Summary ====\n\n");
  std::printf("  %-12s %-12s %-8s %-16s %-6s %-6s %s\n", "Machine",
              "Instruction", "Language", "Operation", "Steps", "Paper",
              "Status");
  std::printf("  %-12s %-12s %-8s %-16s %-6s %-6s %s\n", "-------",
              "-----------", "--------", "---------", "-----", "-----",
              "------");
  unsigned Failures = 0;
  for (const AnalysisCase &Case : table2Cases()) {
    AnalysisResult R = runAnalysis(Case, Mode::Base);
    std::printf("  %-12s %-12s %-8s %-16s %-6u %-6u %s\n",
                Case.Machine.c_str(), Case.Instruction.c_str(),
                Case.Language.c_str(), Case.Operation.c_str(),
                R.StepsApplied, Case.PaperSteps,
                R.Succeeded ? "verified" : R.FailureReason.c_str());
    if (!R.Succeeded)
      ++Failures;
  }
  std::printf("\n  every row: scripted derivation replayed, each step "
              "condition-checked and\n  differentially tested, common form "
              "matched, end-to-end operator equivalence\n  verified on "
              "random inputs.%s\n\n",
              Failures ? "  SOME ROWS FAILED." : "");

  std::printf("beyond Table 2 (same machinery, new pairings):\n");
  for (const AnalysisCase &Case : extendedCases()) {
    AnalysisResult R = runAnalysis(Case, Mode::Base);
    std::printf("  %-12s %-12s %-8s %-16s %-6u %-6s %s\n",
                Case.Machine.c_str(), Case.Instruction.c_str(),
                Case.Language.c_str(), Case.Operation.c_str(),
                R.StepsApplied, "-",
                R.Succeeded ? "verified" : R.FailureReason.c_str());
  }
  std::printf("\n");

  // The §4.1 constraint exhibit.
  AnalysisResult Scasb = runAnalysis(*findCase("i8086.scasb/rigel.index"),
                                     Mode::Base);
  std::printf("constraints from the scasb/index row (§4.1):\n%s\n",
              Scasb.Constraints.str().c_str());
}

static void benchCase(benchmark::State &State, const char *Id) {
  const AnalysisCase *Case = findCase(Id);
  DiffOptions Opts;
  Opts.Trials = 8;
  for (auto _ : State) {
    AnalysisResult R = runAnalysis(*Case, Mode::Base, Opts);
    benchmark::DoNotOptimize(R.Succeeded);
  }
}
BENCHMARK_CAPTURE(benchCase, scasb_rigel, "i8086.scasb/rigel.index");
BENCHMARK_CAPTURE(benchCase, mvc_sassign, "ibm370.mvc/pascal.sassign");
BENCHMARK_CAPTURE(benchCase, movc3_pc2, "vax.movc3/pc2.copy");

int main(int argc, char **argv) {
  printTable2();
  return extra_bench::runBenchmarks(argc, argv);
}
