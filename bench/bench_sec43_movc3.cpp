//===- bench_sec43_movc3.cpp - The §4.3 failure case ------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// §4.3: VAX movc3 vs Pascal string assignment. The analysis needs the
// no-overlap condition
//
//     (Src.Base + Src.Length <= Dst.Base) or
//     (Dst.Base + Dst.Length <= Src.Base)
//
// — a constraint over several operands, which the 1982 EXTRA could not
// represent. Base mode reproduces the failure; extension mode (the
// paper's first direction for future research) records the condition as
// a relational constraint backed by the Pascal no-overlap axiom and
// completes the analysis, differential checks included.
//
// Benchmarks: base (fast-fail) vs extension (full derivation) analysis.
//
//===----------------------------------------------------------------------===//

#include "analysis/Derivations.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>
#include <cstdio>

using namespace extra;
using namespace extra::analysis;

static void printCase() {
  const AnalysisCase &Case = movc3SassignCase();

  std::printf("==== §4.3: movc3 / Pascal sassign ====\n\n");
  AnalysisResult Base = runAnalysis(Case, Mode::Base);
  std::printf("--- base mode (the 1982 system) ---\n");
  std::printf("succeeded: %s\nreason: %s\n\n",
              Base.Succeeded ? "yes (UNEXPECTED)" : "no",
              Base.FailureReason.c_str());

  AnalysisResult Ext = runAnalysis(Case, Mode::Extension);
  std::printf("--- extension mode (the paper's future work, "
              "implemented) ---\n");
  if (!Ext.Succeeded) {
    std::printf("FAILED: %s\n", Ext.FailureReason.c_str());
    return;
  }
  std::printf("succeeded: yes, %u verified steps (operator %u + "
              "instruction %u)\n\n",
              Ext.StepsApplied, Ext.OperatorSteps, Ext.InstructionSteps);
  std::printf("binding:\n%s\n", Ext.Binding.str().c_str());
  std::printf("constraints (note the relational one):\n%s\n",
              Ext.Constraints.str().c_str());
  std::printf("The differential checks drew only operand sets satisfying "
              "the no-overlap\npredicate — the domain on which Pascal "
              "guarantees the equivalence.\n\n");
}

static void BM_BaseModeRejection(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runAnalysis(movc3SassignCase(), Mode::Base).Succeeded);
}
BENCHMARK(BM_BaseModeRejection);

static void BM_ExtensionModeAnalysis(benchmark::State &State) {
  DiffOptions Opts;
  Opts.Trials = 8;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runAnalysis(movc3SassignCase(), Mode::Extension, Opts).Succeeded);
}
BENCHMARK(BM_ExtensionModeAnalysis);

int main(int argc, char **argv) {
  printCase();
  return extra_bench::runBenchmarks(argc, argv);
}
