//===- bench_registry_e2e.cpp - Registry bindings, end to end ---*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// The deployable-registry path, measured end to end: a binding registry
// is built from the recorded derivation corpus, its entries are compiled
// into live instruction bindings on each bare target (hand bootstrap
// tables cleared), and the shared demo program is executed both ways —
// registry bindings vs. decomposition-only — on the matching simulator.
//
// The table shows, per machine, the §1 cost deltas the registry's exotic
// emissions buy (instruction dispatches, byte operations, code size) and
// asserts the two translations are state-identical. The benchmark
// entries time the three pipeline stages: building the registry,
// compiling its bindings onto a target, and the full differential run.
//
//===----------------------------------------------------------------------===//

#include "registry/Harness.h"
#include "registry/RegistryBuilder.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>
#include <cstdio>

using namespace extra;
using namespace extra::registry;

namespace {

const Registry &recordedRegistry() {
  static Registry R = [] {
    RegistryBuilder B;
    auto Added = B.addRecordedCases();
    if (!Added)
      std::fprintf(stderr, "registry build failed: %s\n",
                   Added.fault().Message.c_str());
    return B.registry();
  }();
  return R;
}

void printE2ETable() {
  const Registry &Reg = recordedRegistry();
  std::printf("==== registry bindings vs. decomposition: demo program, "
              "executed ====\n\n");
  std::printf("  registry: %zu entries from the recorded corpus\n\n",
              Reg.size());
  std::printf("  %-8s %-5s | %-20s %-20s | %-9s | %-6s | %s\n", "target",
              "bnds", "registry disp/byte/sz", "baseline disp/byte/sz",
              "ratio", "exotic", "state");
  std::printf("  ---------------------------------------------------------"
              "--------------------------\n");
  for (MachineKind MK : allMachines()) {
    DifferentialReport R =
        runDifferential(MK, Reg, demoProgram(), demoMemory());
    if (!R.WithRegistry.Ok || !R.Baseline.Ok) {
      std::printf("  %-8s simulation failed: %s\n", machineName(MK),
                  (R.WithRegistry.Ok ? R.Baseline.Error
                                     : R.WithRegistry.Error)
                      .c_str());
      continue;
    }
    std::printf("  %-8s %-5u | %6llu /%5llu /%4u | %6llu /%5llu /%4u | "
                "%8.4f | %2u / %u | %s\n",
                machineName(MK), R.BindingsLoaded,
                static_cast<unsigned long long>(R.WithRegistry.Instructions),
                static_cast<unsigned long long>(R.WithRegistry.MicroOps),
                R.WithRegistry.CodeSize,
                static_cast<unsigned long long>(R.Baseline.Instructions),
                static_cast<unsigned long long>(R.Baseline.MicroOps),
                R.Baseline.CodeSize,
                static_cast<double>(R.WithRegistry.Instructions) /
                    static_cast<double>(R.Baseline.Instructions),
                R.WithRegistry.Exotic, R.WithRegistry.Decomposed,
                R.StatesMatch ? "identical" : "DIVERGED");
  }
  std::printf("\n  shape check: every machine ends state-identical with "
              "strictly fewer\n  dispatches; the 370's single mvc binding "
              "covers one of the four ops, so its\n  ratio is the most "
              "modest.\n\n");
}

void BM_RegistryBuildRecorded(benchmark::State &State) {
  uint64_t Entries = 0;
  for (auto _ : State) {
    RegistryBuilder B;
    auto Added = B.addRecordedCases();
    Entries = Added ? *Added : 0;
    benchmark::DoNotOptimize(B.registry());
  }
  State.counters["entries"] = static_cast<double>(Entries);
}
BENCHMARK(BM_RegistryBuildRecorded)->Unit(benchmark::kMillisecond);

void BM_BindingCompile(benchmark::State &State,
                       MachineKind MK) {
  const Registry &Reg = recordedRegistry();
  uint64_t Loaded = 0;
  for (auto _ : State) {
    std::unique_ptr<codegen::Target> T =
        MK == MachineKind::I8086  ? codegen::makeI8086Target()
        : MK == MachineKind::Vax  ? codegen::makeVaxTarget()
                                  : codegen::makeIbm370Target();
    T->clearBindings();
    Loaded = loadRegistryBindings(Reg, machineName(MK), *T);
    benchmark::DoNotOptimize(T);
  }
  State.counters["bindings"] = static_cast<double>(Loaded);
}
BENCHMARK_CAPTURE(BM_BindingCompile, i8086, MachineKind::I8086);
BENCHMARK_CAPTURE(BM_BindingCompile, vax, MachineKind::Vax);
BENCHMARK_CAPTURE(BM_BindingCompile, ibm370, MachineKind::Ibm370);

void BM_DifferentialE2E(benchmark::State &State, MachineKind MK) {
  const Registry &Reg = recordedRegistry();
  codegen::Program P = demoProgram();
  interp::Memory M = demoMemory();
  DifferentialReport Last;
  for (auto _ : State) {
    Last = runDifferential(MK, Reg, P, M);
    benchmark::DoNotOptimize(Last);
  }
  State.counters["registry_dispatches"] =
      static_cast<double>(Last.WithRegistry.Instructions);
  State.counters["baseline_dispatches"] =
      static_cast<double>(Last.Baseline.Instructions);
  State.counters["registry_code_size"] =
      static_cast<double>(Last.WithRegistry.CodeSize);
  State.counters["baseline_code_size"] =
      static_cast<double>(Last.Baseline.CodeSize);
  State.counters["exotic_ops"] = static_cast<double>(Last.WithRegistry.Exotic);
  State.counters["state_identical"] = Last.StatesMatch ? 1.0 : 0.0;
  State.counters["passes"] = Last.passes() ? 1.0 : 0.0;
}
BENCHMARK_CAPTURE(BM_DifferentialE2E, i8086, MachineKind::I8086)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DifferentialE2E, vax, MachineKind::Vax)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DifferentialE2E, ibm370, MachineKind::Ibm370)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printE2ETable();
  return extra_bench::runBenchmarks(argc, argv);
}
