//===- bench_exotic_speedup.cpp - The §1 motivation, measured ---*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// §1: "Exotic instructions are useful because they can often perform
// operations in less time and space than an equivalent sequence of
// primitive actions." The paper asserts this without a table; this
// harness measures it on the simulators: for each operator, target, and
// string length, the exotic implementation vs. the decomposition — in
// instruction dispatches (the cost exotic instructions amortize), byte
// micro-operations (equal by construction, shown as a sanity column),
// and code size.
//
// Expected shape: dispatch advantage grows linearly with string length
// (a rep-prefixed scasb is one dispatch; the byte loop pays ~5 per
// character), and exotic code is a constant factor smaller.
//
//===----------------------------------------------------------------------===//

#include "codegen/Target.h"
#include "sim/Sim370.h"
#include "sim/Sim8086.h"
#include "sim/SimVax.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>
#include <cstdio>
#include <functional>

using namespace extra;
using namespace extra::codegen;

namespace {

using Runner = std::function<sim::SimResult(const std::vector<std::string> &,
                                            const interp::Memory &)>;

struct Measurement {
  uint64_t Dispatches = 0;
  uint64_t MicroOps = 0;
  unsigned CodeSize = 0;
  bool Ok = false;
};

Measurement measure(const std::vector<std::string> &Asm, const Runner &Run,
                    const interp::Memory &M) {
  Measurement Out;
  sim::SimResult S = Run(Asm, M);
  Out.Ok = S.Ok;
  Out.Dispatches = S.Instructions;
  Out.MicroOps = S.MicroOps;
  Out.CodeSize = sim::codeSize(Asm, ';');
  return Out;
}

HLOp opFor(OpKind K, int64_t Len) {
  switch (K) {
  case OpKind::StrIndex:
    // Worst case: the character is absent, the whole string is scanned.
    return strIndex("r", Value::literal(100), Value::literal(Len),
                    Value::literal('#'));
  case OpKind::StrMove:
    return strMove(Value::literal(4000), Value::literal(100),
                   Value::literal(Len));
  case OpKind::StrEqual:
    return strEqual("r", Value::literal(100), Value::literal(4000),
                    Value::literal(Len));
  case OpKind::BlockClear:
    return blockClear(Value::literal(4000), Value::literal(Len));
  case OpKind::BlockCopy:
    return blockCopy(Value::literal(4000), Value::literal(100),
                     Value::literal(Len));
  }
  return blockClear(Value::literal(0), Value::literal(0));
}

void printSpeedupTable() {
  std::printf("==== exotic vs. decomposed: simulated cost (character "
              "absent / full scan) ====\n\n");
  std::printf("  %-8s %-10s %-5s | %-18s %-18s | %-13s | %s\n", "target",
              "operator", "len", "exotic disp/size",
              "decomposed disp/size", "dispatch gain", "byte ops e/d");
  std::printf("  "
              "-----------------------------------------------------------"
              "--------------------------------------\n");

  struct TargetInfo {
    std::unique_ptr<Target> T;
    Runner Run;
  };
  TargetInfo Targets[3] = {
      {makeI8086Target(),
       [](const std::vector<std::string> &A, const interp::Memory &M) {
         return sim::run8086(A, M, {}, 10000000);
       }},
      {makeVaxTarget(),
       [](const std::vector<std::string> &A, const interp::Memory &M) {
         return sim::runVax(A, M, {}, 10000000);
       }},
      {makeIbm370Target(),
       [](const std::vector<std::string> &A, const interp::Memory &M) {
         return sim::run370(A, M, {}, 10000000);
       }},
  };

  const OpKind Ops[] = {OpKind::StrIndex, OpKind::StrMove,
                        OpKind::StrEqual, OpKind::BlockClear};
  const int64_t Lens[] = {16, 64, 256};

  for (TargetInfo &TI : Targets) {
    for (OpKind K : Ops) {
      // Skip operators with no exotic binding on this target (they would
      // compare the decomposition against itself).
      bool HasBinding = false;
      for (const InstructionBinding &B : TI.T->bindings())
        if (B.Op == K)
          HasBinding = true;
      if (!HasBinding)
        continue;
      for (int64_t Len : Lens) {
        interp::Memory M;
        for (int64_t I = 0; I < Len; ++I) {
          // Identical strings at both operand addresses: comparisons take
          // their worst case (full scan), like the absent-character scan.
          M[100 + I] = static_cast<uint8_t>('a' + (I % 26));
          M[4000 + I] = static_cast<uint8_t>('a' + (I % 26));
        }

        Program P;
        P.Ops.push_back(opFor(K, Len));
        P.Facts.Axioms.insert("pascal.no-overlap");
        CodeGenResult Exotic = TI.T->generate(P);
        if (Exotic.ExoticCount == 0)
          continue; // e.g. 370 mvc at len > 256 chunks; still exotic.

        CodeGenContext Ctx;
        TI.T->decompose(P.Ops[0], Ctx);
        std::vector<std::string> Decomposed = Ctx.takeLines();

        Measurement E = measure(Exotic.Asm, TI.Run, M);
        Measurement D = measure(Decomposed, TI.Run, M);
        if (!E.Ok || !D.Ok) {
          std::printf("  %-8s %-10s %-5lld | simulation failed\n",
                      TI.T->name().c_str(), opKindName(K),
                      static_cast<long long>(Len));
          continue;
        }
        std::printf("  %-8s %-10s %-5lld | %6llu / %-9u | %6llu / %-9u | "
                    "%10.1fx | %llu / %llu\n",
                    TI.T->name().c_str(), opKindName(K),
                    static_cast<long long>(Len),
                    static_cast<unsigned long long>(E.Dispatches),
                    E.CodeSize,
                    static_cast<unsigned long long>(D.Dispatches),
                    D.CodeSize,
                    static_cast<double>(D.Dispatches) /
                        static_cast<double>(E.Dispatches),
                    static_cast<unsigned long long>(E.MicroOps),
                    static_cast<unsigned long long>(D.MicroOps));
      }
    }
  }
  std::printf("\n  shape check: the dispatch advantage grows with string "
              "length (the exotic\n  instruction is one dispatch for the "
              "whole string); code size advantage is a\n  constant "
              "factor. Byte micro-operations are comparable either "
              "way.\n\n");
}

void BM_Sim8086ExoticIndex(benchmark::State &State) {
  auto T = makeI8086Target();
  Program P;
  P.Ops.push_back(opFor(OpKind::StrIndex, State.range(0)));
  CodeGenResult R = T->generate(P);
  interp::Memory M;
  for (int64_t I = 0; I < State.range(0); ++I)
    M[100 + I] = 'a';
  for (auto _ : State)
    benchmark::DoNotOptimize(sim::run8086(R.Asm, M, {}, 10000000));
}
BENCHMARK(BM_Sim8086ExoticIndex)->Arg(16)->Arg(256);

void BM_Sim8086DecomposedIndex(benchmark::State &State) {
  auto T = makeI8086Target();
  CodeGenContext Ctx;
  HLOp O = opFor(OpKind::StrIndex, State.range(0));
  T->decompose(O, Ctx);
  std::vector<std::string> Asm = Ctx.takeLines();
  interp::Memory M;
  for (int64_t I = 0; I < State.range(0); ++I)
    M[100 + I] = 'a';
  for (auto _ : State)
    benchmark::DoNotOptimize(sim::run8086(Asm, M, {}, 10000000));
}
BENCHMARK(BM_Sim8086DecomposedIndex)->Arg(16)->Arg(256);

} // namespace

int main(int argc, char **argv) {
  printSpeedupTable();
  return extra_bench::runBenchmarks(argc, argv);
}
