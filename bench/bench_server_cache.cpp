//===- bench_server_cache.cpp - Discovery-service cache exhibit -*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// The paper's workflow is analyze-once, reuse-forever: an exotic
// instruction's binding is discovered interactively one time, then
// hard-wired into the code generator. The discovery service (src/server)
// makes that literal with a cross-run memo store. This exhibit measures
// the payoff: the full 14-pairing recorded suite submitted cold (every
// pairing searched on the worker pool) versus warm (every verdict
// answered from the store in O(lookup)), plus steady-state per-request
// latencies for a warm cache hit and a cold self-pairing search.
//
//===----------------------------------------------------------------------===//

#include "search/BatchDriver.h"
#include "server/Service.h"

#include "obs/TraceFile.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>
#include <chrono>
#include <cstdio>
#include <string>
#include <unistd.h>

using namespace extra;
using namespace extra::server;

namespace {

std::string tempStorePath(const std::string &Tag) {
  const char *Dir = ::getenv("TMPDIR");
  std::string Base = Dir && *Dir ? Dir : "/tmp";
  if (Base.back() != '/')
    Base += '/';
  std::string Path = Base + "extra_bench_" + Tag + "_" +
                     std::to_string(static_cast<long>(::getpid())) +
                     ".jsonl";
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
  return Path;
}

void removeStore(const std::string &Path) {
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
}

/// Tight limits, as in bench_search_discovery: discoverable pairings
/// finish well inside them and the out-of-reach ones fail fast.
ServiceOptions benchOptions(const std::string &StorePath) {
  ServiceOptions O;
  O.StorePath = StorePath;
  O.Workers = 4;
  O.Limits.TimeBudgetMs = 15000;
  O.Limits.MaxNodes = 20000;
  return O;
}

std::string submitLine(const search::BatchCase &C, bool Wait) {
  std::string Line = "{\"cmd\":\"submit\",\"operator\":\"" + C.OperatorId +
                     "\",\"instruction\":\"" + C.InstructionId + "\"";
  if (C.M == analysis::Mode::Extension)
    Line += ",\"mode\":\"extension\"";
  if (Wait)
    Line += ",\"wait\":true";
  Line += "}";
  return Line;
}

/// Submits the whole suite without waiting (the worker pool runs the
/// misses in parallel), then drains. Returns wall ms; counts the
/// submits answered straight from the cache.
double suiteMs(Service &S, unsigned *Hits) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();
  unsigned Cached = 0;
  for (const search::BatchCase &C : search::libraryCases()) {
    auto R = obs::parseJsonObjectLine(S.handle(submitLine(C, false)));
    if (R && (*R)["cached"] == "true")
      ++Cached;
  }
  S.handle("{\"cmd\":\"drain\"}");
  double Ms = std::chrono::duration<double, std::milli>(Clock::now() - Start)
                  .count();
  if (Hits)
    *Hits = Cached;
  return Ms;
}

void printCacheReport() {
  std::printf("==== Discovery service: cold suite vs warm cache "
              "(src/server) ====\n\n");
  std::string Store = tempStorePath("suite");
  auto S = Service::create(benchOptions(Store));
  if (!S) {
    std::printf("  cannot start service: %s\n", S.fault().Message.c_str());
    return;
  }
  size_t Pairings = search::libraryCases().size();
  unsigned ColdHits = 0, WarmHits = 0;
  double ColdMs = suiteMs(**S, &ColdHits);
  double WarmMs = suiteMs(**S, &WarmHits);
  std::printf("  %zu pairings cold:  %10.1f ms  (%u cache hits, "
              "%zu searches)\n",
              Pairings, ColdMs, ColdHits, Pairings - ColdHits);
  std::printf("  %zu pairings warm:  %10.1f ms  (%u cache hits)\n",
              Pairings, WarmMs, WarmHits);
  if (WarmMs > 0)
    std::printf("  warm speedup: %.0fx\n", ColdMs / WarmMs);
  obs::Histogram::Snapshot Wall =
      (*S)->metrics().histogram("server.job_wall_ms").snapshot();
  std::printf("  worker jobs: %llu, per-job wall p50 ~%llu ms, "
              "max %llu ms\n\n",
              static_cast<unsigned long long>(Wall.Count),
              static_cast<unsigned long long>(Wall.P50),
              static_cast<unsigned long long>(Wall.Max));
  (*S)->stop();
  removeStore(Store);
}

/// Steady-state warm hit: one submit answered from the memo store.
void BM_WarmCacheHit(benchmark::State &State) {
  std::string Store = tempStorePath("warm");
  auto S = Service::create(benchOptions(Store));
  if (!S) {
    State.SkipWithError("cannot start service");
    return;
  }
  const std::string Line =
      "{\"cmd\":\"submit\",\"operator\":\"pc2.copy\","
      "\"instruction\":\"pc2.copy\",\"wait\":true}";
  (void)(*S)->handle(Line); // Warm the cache with the one real search.
  for (auto _ : State) {
    std::string R = (*S)->handle(Line);
    benchmark::DoNotOptimize(R);
  }
  State.counters["cache_hits"] = static_cast<double>(
      (*S)->metrics().counter("server.cache.hit").value());
  (*S)->stop();
  removeStore(Store);
}
BENCHMARK(BM_WarmCacheHit)->Unit(benchmark::kMicrosecond);

/// Cold path for a trivial self-pairing: queue, search, verify, store.
void BM_ColdSelfPairing(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    std::string Store = tempStorePath("cold");
    auto S = Service::create(benchOptions(Store));
    if (!S) {
      State.SkipWithError("cannot start service");
      return;
    }
    State.ResumeTiming();
    std::string R = (*S)->handle(
        "{\"cmd\":\"submit\",\"operator\":\"pc2.clear\","
        "\"instruction\":\"pc2.clear\",\"wait\":true}");
    benchmark::DoNotOptimize(R);
    State.PauseTiming();
    (*S)->stop();
    removeStore(Store);
    State.ResumeTiming();
  }
}
BENCHMARK(BM_ColdSelfPairing)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printCacheReport();
  return extra_bench::runBenchmarks(argc, argv);
}
