//===- bench_table1_inventory.cpp - Regenerates Table 1 ---------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// Table 1: "Exotic Instruction Statistics" — the per-machine counts of
// string/list exotic instructions in the six-machine survey. Regenerated
// from the catalog in src/descriptions; the per-machine membership for
// the Univac 1100 and Burroughs B4800 is a reconstruction (flagged in the
// catalog), the counts match the paper by construction, and the 8086/
// Eclipse/370/VAX rows list the manuals' actual instructions.
//
// Benchmarks: parsing and validating the full description library.
//
//===----------------------------------------------------------------------===//

#include "descriptions/Descriptions.h"

#include "isdl/Parser.h"
#include "isdl/Validate.h"
#include "support/StringUtil.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>
#include <cstdio>

using namespace extra;

static void printTable1() {
  std::printf("==== Table 1: Exotic Instruction Statistics ====\n\n");
  std::printf("  %-18s %s\n", "Machine", "Number of Exotic Instructions");
  std::printf("  %-18s %s\n", "-------", "------------------------------");
  unsigned Total = 0;
  for (const std::string &M : descriptions::catalogMachines()) {
    unsigned N = descriptions::catalogCount(M);
    Total += N;
    std::printf("  %-18s %u\n", M.c_str(), N);
  }
  std::printf("  %-18s %u   (paper: 67)\n\n", "Total", Total);

  std::printf("per-machine membership (* = reconstructed entry; the "
              "paper does not list members):\n");
  std::string Current;
  for (const descriptions::CatalogEntry &E : descriptions::catalog()) {
    if (E.Machine != Current) {
      Current = E.Machine;
      std::printf("\n  %s:\n    ", Current.c_str());
    }
    std::printf("%s%s ", E.Mnemonic.c_str(), E.FromManual ? "" : "*");
  }
  std::printf("\n\n");
}

static void BM_ParseDescriptionLibrary(benchmark::State &State) {
  for (auto _ : State) {
    for (const descriptions::Entry &E : descriptions::allEntries()) {
      DiagnosticEngine Diags;
      auto D = isdl::parseDescription(E.Source, Diags);
      benchmark::DoNotOptimize(D);
    }
  }
}
BENCHMARK(BM_ParseDescriptionLibrary);

static void BM_ValidateDescriptionLibrary(benchmark::State &State) {
  std::vector<std::unique_ptr<isdl::Description>> Parsed;
  for (const descriptions::Entry &E : descriptions::allEntries())
    Parsed.push_back(descriptions::load(E.Id));
  for (auto _ : State) {
    for (const auto &D : Parsed) {
      DiagnosticEngine Diags;
      benchmark::DoNotOptimize(isdl::validate(*D, Diags));
    }
  }
}
BENCHMARK(BM_ValidateDescriptionLibrary);

int main(int argc, char **argv) {
  printTable1();
  return extra_bench::runBenchmarks(argc, argv);
}
