//===- bench_ablation_verification.cpp - Verification cost ------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// Ablation called out in DESIGN.md: what does the reproduction's extra
// checking cost? The 1982 system applied transformations after checking
// their conditions; this reproduction additionally differentially tests
// every step. This bench replays the largest derivation (mvc/sassign,
// operator side) with the verifier off, and with the verifier at
// increasing trial counts — quantifying the price of the stronger
// soundness story. A summary table prints before the benchmarks.
//
//===----------------------------------------------------------------------===//

#include "analysis/Derivations.h"
#include "analysis/DiffCheck.h"
#include "descriptions/Descriptions.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>
#include <chrono>
#include <cstdio>

using namespace extra;
using namespace extra::analysis;

namespace {

double replaySeconds(unsigned Trials) {
  const AnalysisCase *Case = findCase("ibm370.mvc/pascal.sassign");
  auto D = descriptions::load(Case->OperatorId);
  auto Start = std::chrono::steady_clock::now();
  transform::Engine E(D->clone());
  if (Trials > 0) {
    DiffOptions Opts;
    Opts.Trials = Trials;
    E.setVerifier(makeStepVerifier(E.constraints(), Opts));
  }
  std::string Error;
  size_t N = E.applyScript(Case->OperatorScript, &Error);
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  if (N != Case->OperatorScript.size())
    std::fprintf(stderr, "replay failed: %s\n", Error.c_str());
  return std::chrono::duration<double, std::milli>(Elapsed).count();
}

void printAblation() {
  std::printf("==== ablation: per-step differential verification cost "
              "(mvc operator derivation, 24 steps) ====\n\n");
  std::printf("  %-22s %10s\n", "configuration", "replay ms");
  for (unsigned Trials : {0u, 8u, 32u, 128u}) {
    double Ms = replaySeconds(Trials);
    if (Trials == 0)
      std::printf("  %-22s %10.2f\n", "verifier off (1982)", Ms);
    else
      std::printf("  verifier, %3u trials  %10.2f\n", Trials, Ms);
  }
  std::printf("\n  the checking the 1982 system could not afford is "
              "cheap enough to leave on.\n\n");
}

void BM_ReplayNoVerifier(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(replaySeconds(0));
}
BENCHMARK(BM_ReplayNoVerifier);

void BM_ReplayWithVerifier(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(replaySeconds(State.range(0)));
}
BENCHMARK(BM_ReplayWithVerifier)->Arg(8)->Arg(32);

} // namespace

int main(int argc, char **argv) {
  printAblation();
  return extra_bench::runBenchmarks(argc, argv);
}
