//===- bench_fig1_reverse_conditional.cpp - Regenerates Fig. 1 --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// Figure 1: the sample reverse-conditional transformation. Shown applied
// by the actual engine (and round-tripped back by if-not-elim).
//
// Benchmarks: single-rule application cost, and engine overhead per step
// (the clone/verify/apply cycle).
//
//===----------------------------------------------------------------------===//

#include "transform/Transform.h"

#include "isdl/Parser.h"
#include "isdl/Printer.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>
#include <cstdio>

using namespace extra;

namespace {

const char *FixtureSource = R"(
t := begin
  ** S **
    exp<>, x: integer,
    t.execute := begin
      input (exp, x);
      if exp then
        x <- x + 1;
        x <- x * 2;
      else
        x <- 0;
      end_if;
      output (x);
    end
end
)";

std::unique_ptr<isdl::Description> fixture() {
  DiagnosticEngine Diags;
  auto D = isdl::parseDescription(FixtureSource, Diags);
  return D;
}

void printFigure1() {
  std::printf("==== Figure 1: Reverse Conditional Transformation ====\n\n");
  auto D = fixture();
  std::printf("--- before ---\n%s\n",
              isdl::printStmts(D->entryRoutine()->Body).c_str());
  transform::Engine E(D->clone());
  transform::ApplyResult R = E.apply({"reverse-conditional", "", {}});
  std::printf("--- after reverse-conditional (%s) ---\n%s\n",
              R.Applied ? "applied" : R.Reason.c_str(),
              isdl::printStmts(E.current().entryRoutine()->Body).c_str());
  E.apply({"if-not-elim", "", {}});
  std::printf("--- after if-not-elim (round trip) ---\n%s\n",
              isdl::printStmts(E.current().entryRoutine()->Body).c_str());
}

void BM_ReverseConditional(benchmark::State &State) {
  auto D = fixture();
  for (auto _ : State) {
    transform::Engine E(D->clone());
    benchmark::DoNotOptimize(E.apply({"reverse-conditional", "", {}}));
  }
}
BENCHMARK(BM_ReverseConditional);

void BM_EngineStepOverhead(benchmark::State &State) {
  // A rule that is checked but refuses: measures clone + dispatch +
  // rollback without rewrite work.
  auto D = fixture();
  for (auto _ : State) {
    transform::Engine E(D->clone());
    benchmark::DoNotOptimize(E.apply({"add-zero", "", {}}));
  }
}
BENCHMARK(BM_EngineStepOverhead);

} // namespace

int main(int argc, char **argv) {
  printFigure1();
  return extra_bench::runBenchmarks(argc, argv);
}
