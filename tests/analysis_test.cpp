//===- analysis_test.cpp - Table 2 derivation tests -------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "analysis/Derivations.h"

#include "descriptions/Descriptions.h"
#include "isdl/Parser.h"
#include "isdl/Validate.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::analysis;

namespace {

TEST(DescriptionsTest, AllLibraryEntriesParseAndValidate) {
  for (const descriptions::Entry &E : descriptions::allEntries()) {
    DiagnosticEngine Diags;
    auto D = isdl::parseDescription(E.Source, Diags);
    ASSERT_TRUE(D && !Diags.hasErrors())
        << E.Id << ":\n" << Diags.str();
    EXPECT_TRUE(isdl::validate(*D, Diags)) << E.Id << ":\n" << Diags.str();
  }
}

TEST(DescriptionsTest, CatalogMatchesTable1) {
  EXPECT_EQ(descriptions::catalogCount("Intel 8086"), 6u);
  EXPECT_EQ(descriptions::catalogCount("DG Eclipse"), 5u);
  EXPECT_EQ(descriptions::catalogCount("Univac 1100"), 21u);
  EXPECT_EQ(descriptions::catalogCount("IBM 370"), 7u);
  EXPECT_EQ(descriptions::catalogCount("Burroughs B4800"), 16u);
  EXPECT_EQ(descriptions::catalogCount("VAX-11"), 12u);
  EXPECT_EQ(descriptions::catalog().size(), 67u);
}

// Each Table 2 analysis must succeed in base mode: every step verified,
// differential checks green, common form reached.
class Table2Test : public ::testing::TestWithParam<size_t> {};

TEST_P(Table2Test, DerivationSucceeds) {
  const AnalysisCase &Case = table2Cases()[GetParam()];
  AnalysisResult R = runAnalysis(Case, Mode::Base);
  ASSERT_TRUE(R.Succeeded) << Case.Id << ": " << R.FailureReason;
  EXPECT_GT(R.StepsApplied, 0u);
  EXPECT_FALSE(R.Binding.empty());
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table2Test,
                         ::testing::Range<size_t>(0, 11),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           std::string Name =
                               table2Cases()[Info.param].Id;
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

TEST(Table2Test, ScasbRigelConstraints) {
  const AnalysisCase *Case = findCase("i8086.scasb/rigel.index");
  ASSERT_NE(Case, nullptr);
  AnalysisResult R = runAnalysis(*Case, Mode::Base);
  ASSERT_TRUE(R.Succeeded) << R.FailureReason;
  std::string C = R.Constraints.str();
  // The flag pins from simplification...
  EXPECT_NE(C.find("value: rf = 1"), std::string::npos) << C;
  EXPECT_NE(C.find("value: rfz = 0"), std::string::npos) << C;
  EXPECT_NE(C.find("value: df = 0"), std::string::npos) << C;
  EXPECT_NE(C.find("value: zf = 0"), std::string::npos) << C;
  // ...and the register-size constraint from binding Src.Length to cx
  // (§4.1: "the string length must fit into 16 bits").
  EXPECT_NE(C.find("range: 0 <= Src.Length <= 65535"), std::string::npos)
      << C;
  EXPECT_EQ(R.Binding.lookupA("Src.Length"), "cx");
  EXPECT_EQ(R.Binding.lookupA("ch"), "al");
  EXPECT_EQ(R.Binding.lookupA("read"), "fetch");
  EXPECT_EQ(R.Binding.lookupA("found"), "zf");
}

TEST(Table2Test, MvcCodingConstraint) {
  const AnalysisCase *Case = findCase("ibm370.mvc/pascal.sassign");
  ASSERT_NE(Case, nullptr);
  AnalysisResult R = runAnalysis(*Case, Mode::Base);
  ASSERT_TRUE(R.Succeeded) << R.FailureReason;
  std::string C = R.Constraints.str();
  // §4.2: the compiler must decrement the length before encoding it...
  EXPECT_NE(C.find("offset: encode Len as Len - 1"), std::string::npos) << C;
  // ...and the 8-bit field limits lengths to 1..256 source-side.
  EXPECT_NE(C.find("range: 1 <= Len <= 256"), std::string::npos) << C;
  EXPECT_EQ(R.Binding.lookupA("Lc"), "L");
}

TEST(Table2Test, StepCountsTrackThePaper) {
  // Absolute step counts differ (this engine's rules are coarser than
  // the 1982 system's), but the *shape* must hold: our per-row counts
  // rank-correlate positively with Table 2, and mvc — the paper's
  // largest analysis at 105 steps — has the largest operator-side
  // derivation here too (the coding-constraint integration of §4.2).
  std::vector<double> Ours, Paper;
  unsigned MvcOpSteps = 0, MaxOtherOpSteps = 0;
  for (const AnalysisCase &Case : table2Cases()) {
    AnalysisResult R = runAnalysis(Case, Mode::Base);
    ASSERT_TRUE(R.Succeeded) << Case.Id << ": " << R.FailureReason;
    Ours.push_back(R.StepsApplied);
    Paper.push_back(Case.PaperSteps);
    if (Case.InstructionId == "ibm370.mvc")
      MvcOpSteps = R.OperatorSteps;
    else
      MaxOtherOpSteps = std::max(MaxOtherOpSteps, R.OperatorSteps);
  }
  EXPECT_GT(MvcOpSteps, MaxOtherOpSteps);

  // Spearman rank correlation.
  auto Ranks = [](const std::vector<double> &V) {
    std::vector<double> R(V.size());
    for (size_t I = 0; I < V.size(); ++I)
      for (size_t J = 0; J < V.size(); ++J)
        if (V[J] < V[I] || (V[J] == V[I] && J < I))
          R[I] += 1;
    return R;
  };
  std::vector<double> RA = Ranks(Ours), RB = Ranks(Paper);
  double N = static_cast<double>(RA.size());
  double SumD2 = 0;
  for (size_t I = 0; I < RA.size(); ++I)
    SumD2 += (RA[I] - RB[I]) * (RA[I] - RB[I]);
  double Rho = 1.0 - 6.0 * SumD2 / (N * (N * N - 1.0));
  EXPECT_GT(Rho, 0.6) << "rank correlation with Table 2 too weak: " << Rho;
}

// Analyses beyond Table 2: the machinery generalizes to unanalyzed
// catalog instructions.
class ExtendedCaseTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ExtendedCaseTest, DerivationSucceeds) {
  const AnalysisCase &Case = extendedCases()[GetParam()];
  AnalysisResult R = runAnalysis(Case, Mode::Base);
  ASSERT_TRUE(R.Succeeded) << Case.Id << ": " << R.FailureReason;
  EXPECT_FALSE(R.Binding.empty());
}

INSTANTIATE_TEST_SUITE_P(All, ExtendedCaseTest,
                         ::testing::Range<size_t>(0, 2),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           std::string Name =
                               extendedCases()[Info.param].Id;
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

TEST(Movc3Test, BaseModeFailsLikeThePaper) {
  AnalysisResult R = runAnalysis(movc3SassignCase(), Mode::Base);
  EXPECT_FALSE(R.Succeeded);
  EXPECT_NE(R.FailureReason.find("relational constraint"),
            std::string::npos)
      << R.FailureReason;
}

TEST(Movc3Test, ExtensionModeSucceeds) {
  AnalysisResult R = runAnalysis(movc3SassignCase(), Mode::Extension);
  ASSERT_TRUE(R.Succeeded) << R.FailureReason;
  EXPECT_TRUE(R.Constraints.hasRelational());
  EXPECT_NE(R.Constraints.str().find("pascal.no-overlap"),
            std::string::npos);
}

} // namespace
