//===- descriptions_test.cpp - Description library behavior -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behavioral checks for the description library: each instruction
/// description, interpreted, does what its reference manual says; each
/// operator description implements its language's semantics. (Parsing/
/// validation of every entry is covered in analysis_test.cpp.)
///
//===----------------------------------------------------------------------===//

#include "descriptions/Descriptions.h"

#include "interp/Interp.h"

#include <gtest/gtest.h>

using namespace extra;
using interp::Memory;
using interp::loadBytes;
using interp::storeBytes;

namespace {

TEST(OperatorBehaviorTest, PascalSmoveMovesBytes) {
  auto D = descriptions::load("pascal.smove");
  Memory M;
  storeBytes(M, 10, "pascal");
  auto R = interp::run(*D, {10, 50, 6}, M); // (src, dst, len)
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(loadBytes(R.FinalMemory, 50, 6), "pascal");
}

TEST(OperatorBehaviorTest, Pl1MoveAgreesWithPascalSmove) {
  auto A = descriptions::load("pascal.smove");
  auto B = descriptions::load("pl1.move");
  Memory M;
  storeBytes(M, 10, "identical?");
  for (int64_t Len : {0, 1, 10}) {
    auto RA = interp::run(*A, {10, 60, Len}, M);
    auto RB = interp::run(*B, {10, 60, Len}, M);
    ASSERT_TRUE(RA.Ok && RB.Ok);
    EXPECT_EQ(RA.FinalMemory, RB.FinalMemory) << Len;
  }
}

TEST(OperatorBehaviorTest, CluSearchAgreesWithRigelIndex) {
  auto A = descriptions::load("rigel.index");
  auto B = descriptions::load("clu.search");
  Memory M;
  storeBytes(M, 20, "agreement");
  for (int64_t Len : {0, 4, 9})
    for (int Ch : {'a', 'g', 't', 'q'}) {
      auto RA = interp::run(*A, {20, Len, Ch}, M);
      auto RB = interp::run(*B, {20, Len, Ch}, M);
      ASSERT_TRUE(RA.Ok && RB.Ok);
      EXPECT_EQ(RA.Outputs, RB.Outputs)
          << "len=" << Len << " ch=" << static_cast<char>(Ch);
    }
}

TEST(OperatorBehaviorTest, SequalComparesEquality) {
  auto D = descriptions::load("pascal.sequal");
  Memory M;
  storeBytes(M, 10, "alpha");
  storeBytes(M, 30, "alpha");
  storeBytes(M, 50, "aloha");
  EXPECT_EQ(interp::run(*D, {10, 30, 5}, M).Outputs,
            std::vector<int64_t>{1});
  EXPECT_EQ(interp::run(*D, {10, 50, 5}, M).Outputs,
            std::vector<int64_t>{0});
  EXPECT_EQ(interp::run(*D, {10, 50, 2}, M).Outputs,
            std::vector<int64_t>{1}); // "al" == "al"
  EXPECT_EQ(interp::run(*D, {10, 30, 0}, M).Outputs,
            std::vector<int64_t>{1}); // empty strings equal
}

TEST(OperatorBehaviorTest, Pc2CopyHandlesOverlapBothWays) {
  auto D = descriptions::load("pc2.copy");
  Memory M;
  storeBytes(M, 100, "abcdef");
  // dst overlaps source tail.
  auto Up = interp::run(*D, {4, 100, 102}, M); // (len, src, dst)
  ASSERT_TRUE(Up.Ok) << Up.Error;
  EXPECT_EQ(loadBytes(Up.FinalMemory, 102, 4), "abcd");
  // dst below src: forward copy fine.
  Memory M2;
  storeBytes(M2, 102, "abcdef");
  auto Down = interp::run(*D, {4, 102, 100}, M2);
  ASSERT_TRUE(Down.Ok);
  EXPECT_EQ(loadBytes(Down.FinalMemory, 100, 4), "abcd");
}

TEST(OperatorBehaviorTest, RigelSpanCountsLeadingRun) {
  auto D = descriptions::load("rigel.span");
  Memory M;
  storeBytes(M, 20, "aaab");
  EXPECT_EQ(interp::run(*D, {20, 4, 'a'}, M).Outputs,
            std::vector<int64_t>{3});
  EXPECT_EQ(interp::run(*D, {20, 4, 'b'}, M).Outputs,
            std::vector<int64_t>{0});
  EXPECT_EQ(interp::run(*D, {20, 3, 'a'}, M).Outputs,
            std::vector<int64_t>{3}); // entire string matches
  EXPECT_EQ(interp::run(*D, {20, 0, 'a'}, M).Outputs,
            std::vector<int64_t>{0});
}

TEST(InstructionBehaviorTest, MovsbForwardMove) {
  auto D = descriptions::load("i8086.movsb");
  Memory M;
  storeBytes(M, 10, "bytes");
  // (rf, df, si, di, cx)
  auto R = interp::run(*D, {1, 0, 10, 40, 5}, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(loadBytes(R.FinalMemory, 40, 5), "bytes");
  EXPECT_EQ(R.Outputs, (std::vector<int64_t>{15, 45, 0})); // si, di, cx
}

TEST(InstructionBehaviorTest, MovsbSingleShot) {
  auto D = descriptions::load("i8086.movsb");
  Memory M;
  M[10] = 'x';
  auto R = interp::run(*D, {0, 0, 10, 40, 5}, M); // rf = 0
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.FinalMemory.at(40), 'x');
  EXPECT_EQ(R.Outputs, (std::vector<int64_t>{11, 41, 5}));
}

TEST(InstructionBehaviorTest, CmpsbStopsAtMismatch) {
  auto D = descriptions::load("i8086.cmpsb");
  Memory M;
  storeBytes(M, 10, "abcx");
  storeBytes(M, 30, "abcy");
  // (rf, rfz, df, zf, si, di, cx); rfz=1: compare while equal.
  auto R = interp::run(*D, {1, 1, 0, 1, 10, 30, 4}, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Outputs: zf, si, di, cx — zf clear after the mismatching pair.
  EXPECT_EQ(R.Outputs[0], 0);
  EXPECT_EQ(R.Outputs[1], 14);
  EXPECT_EQ(R.Outputs[2], 34);
}

TEST(InstructionBehaviorTest, StosbFillsForward) {
  auto D = descriptions::load("i8086.stosb");
  auto R = interp::run(*D, {1, 0, 40, 3, 'z'}, {});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(loadBytes(R.FinalMemory, 40, 3), "zzz");
}

TEST(InstructionBehaviorTest, LoccReportsRemainderAndAddress) {
  auto D = descriptions::load("vax.locc");
  Memory M;
  storeBytes(M, 10, "locate");
  auto Hit = interp::run(*D, {'a', 6, 10}, M);
  ASSERT_TRUE(Hit.Ok);
  // 'a' at offset 3: three bytes remain (including it), address 13.
  EXPECT_EQ(Hit.Outputs, (std::vector<int64_t>{3, 13}));
  auto Miss = interp::run(*D, {'z', 6, 10}, M);
  EXPECT_EQ(Miss.Outputs, (std::vector<int64_t>{0, 16}));
}

TEST(InstructionBehaviorTest, SkpcSkipsLeadingRun) {
  auto D = descriptions::load("vax.skpc");
  Memory M;
  storeBytes(M, 10, "   pad");
  auto R = interp::run(*D, {' ', 6, 10}, M);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Outputs, (std::vector<int64_t>{3, 13})); // stops at 'p'
  auto All = interp::run(*D, {' ', 3, 10}, M);
  EXPECT_EQ(All.Outputs, (std::vector<int64_t>{0, 13}));
}

TEST(InstructionBehaviorTest, Cmpc3CountsRemainder) {
  auto D = descriptions::load("vax.cmpc3");
  Memory M;
  storeBytes(M, 10, "vax");
  storeBytes(M, 30, "vex");
  auto R = interp::run(*D, {3, 10, 30}, M);
  ASSERT_TRUE(R.Ok);
  // Mismatch at index 1 ('a' vs 'e'): 2 bytes remain including it.
  EXPECT_EQ(R.Outputs[0], 2);
}

TEST(InstructionBehaviorTest, Movc5ClearSpecialization) {
  auto D = descriptions::load("vax.movc5");
  auto R = interp::run(*D, {0, 0, 0, 4, 40}, {});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(loadBytes(R.FinalMemory, 40, 4), std::string(4, '\0'));
}

TEST(InstructionBehaviorTest, MvcMovesLengthPlusOne) {
  auto D = descriptions::load("ibm370.mvc");
  Memory M;
  storeBytes(M, 10, "370mvc");
  auto R = interp::run(*D, {40, 10, 3}, M); // moves FOUR bytes
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(loadBytes(R.FinalMemory, 40, 4), "370m");
  EXPECT_EQ(R.FinalMemory.count(44), 0u);
}

TEST(InstructionBehaviorTest, ClcComparesWithOrdering) {
  auto D = descriptions::load("ibm370.clc");
  Memory M;
  storeBytes(M, 10, "abc");
  storeBytes(M, 30, "abd");
  auto Lt = interp::run(*D, {10, 30, 2}, M); // 3 bytes: c < d
  ASSERT_TRUE(Lt.Ok);
  EXPECT_EQ(Lt.Outputs, std::vector<int64_t>{1});
  auto Eq = interp::run(*D, {10, 30, 1}, M); // "ab" == "ab"
  EXPECT_EQ(Eq.Outputs, std::vector<int64_t>{0});
  auto Gt = interp::run(*D, {30, 10, 2}, M);
  EXPECT_EQ(Gt.Outputs, std::vector<int64_t>{2});
}

TEST(InstructionBehaviorTest, Movc3AgreesWithPc2CopyEverywhere) {
  auto A = descriptions::load("vax.movc3");
  auto B = descriptions::load("pc2.copy");
  Memory M;
  storeBytes(M, 100, "overlap-check");
  for (int64_t Dst : {90, 100, 103, 120}) {
    auto RA = interp::run(*A, {8, 100, Dst}, M);
    auto RB = interp::run(*B, {8, 100, Dst}, M);
    ASSERT_TRUE(RA.Ok && RB.Ok);
    EXPECT_EQ(RA.FinalMemory, RB.FinalMemory) << "dst=" << Dst;
  }
}

} // namespace
