//===- server_test.cpp - Discovery service and memo store tests -*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// Acceptance tests of the persistent discovery service: schema-version
// headers (tolerated when absent, fatal when from the future), memo
// entries round-tripping through their JSONL lines, kill-and-restart
// store recovery (byte-identical after compaction), torn-tail tolerance,
// store locking, queue dedup/priority/cancel semantics, the service's
// cache policy, the wire protocol, and a socket round trip — plus
// thread-count invariance of concurrent submits under injected store
// faults.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/MemoStore.h"
#include "server/Protocol.h"
#include "server/Service.h"
#include "server/Socket.h"
#include "server/WorkQueue.h"

#include "obs/Exposition.h"
#include "obs/TraceFile.h"
#include "registry/Registry.h"
#include "search/Checkpoint.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <gtest/gtest.h>
#include <pthread.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace extra;
using namespace extra::server;

namespace {

/// Disarms the process-wide injector on scope exit so one test's spec
/// never leaks into the next.
struct InjectorReset {
  ~InjectorReset() { FaultInjector::instance().reset(); }
};

/// A temp file path unique to this test binary run; removed on exit
/// (with the memo store's sidecar lock).
struct TempFile {
  std::string Path;
  explicit TempFile(const std::string &Name)
      : Path(::testing::TempDir() + Name) {
    std::remove(Path.c_str());
    std::remove((Path + ".lock").c_str());
  }
  ~TempFile() {
    std::remove(Path.c_str());
    std::remove((Path + ".lock").c_str());
  }
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

MemoEntry sampleEntry(const std::string &Key, const std::string &Case) {
  MemoEntry E;
  E.Key = Key;
  E.OperatorId = "pc2.copy";
  E.InstructionId = "vax.movc3";
  E.M = analysis::Mode::Base;
  E.Record.Case = Case;
  E.Record.Outcome = search::CaseOutcome::Verified;
  E.Record.Found = true;
  E.Record.Verified = true;
  E.Record.OpSteps = 2;
  E.Record.InstSteps = 3;
  E.Record.Nodes = 41;
  E.Limits.BeamWidth = 8;
  E.Limits.MaxDepth = 20;
  E.Limits.Widenings = 3;
  E.Limits.MaxNodes = 60000;
  E.Limits.TimeBudgetMs = 60000;
  E.OpScript = "fold-constant k=1\n";
  E.InstScript = "rename-value from=\"a b\" to=c\n";
  E.Binding = "src <-> src\n";
  E.Constraints = "len >= 1\n";
  E.FpOp = 0xdeadbeefcafef00dull;
  E.FpInst = 0x0123456789abcdefull;
  return E;
}

//===----------------------------------------------------------------------===//
// Schema-version headers (checkpoint and memo formats)
//===----------------------------------------------------------------------===//

TEST(VersionHeaderTest, RoundTrips) {
  std::string Line =
      search::versionHeaderLine(search::kCheckpointFormat, 7);
  auto H = search::parseVersionHeader(Line);
  ASSERT_TRUE(H);
  EXPECT_EQ(H->first, search::kCheckpointFormat);
  EXPECT_EQ(H->second, 7u);
  // Records and junk are not headers.
  EXPECT_FALSE(search::parseVersionHeader(
      "{\"case\":\"x\",\"outcome\":\"verified\"}"));
  EXPECT_FALSE(search::parseVersionHeader("{\"format\":\"x\",\"vers"));
  EXPECT_FALSE(search::parseVersionHeader(""));
}

TEST(VersionHeaderTest, AppendStampsHeaderOnNewFiles) {
  TempFile F("ckpt_header.jsonl");
  search::CheckpointRecord R;
  R.Case = "a";
  R.Outcome = search::CaseOutcome::Verified;
  ASSERT_TRUE(search::appendCheckpoint(F.Path, R));
  ASSERT_TRUE(search::appendCheckpoint(F.Path, R)); // No second header.

  std::ifstream In(F.Path);
  std::string First;
  ASSERT_TRUE(std::getline(In, First));
  auto H = search::parseVersionHeader(First);
  ASSERT_TRUE(H);
  EXPECT_EQ(H->first, search::kCheckpointFormat);
  EXPECT_EQ(H->second, search::kCheckpointVersion);
  unsigned Headers = 1, Records = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    if (search::parseVersionHeader(Line))
      ++Headers;
    else if (!Line.empty())
      ++Records;
  }
  EXPECT_EQ(Headers, 1u);
  EXPECT_EQ(Records, 2u);

  auto Back = search::readCheckpointsChecked(F.Path);
  ASSERT_TRUE(bool(Back));
  EXPECT_EQ(Back->size(), 1u); // Same case, later record wins.
}

TEST(VersionHeaderTest, HeaderlessLegacyFilesStillRead) {
  TempFile F("ckpt_legacy.jsonl");
  search::CheckpointRecord R;
  R.Case = "legacy";
  R.Outcome = search::CaseOutcome::Exhausted;
  {
    std::ofstream OS(F.Path);
    OS << R.toJsonLine() << "\n"; // PR 4 format: no header line.
  }
  auto Back = search::readCheckpointsChecked(F.Path);
  ASSERT_TRUE(bool(Back));
  ASSERT_EQ(Back->size(), 1u);
  EXPECT_EQ((*Back)[0].Case, "legacy");
}

TEST(VersionHeaderTest, FutureVersionRejectedWithStoreFault) {
  TempFile F("ckpt_future.jsonl");
  {
    std::ofstream OS(F.Path);
    OS << search::versionHeaderLine(search::kCheckpointFormat, 99) << "\n";
  }
  auto Back = search::readCheckpointsChecked(F.Path);
  ASSERT_FALSE(bool(Back));
  EXPECT_EQ(Back.fault().Category, FaultCategory::Store);

  // The tolerant reader agrees (empty result, typed fault out-param).
  Fault Flt;
  EXPECT_TRUE(search::readCheckpoints(F.Path, &Flt).empty());
  EXPECT_EQ(Flt.Category, FaultCategory::Store);
}

TEST(VersionHeaderTest, ForeignFormatRejected) {
  TempFile F("ckpt_foreign.jsonl");
  {
    std::ofstream OS(F.Path);
    OS << search::versionHeaderLine("extra-memo", 1) << "\n";
  }
  auto Back = search::readCheckpointsChecked(F.Path);
  ASSERT_FALSE(bool(Back));
  EXPECT_EQ(Back.fault().Category, FaultCategory::Store);
}

//===----------------------------------------------------------------------===//
// Pairing keys
//===----------------------------------------------------------------------===//

TEST(PairingKeyTest, StableOrderedAndModeSensitive) {
  auto K1 = pairingKey("pc2.copy", "vax.movc3", analysis::Mode::Base);
  auto K2 = pairingKey("pc2.copy", "vax.movc3", analysis::Mode::Base);
  ASSERT_TRUE(bool(K1));
  ASSERT_TRUE(bool(K2));
  EXPECT_EQ(*K1, *K2); // Deterministic.
  EXPECT_EQ(K1->substr(0, 2), "0x");

  // The pairing is ordered (operator side vs instruction side).
  auto Swapped = pairingKey("vax.movc3", "pc2.copy", analysis::Mode::Base);
  ASSERT_TRUE(bool(Swapped));
  EXPECT_NE(*K1, *Swapped);

  // Extension mode is a distinct cache line.
  auto Ext = pairingKey("pc2.copy", "vax.movc3", analysis::Mode::Extension);
  ASSERT_TRUE(bool(Ext));
  EXPECT_NE(*K1, *Ext);

  // Unknown descriptions fault instead of keying garbage.
  EXPECT_FALSE(bool(pairingKey("no.such.op", "vax.movc3",
                               analysis::Mode::Base)));
}

//===----------------------------------------------------------------------===//
// Memo entries and the store
//===----------------------------------------------------------------------===//

TEST(MemoEntryTest, RoundTripsThroughJsonLine) {
  MemoEntry E = sampleEntry("0x00ff00ff00ff00ff", "vax.movc3/pc2.copy");
  auto Back = MemoEntry::fromJsonLine(E.toJsonLine());
  ASSERT_TRUE(Back);
  EXPECT_EQ(Back->Key, E.Key);
  EXPECT_EQ(Back->OperatorId, E.OperatorId);
  EXPECT_EQ(Back->InstructionId, E.InstructionId);
  EXPECT_EQ(Back->M, E.M);
  EXPECT_EQ(Back->Record.Case, E.Record.Case);
  EXPECT_EQ(Back->Record.Outcome, E.Record.Outcome);
  EXPECT_EQ(Back->Record.OpSteps, E.Record.OpSteps);
  EXPECT_EQ(Back->Limits.BeamWidth, E.Limits.BeamWidth);
  EXPECT_EQ(Back->Limits.MaxNodes, E.Limits.MaxNodes);
  EXPECT_EQ(Back->Limits.TimeBudgetMs, E.Limits.TimeBudgetMs);
  EXPECT_EQ(Back->OpScript, E.OpScript);
  EXPECT_EQ(Back->InstScript, E.InstScript);
  EXPECT_EQ(Back->Binding, E.Binding);
  EXPECT_EQ(Back->Constraints, E.Constraints);
  EXPECT_EQ(Back->FpOp, E.FpOp);
  EXPECT_EQ(Back->FpInst, E.FpInst);

  // A memo line still parses as a plain checkpoint record (superset
  // format), and a plain checkpoint line is not a memo entry.
  EXPECT_TRUE(search::CheckpointRecord::fromJsonLine(E.toJsonLine()));
  EXPECT_FALSE(MemoEntry::fromJsonLine(E.Record.toJsonLine()));
}

TEST(MemoLimitsTest, CoversIsPerAxis) {
  MemoLimits A;
  A.BeamWidth = 8;
  A.MaxDepth = 20;
  A.Widenings = 3;
  A.MaxNodes = 1000;
  A.TimeBudgetMs = 500;
  EXPECT_TRUE(A.covers(A));
  MemoLimits B = A;
  B.BeamWidth = 4;
  EXPECT_TRUE(A.covers(B));
  EXPECT_FALSE(B.covers(A));
  MemoLimits C = A;
  C.MaxNodes = 2000; // Bigger on one axis only.
  EXPECT_FALSE(A.covers(C));
}

TEST(MemoStoreTest, KillAndRestartRoundTrip) {
  TempFile F("memo_restart.jsonl");
  MemoEntry A = sampleEntry("0x0000000000000001", "a");
  MemoEntry B = sampleEntry("0x0000000000000002", "b");
  B.Record.Outcome = search::CaseOutcome::Exhausted;
  B.Record.Found = B.Record.Verified = false;

  {
    auto S = MemoStore::open(F.Path);
    ASSERT_TRUE(bool(S)) << S.fault().Message;
    EXPECT_TRUE(bool((*S)->put(A)));
    EXPECT_TRUE(bool((*S)->put(B)));
    // Supersede A: the later record must win after restart.
    A.Record.Nodes = 99;
    EXPECT_TRUE(bool((*S)->put(A)));
    // No clean shutdown: destructor only (the "kill" — appends are
    // already on disk, only the lock release runs).
  }

  auto S = MemoStore::open(F.Path);
  ASSERT_TRUE(bool(S)) << S.fault().Message;
  EXPECT_EQ((*S)->size(), 2u);
  auto GotA = (*S)->lookup(A.Key);
  ASSERT_TRUE(GotA);
  EXPECT_EQ(GotA->Record.Nodes, 99u);
  ASSERT_TRUE((*S)->lookup(B.Key));

  // Compaction is canonical: compacting twice from different starting
  // files (3-record log vs already-compacted) yields identical bytes.
  ASSERT_TRUE(bool((*S)->compact()));
  std::string Once = slurp(F.Path);
  (*S)->close();
  auto S2 = MemoStore::open(F.Path);
  ASSERT_TRUE(bool(S2));
  ASSERT_TRUE(bool((*S2)->compact()));
  EXPECT_EQ(slurp(F.Path), Once);
  EXPECT_EQ((*S2)->size(), 2u);
}

TEST(MemoStoreTest, ToleratesTornTail) {
  TempFile F("memo_torn.jsonl");
  MemoEntry A = sampleEntry("0x000000000000000a", "a");
  {
    auto S = MemoStore::open(F.Path);
    ASSERT_TRUE(bool(S));
    ASSERT_TRUE(bool((*S)->put(A)));
  }
  {
    // A server killed mid-append leaves a torn final line.
    std::ofstream OS(F.Path, std::ios::app);
    OS << "{\"case\":\"b\",\"outcome\":\"verif";
  }
  auto S = MemoStore::open(F.Path);
  ASSERT_TRUE(bool(S)) << S.fault().Message;
  EXPECT_EQ((*S)->size(), 1u);
  EXPECT_TRUE((*S)->lookup(A.Key));

  // The next append self-heals the file: the torn line gets terminated,
  // and both entries load thereafter.
  MemoEntry B = sampleEntry("0x000000000000000b", "b");
  ASSERT_TRUE(bool((*S)->put(B)));
  (*S)->close();
  auto S2 = MemoStore::open(F.Path);
  ASSERT_TRUE(bool(S2));
  EXPECT_EQ((*S2)->size(), 2u);
}

TEST(MemoStoreTest, LockExcludesSecondServer) {
  TempFile F("memo_lock.jsonl");
  auto S = MemoStore::open(F.Path);
  ASSERT_TRUE(bool(S));
  auto S2 = MemoStore::open(F.Path);
  ASSERT_FALSE(bool(S2));
  EXPECT_EQ(S2.fault().Category, FaultCategory::Store);
  (*S)->close();
  // The lock released, a new server may open the store.
  auto S3 = MemoStore::open(F.Path);
  EXPECT_TRUE(bool(S3));
}

TEST(MemoStoreTest, FutureVersionRejected) {
  TempFile F("memo_future.jsonl");
  {
    std::ofstream OS(F.Path);
    OS << search::versionHeaderLine(kMemoFormat, kMemoVersion + 1) << "\n";
  }
  auto S = MemoStore::open(F.Path);
  ASSERT_FALSE(bool(S));
  EXPECT_EQ(S.fault().Category, FaultCategory::Store);
  // The failed open must not leave its lock behind.
  auto S2 = MemoStore::open(F.Path);
  ASSERT_FALSE(bool(S2));
  EXPECT_EQ(S2.fault().Message.find("lock"), std::string::npos);
}

TEST(MemoStoreTest, CheckpointFileRejectedAsForeign) {
  TempFile F("memo_foreign.jsonl");
  {
    std::ofstream OS(F.Path);
    OS << search::versionHeaderLine(search::kCheckpointFormat, 1) << "\n";
  }
  auto S = MemoStore::open(F.Path);
  ASSERT_FALSE(bool(S));
  EXPECT_EQ(S.fault().Category, FaultCategory::Store);
}

TEST(MemoStoreTest, InjectedStoreFaultsAreTypedAndNonFatal) {
  InjectorReset Reset;
  TempFile F("memo_inject.jsonl");
  auto S = MemoStore::open(F.Path);
  ASSERT_TRUE(bool(S));
  ASSERT_TRUE(
      FaultInjector::instance().configure("store=1.0", nullptr));
  MemoEntry A = sampleEntry("0x00000000000000aa", "a");
  auto Put = (*S)->put(A);
  ASSERT_FALSE(bool(Put));
  EXPECT_EQ(Put.fault().Category, FaultCategory::Store);
  // The in-memory view still answers (durability lost, service lives).
  EXPECT_TRUE((*S)->lookup(A.Key));
  FaultInjector::instance().reset();
  // With injection off the same entry persists fine.
  ASSERT_TRUE(bool((*S)->put(A)));
}

//===----------------------------------------------------------------------===//
// Work queue
//===----------------------------------------------------------------------===//

search::BatchCase queueCase(const std::string &Id) {
  search::BatchCase C;
  C.Id = Id;
  C.OperatorId = "op." + Id;
  C.InstructionId = "inst." + Id;
  return C;
}

TEST(WorkQueueTest, DedupsLiveKeys) {
  WorkQueue Q(4);
  JobTicket T1 = Q.submit(queueCase("a"), "key-a");
  JobTicket T2 = Q.submit(queueCase("a"), "key-a");
  EXPECT_FALSE(T1.Deduped);
  EXPECT_TRUE(T2.Deduped);
  EXPECT_EQ(T1.Id, T2.Id);
  EXPECT_EQ(Q.queuedCount(), 1u);

  auto J = Q.pop();
  ASSERT_TRUE(J);
  // Still live (running): a third submit still dedups.
  EXPECT_TRUE(Q.submit(queueCase("a"), "key-a").Deduped);
  search::CheckpointRecord R;
  R.Case = "a";
  Q.complete(J->Id, R);
  // Completed keys are submittable again (the store answers repeats).
  EXPECT_FALSE(Q.submit(queueCase("a"), "key-a").Deduped);
  Q.close();
}

TEST(WorkQueueTest, PriorityThenSubmissionOrder) {
  WorkQueue Q(2);
  Q.submit(queueCase("low1"), "k1", 0);
  Q.submit(queueCase("high"), "k2", 5);
  Q.submit(queueCase("low2"), "k3", 0);
  auto A = Q.pop();
  auto B = Q.pop();
  auto C = Q.pop();
  ASSERT_TRUE(A && B && C);
  EXPECT_EQ(A->Case.Id, "high");
  EXPECT_EQ(B->Case.Id, "low1");
  EXPECT_EQ(C->Case.Id, "low2");
  Q.close();
}

TEST(WorkQueueTest, WaitSeesCompletion) {
  WorkQueue Q(1);
  JobTicket T = Q.submit(queueCase("w"), "kw");
  std::thread Worker([&] {
    auto J = Q.pop();
    ASSERT_TRUE(J);
    search::CheckpointRecord R;
    R.Case = J->Case.Id;
    R.Outcome = search::CaseOutcome::Verified;
    Q.complete(J->Id, R);
  });
  auto R = Q.wait(T.Id);
  Worker.join();
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Case, "w");
  EXPECT_EQ(R->Outcome, search::CaseOutcome::Verified);
  EXPECT_FALSE(Q.wait(0xdead)); // Unknown id.
  Q.close();
}

TEST(WorkQueueTest, CancelAllCompletesBacklogAsCancelled) {
  WorkQueue Q(4);
  JobTicket T1 = Q.submit(queueCase("c1"), "kc1");
  JobTicket T2 = Q.submit(queueCase("c2"), "kc2");
  auto Claimed = Q.pop(); // c1 running, c2 queued.
  ASSERT_TRUE(Claimed);
  EXPECT_FALSE(Claimed->Cancel->load());
  Q.cancelAll();
  EXPECT_TRUE(Claimed->Cancel->load()); // Running job told to stop.
  auto R2 = Q.wait(T2.Id);              // Queued job completed as cancelled.
  ASSERT_TRUE(R2);
  EXPECT_EQ(R2->Outcome, search::CaseOutcome::TimedOut);
  // The worker still completes its claimed job normally.
  search::CheckpointRecord R;
  R.Case = "c1";
  Q.complete(Claimed->Id, R);
  EXPECT_TRUE(Q.wait(T1.Id));
  EXPECT_FALSE(Q.pop()); // Closed and empty.
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, ParsesAndValidatesRequests) {
  auto R = parseRequest("{\"cmd\":\"submit\",\"operator\":\"pc2.copy\","
                        "\"instruction\":\"vax.movc3\",\"wait\":true,"
                        "\"priority\":3}");
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->C, Request::Cmd::Submit);
  EXPECT_EQ(R->OperatorId, "pc2.copy");
  EXPECT_EQ(R->InstructionId, "vax.movc3");
  EXPECT_TRUE(R->Wait);
  EXPECT_EQ(R->Priority, 3);
  EXPECT_EQ(R->M, analysis::Mode::Base);

  auto Q = parseRequest(
      "{\"cmd\":\"query\",\"case\":\"vax.movc3/pc2.copy\","
      "\"mode\":\"extension\"}");
  ASSERT_TRUE(bool(Q));
  EXPECT_EQ(Q->CaseId, "vax.movc3/pc2.copy");
  EXPECT_EQ(Q->M, analysis::Mode::Extension);

  for (const char *Bad : {
           "not json",                          // Malformed line.
           "{\"cmd\":\"frobnicate\"}",          // Unknown command.
           "{\"operator\":\"a\"}",              // No cmd.
           "{\"cmd\":\"submit\"}",              // No addressing.
           "{\"cmd\":\"submit\",\"operator\":\"a\"}", // Half a pair.
           "{\"cmd\":\"query\",\"operator\":\"a\",\"instruction\":\"b\","
           "\"mode\":\"sideways\"}",            // Bad mode.
       }) {
    auto E = parseRequest(Bad);
    ASSERT_FALSE(bool(E)) << Bad;
    EXPECT_EQ(E.fault().Category, FaultCategory::Protocol) << Bad;
  }

  // Status/drain/shutdown need no addressing.
  EXPECT_TRUE(bool(parseRequest("{\"cmd\":\"status\"}")));
  EXPECT_TRUE(bool(parseRequest("{\"cmd\":\"drain\"}")));
  EXPECT_TRUE(bool(parseRequest("{\"cmd\":\"shutdown\"}")));
}

TEST(ProtocolTest, ResponsesAreFlatJsonLines) {
  obs::Payload P;
  P.add("job", uint64_t(7));
  std::string Ok = okResponse(P);
  EXPECT_EQ(Ok, "{\"ok\":true,\"job\":7}");
  std::string Bad = faultResponse(
      makeFault(FaultCategory::Protocol, "no \"cmd\""));
  auto Fields = obs::parseJsonObjectLine(Bad);
  ASSERT_TRUE(Fields);
  EXPECT_EQ((*Fields)["ok"], "false");
  EXPECT_EQ((*Fields)["category"], "protocol");
  EXPECT_EQ((*Fields)["error"], "no \"cmd\"");
}

TEST(ProtocolTest, MetricsAndWatchRequestsParse) {
  auto M = parseRequest("{\"cmd\":\"metrics\"}");
  ASSERT_TRUE(bool(M));
  EXPECT_EQ(M->C, Request::Cmd::Metrics);
  EXPECT_TRUE(M->Format.empty());

  auto Prom = parseRequest("{\"cmd\":\"metrics\",\"format\":\"prom\"}");
  ASSERT_TRUE(bool(Prom));
  EXPECT_EQ(Prom->Format, "prom");

  auto BadFormat = parseRequest("{\"cmd\":\"metrics\",\"format\":\"xml\"}");
  ASSERT_FALSE(bool(BadFormat));
  EXPECT_EQ(BadFormat.fault().Category, FaultCategory::Protocol);

  auto ByJob = parseRequest("{\"cmd\":\"watch\",\"job\":12}");
  ASSERT_TRUE(bool(ByJob));
  EXPECT_EQ(ByJob->C, Request::Cmd::Watch);
  EXPECT_EQ(ByJob->JobId, 12u);

  auto ByCase =
      parseRequest("{\"cmd\":\"watch\",\"case\":\"vax.movc3/pc2.copy\"}");
  ASSERT_TRUE(bool(ByCase));
  EXPECT_EQ(ByCase->CaseId, "vax.movc3/pc2.copy");
  EXPECT_EQ(ByCase->JobId, 0u);

  // A watch must address a job one way or the other.
  auto Bare = parseRequest("{\"cmd\":\"watch\"}");
  ASSERT_FALSE(bool(Bare));
  EXPECT_EQ(Bare.fault().Category, FaultCategory::Protocol);
}

//===----------------------------------------------------------------------===//
// Service (in-process: handle() is the whole protocol)
//===----------------------------------------------------------------------===//

/// Fast self-pairing: identical descriptions verify immediately, so
/// service tests exercise the full submit -> search -> store -> cache
/// path in milliseconds.
constexpr const char *kSelfSubmit =
    "{\"cmd\":\"submit\",\"operator\":\"pc2.copy\","
    "\"instruction\":\"pc2.copy\",\"wait\":true}";

ServiceOptions quickOptions(const std::string &StorePath) {
  ServiceOptions O;
  O.StorePath = StorePath;
  O.Workers = 2;
  O.Watchdog = false; // Timing-free tests.
  O.Limits.TimeBudgetMs = 30000;
  return O;
}

TEST(ServiceTest, SubmitSearchesThenCaches) {
  TempFile F("svc_cache.jsonl");
  auto S = Service::create(quickOptions(F.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;

  auto Cold = obs::parseJsonObjectLine((*S)->handle(kSelfSubmit));
  ASSERT_TRUE(Cold);
  EXPECT_EQ((*Cold)["ok"], "true");
  EXPECT_EQ((*Cold)["cached"], "false");
  EXPECT_EQ((*Cold)["outcome"], "verified");
  EXPECT_EQ((*Cold)["verified"], "true");

  auto Warm = obs::parseJsonObjectLine((*S)->handle(kSelfSubmit));
  ASSERT_TRUE(Warm);
  EXPECT_EQ((*Warm)["cached"], "true");
  EXPECT_EQ((*Warm)["outcome"], "verified");

  EXPECT_EQ((*S)->metrics().counter("server.cache.hit").value(), 1u);
  EXPECT_EQ((*S)->metrics().counter("server.cache.miss").value(), 1u);

  // query never searches: hit for the cached pairing, miss for a cold
  // one.
  auto Hit = obs::parseJsonObjectLine((*S)->handle(
      "{\"cmd\":\"query\",\"operator\":\"pc2.copy\","
      "\"instruction\":\"pc2.copy\"}"));
  ASSERT_TRUE(Hit);
  EXPECT_EQ((*Hit)["hit"], "true");
  auto Miss = obs::parseJsonObjectLine((*S)->handle(
      "{\"cmd\":\"query\",\"operator\":\"pc2.clear\","
      "\"instruction\":\"pc2.clear\"}"));
  ASSERT_TRUE(Miss);
  EXPECT_EQ((*Miss)["ok"], "true");
  EXPECT_EQ((*Miss)["hit"], "false");
  (*S)->stop();
}

TEST(ServiceTest, VerifiedVerdictsSurviveRestart) {
  TempFile F("svc_restart.jsonl");
  {
    auto S = Service::create(quickOptions(F.Path));
    ASSERT_TRUE(bool(S)) << S.fault().Message;
    auto Cold = obs::parseJsonObjectLine((*S)->handle(kSelfSubmit));
    ASSERT_TRUE(Cold);
    ASSERT_EQ((*Cold)["verified"], "true");
    (*S)->stop();
  }
  // A new service over the same store answers from cache without any
  // search (zero jobs run).
  auto S = Service::create(quickOptions(F.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;
  auto Warm = obs::parseJsonObjectLine((*S)->handle(kSelfSubmit));
  ASSERT_TRUE(Warm);
  EXPECT_EQ((*Warm)["cached"], "true");
  EXPECT_EQ((*Warm)["outcome"], "verified");
  auto Status = obs::parseJsonObjectLine((*S)->handle("{\"cmd\":\"status\"}"));
  ASSERT_TRUE(Status);
  EXPECT_EQ((*Status)["completed"], "0");
  (*S)->stop();
}

TEST(ServiceTest, NonVerifiedVerdictRespectsLimitsCoverage) {
  TempFile F("svc_limits.jsonl");
  // Seed the store with an exhausted verdict computed under tiny limits.
  {
    auto Key = pairingKey("pc2.copy", "vax.movc3", analysis::Mode::Base);
    ASSERT_TRUE(bool(Key));
    auto St = MemoStore::open(F.Path);
    ASSERT_TRUE(bool(St));
    MemoEntry E = sampleEntry(*Key, "vax.movc3/pc2.copy");
    E.Record.Outcome = search::CaseOutcome::Exhausted;
    E.Record.Found = E.Record.Verified = false;
    E.Limits.BeamWidth = 1;
    E.Limits.MaxDepth = 1;
    E.Limits.Widenings = 0;
    E.Limits.MaxNodes = 10;
    E.Limits.TimeBudgetMs = 1;
    ASSERT_TRUE(bool((*St)->put(E)));
  }
  // The service brings bigger budgets: the stale exhausted verdict must
  // NOT answer — the pairing deserves a fresh search.
  auto S = Service::create(quickOptions(F.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;
  auto R = obs::parseJsonObjectLine((*S)->handle(
      "{\"cmd\":\"submit\",\"operator\":\"pc2.copy\","
      "\"instruction\":\"vax.movc3\",\"wait\":true}"));
  ASSERT_TRUE(R);
  EXPECT_EQ((*R)["cached"], "false");
  EXPECT_EQ((*R)["outcome"], "verified"); // The real search succeeds.
  (*S)->stop();
}

TEST(ServiceTest, ExportWritesVerifiedEntriesAsARegistry) {
  TempFile F("svc_export.jsonl");
  TempFile Out("svc_export_registry.jsonl");
  // Seed one exhausted verdict: cache state, not a binding — export must
  // count it as skipped.
  {
    auto Key = pairingKey("rigel.index", "vax.locc", analysis::Mode::Base);
    ASSERT_TRUE(bool(Key));
    auto St = MemoStore::open(F.Path);
    ASSERT_TRUE(bool(St));
    MemoEntry E = sampleEntry(*Key, "vax.locc/rigel.index");
    E.OperatorId = "rigel.index";
    E.InstructionId = "vax.locc";
    E.Record.Outcome = search::CaseOutcome::Exhausted;
    E.Record.Found = E.Record.Verified = false;
    E.Binding.clear();
    ASSERT_TRUE(bool((*St)->put(E)));
  }
  auto S = Service::create(quickOptions(F.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;

  auto NoPath =
      obs::parseJsonObjectLine((*S)->handle("{\"cmd\":\"export\"}"));
  ASSERT_TRUE(NoPath);
  EXPECT_EQ((*NoPath)["ok"], "false");

  // Discover a real pairing, then export the store.
  auto Found = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"submit\",\"case\":\"vax.movc3/pc2.copy\","
                   "\"wait\":true}"));
  ASSERT_TRUE(Found);
  ASSERT_EQ((*Found)["verified"], "true");
  auto Exported = obs::parseJsonObjectLine((*S)->handle(
      "{\"cmd\":\"export\",\"path\":\"" + Out.Path + "\"}"));
  ASSERT_TRUE(Exported);
  EXPECT_EQ((*Exported)["ok"], "true");
  EXPECT_EQ((*Exported)["exported"], "1");
  EXPECT_EQ((*Exported)["skipped"], "1");
  (*S)->stop();

  // The exported file is a loadable binding registry whose entry carries
  // the machine/mnemonic/op-kind triple the binding compiler needs.
  auto Reg = registry::Registry::load(Out.Path);
  ASSERT_TRUE(bool(Reg)) << Reg.fault().Message;
  ASSERT_EQ(Reg->size(), 1u);
  const registry::RegistryEntry &E = *Reg->entries().front();
  EXPECT_EQ(E.AnalysisId, "vax.movc3/pc2.copy");
  EXPECT_EQ(E.Machine, "vax");
  EXPECT_EQ(E.Mnemonic, "movc3");
  EXPECT_EQ(E.Op, "BlockCopy");
  EXPECT_EQ(E.Source, "memo");
  EXPECT_FALSE(E.Constraints.empty());
  EXPECT_FALSE(E.Binding.empty());
  EXPECT_NE(E.FpOp, 0u);
  EXPECT_NE(E.FpInst, 0u);
}

TEST(ServiceTest, StatusDrainShutdownAndUnknownCase) {
  TempFile F("svc_misc.jsonl");
  auto S = Service::create(quickOptions(F.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;

  auto Bad = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"submit\",\"case\":\"no/such.case\"}"));
  ASSERT_TRUE(Bad);
  EXPECT_EQ((*Bad)["ok"], "false");
  EXPECT_EQ((*Bad)["category"], "protocol");

  auto Drain = obs::parseJsonObjectLine((*S)->handle("{\"cmd\":\"drain\"}"));
  ASSERT_TRUE(Drain);
  EXPECT_EQ((*Drain)["drained"], "true");

  EXPECT_FALSE((*S)->shutdownRequested());
  auto Down = obs::parseJsonObjectLine((*S)->handle("{\"cmd\":\"shutdown\"}"));
  ASSERT_TRUE(Down);
  EXPECT_EQ((*Down)["stopping"], "true");
  EXPECT_TRUE((*S)->shutdownRequested());
  (*S)->stop();
}

//===----------------------------------------------------------------------===//
// Live telemetry: the metrics verb and watch streaming
//===----------------------------------------------------------------------===//

TEST(ServiceTest, MetricsVerbServesLiveRegistry) {
  TempFile F("svc_metrics.jsonl");
  auto S = Service::create(quickOptions(F.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;
  ASSERT_TRUE(obs::parseJsonObjectLine((*S)->handle(kSelfSubmit)));

  // Default format: the full registry as one escaped JSON block.
  auto J = obs::parseJsonObjectLine((*S)->handle("{\"cmd\":\"metrics\"}"));
  ASSERT_TRUE(J);
  EXPECT_EQ((*J)["ok"], "true");
  EXPECT_EQ((*J)["format"], "json");
  const std::string &Body = (*J)["metrics"];
  EXPECT_NE(Body.find("\"counters\""), std::string::npos);
  EXPECT_NE(Body.find("\"histograms\""), std::string::npos);
  EXPECT_NE(Body.find("server.cache.miss"), std::string::npos);
  EXPECT_NE(Body.find("server.job_wall_ms"), std::string::npos);

  // Prometheus format: the body must survive the strict validator and
  // carry the core counters the obs-smoke CI job asserts on.
  auto Pm = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"metrics\",\"format\":\"prom\"}"));
  ASSERT_TRUE(Pm);
  EXPECT_EQ((*Pm)["format"], "prom");
  std::map<std::string, double> Samples;
  std::string Err;
  ASSERT_TRUE(obs::validateExposition((*Pm)["metrics"], Samples, &Err)) << Err;
  EXPECT_EQ(
      Samples.at("extra_server_cache_miss{name=\"server.cache.miss\"}"), 1.0);
  EXPECT_GE(
      Samples.at("extra_server_job_wall_ms_count{name=\"server.job_wall_ms\"}"),
      1.0);

  auto Bad = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"metrics\",\"format\":\"xml\"}"));
  ASSERT_TRUE(Bad);
  EXPECT_EQ((*Bad)["ok"], "false");
  EXPECT_EQ((*Bad)["category"], "protocol");
  (*S)->stop();
}

TEST(ServiceTest, WatchStreamsTicksUntilDone) {
  TempFile F("svc_watch.jsonl");
  auto S = Service::create(quickOptions(F.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;

  // A cold cross pairing submitted without wait: the job runs on a
  // worker while this thread watches it to completion.
  auto Sub = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"submit\",\"operator\":\"pc2.copy\","
                   "\"instruction\":\"vax.movc3\",\"wait\":false}"));
  ASSERT_TRUE(Sub);
  ASSERT_EQ((*Sub)["ok"], "true");
  std::string Job = (*Sub)["job"];
  ASSERT_FALSE(Job.empty());

  std::vector<std::string> TickLines;
  Service::PushFn Push = [&](const std::string &Line) {
    TickLines.push_back(Line);
    return true;
  };
  auto Fin = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"watch\",\"job\":" + Job + "}", &Push));
  ASSERT_TRUE(Fin);
  EXPECT_EQ((*Fin)["ok"], "true");
  EXPECT_EQ((*Fin)["done"], "true");
  EXPECT_EQ((*Fin)["case"], "vax.movc3/pc2.copy");
  EXPECT_EQ((*Fin)["outcome"], "verified");
  EXPECT_EQ((*Fin)["ticks"], std::to_string(TickLines.size()));

  // The immediate-first-tick guarantee: a watch on a live job always
  // streams at least one tick before the final line.
  ASSERT_GE(TickLines.size(), 1u);
  auto First = obs::parseJsonObjectLine(TickLines.front());
  ASSERT_TRUE(First);
  EXPECT_EQ((*First)["done"], "false");
  EXPECT_EQ((*First)["job"], Job);
  EXPECT_EQ((*First)["tick"], "1");
  EXPECT_TRUE(First->count("depth"));
  EXPECT_TRUE(First->count("expanded"));
  EXPECT_TRUE(First->count("expansions_per_sec"));

  obs::Metrics &M = (*S)->metrics();
  EXPECT_EQ(M.counter("server.progress.watchers").value(), 1u);
  EXPECT_EQ(M.counter("server.progress.ticks").value(), TickLines.size());
  EXPECT_EQ(M.counter("server.progress.disconnects").value(), 0u);
  (*S)->stop();
}

TEST(ServiceTest, WatchDisconnectMidStreamLeavesServiceHealthy) {
  TempFile F("svc_watch_gone.jsonl");
  auto S = Service::create(quickOptions(F.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;

  auto Sub = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"submit\",\"operator\":\"pc2.copy\","
                   "\"instruction\":\"vax.movc3\",\"wait\":false}"));
  ASSERT_TRUE(Sub);
  std::string Job = (*Sub)["job"];

  // The client vanishes on the very first push. The handler must note
  // the disconnect, stop streaming, and still return the final line.
  unsigned Pushes = 0;
  Service::PushFn Gone = [&](const std::string &) {
    ++Pushes;
    return false;
  };
  auto Fin = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"watch\",\"job\":" + Job + "}", &Gone));
  ASSERT_TRUE(Fin);
  EXPECT_EQ((*Fin)["ok"], "true");
  EXPECT_EQ(Pushes, 1u);
  EXPECT_EQ((*Fin)["ticks"], "1");

  obs::Metrics &M = (*S)->metrics();
  EXPECT_EQ(M.counter("server.progress.disconnects").value(), 1u);
  EXPECT_EQ(M.counter("server.progress.ticks").value(), 0u);

  // The service is still healthy: status answers, and waiting on the
  // same pairing dedups onto the live job and completes it.
  auto St = obs::parseJsonObjectLine((*S)->handle("{\"cmd\":\"status\"}"));
  ASSERT_TRUE(St);
  EXPECT_EQ((*St)["ok"], "true");
  auto Done = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"submit\",\"operator\":\"pc2.copy\","
                   "\"instruction\":\"vax.movc3\",\"wait\":true}"));
  ASSERT_TRUE(Done);
  EXPECT_EQ((*Done)["ok"], "true");
  EXPECT_EQ((*Done)["verified"], "true");

  // A push-less transport degrades to one final snapshot; the job is
  // done, so the record rides along and no ticks are attempted.
  auto Snap = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"watch\",\"job\":" + Job + "}"));
  ASSERT_TRUE(Snap);
  EXPECT_EQ((*Snap)["ok"], "true");
  EXPECT_EQ((*Snap)["done"], "true");
  EXPECT_EQ((*Snap)["ticks"], "0");
  EXPECT_EQ((*Snap)["outcome"], "verified");

  // Completed pairings are answered by query, not watch.
  auto NoLive = obs::parseJsonObjectLine((*S)->handle(
      "{\"cmd\":\"watch\",\"case\":\"vax.movc3/pc2.copy\"}"));
  ASSERT_TRUE(NoLive);
  EXPECT_EQ((*NoLive)["ok"], "false");
  EXPECT_EQ((*NoLive)["category"], "protocol");
  EXPECT_NE((*NoLive)["error"].find("no live job"), std::string::npos);

  auto Unknown = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"watch\",\"job\":424242}"));
  ASSERT_TRUE(Unknown);
  EXPECT_EQ((*Unknown)["ok"], "false");
  EXPECT_NE((*Unknown)["error"].find("unknown job 424242"),
            std::string::npos);
  (*S)->stop();
}

//===----------------------------------------------------------------------===//
// Concurrency: many clients, injected store faults, invariant outcomes
//===----------------------------------------------------------------------===//

/// Runs \p Clients threads of mixed submits/queries against a fresh
/// service (store-site injection armed) and returns the sorted compacted
/// store contents.
std::string hammerService(unsigned Clients, unsigned Workers) {
  TempFile F("svc_hammer_" + std::to_string(Clients) + "_" +
             std::to_string(Workers) + ".jsonl");
  FaultInjector::instance().reset();

  const char *Pairings[] = {"pc2.copy", "pc2.clear", "clu.search",
                            "pl1.move"};
  {
    ServiceOptions O = quickOptions(F.Path);
    O.Workers = Workers;
    auto S = Service::create(std::move(O));
    EXPECT_TRUE(bool(S));
    if (!S)
      return "";
    // Armed only after the store opened: the open path's scope-free
    // injection counter would otherwise differ between the two hammer
    // runs. Every job's append then faults deterministically by case id
    // (service puts run under FaultScope("<case>#store")).
    EXPECT_TRUE(FaultInjector::instance().configure("store=0.5", nullptr));
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < Clients; ++T)
      Threads.emplace_back([&, T] {
        for (unsigned I = 0; I < 8; ++I) {
          const char *Id = Pairings[(T + I) % 4];
          std::string Submit = "{\"cmd\":\"submit\",\"operator\":\"" +
                               std::string(Id) + "\",\"instruction\":\"" +
                               Id + "\",\"wait\":true}";
          auto R = obs::parseJsonObjectLine((*S)->handle(Submit));
          EXPECT_TRUE(R);
          std::string Query = "{\"cmd\":\"query\",\"operator\":\"" +
                              std::string(Id) + "\",\"instruction\":\"" +
                              Id + "\"}";
          (*S)->handle(Query);
        }
      });
    for (std::thread &T : Threads)
      T.join();
    (*S)->handle("{\"cmd\":\"drain\"}");
    (*S)->stop();
  }
  FaultInjector::instance().reset();

  // Reopen (no injection) and compact to the canonical one-line-per-key
  // form; strip wall_ms, the only schedule-dependent field.
  auto S = MemoStore::open(F.Path);
  EXPECT_TRUE(bool(S));
  if (!S)
    return "";
  std::string Out;
  for (const MemoEntry &E : (*S)->entries()) {
    MemoEntry C = E;
    C.Record.WallMs = 0;
    Out += C.toJsonLine() + "\n";
  }
  return Out;
}

TEST(ServiceTest, ConcurrentClientsWithStoreInjectionAreInvariant) {
  InjectorReset Reset;
  // Four self-pairings hammered by 4 and then 8 client threads over
  // different worker-pool widths: the surviving store contents must be
  // identical — outcomes depend on (seed, case), never on scheduling.
  std::string A = hammerService(/*Clients=*/4, /*Workers=*/2);
  std::string B = hammerService(/*Clients=*/8, /*Workers=*/4);
  // Whether a given case's append survived its injected fault is a pure
  // function of (seed, case id) — so the durable store contents are
  // byte-identical across client and worker counts, and at least one of
  // the four cases persisted (rate 0.5 cannot kill all four under the
  // fixed default seed, or the test would be vacuous).
  ASSERT_FALSE(A.empty());
  EXPECT_EQ(A, B);
  EXPECT_GE(std::count(A.begin(), A.end(), '\n'), 1);
}

//===----------------------------------------------------------------------===//
// Socket transport
//===----------------------------------------------------------------------===//

TEST(SocketTest, ClientServerRoundTrip) {
  TempFile Store("sock_store.jsonl");
  std::string Sock = ::testing::TempDir() + "extra_svc_test.sock";
  std::remove(Sock.c_str());

  auto S = Service::create(quickOptions(Store.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;
  auto Fd = listenUnix(Sock);
  ASSERT_TRUE(bool(Fd)) << Fd.fault().Message;
  std::thread Server([&] { serveLoop(*Fd, Sock, **S); });

  {
    auto C = Client::connect(Sock);
    ASSERT_TRUE(bool(C)) << C.fault().Message;

    auto Status = (*C)->request("{\"cmd\":\"status\"}");
    ASSERT_TRUE(bool(Status));
    EXPECT_TRUE(Status->ok());
    EXPECT_EQ(Status->get("entries"), "0");

    auto Cold = (*C)->request(kSelfSubmit);
    ASSERT_TRUE(bool(Cold));
    EXPECT_TRUE(Cold->ok());
    EXPECT_EQ(Cold->get("outcome"), "verified");
    EXPECT_EQ(Cold->get("cached"), "false");

    // A second connection sees the warm cache.
    auto C2 = Client::connect(Sock);
    ASSERT_TRUE(bool(C2));
    auto Warm = (*C2)->request(kSelfSubmit);
    ASSERT_TRUE(bool(Warm));
    EXPECT_EQ(Warm->get("cached"), "true");

    auto Malformed = (*C)->request("this is not json");
    ASSERT_TRUE(bool(Malformed));
    EXPECT_FALSE(Malformed->ok());
    EXPECT_EQ(Malformed->get("category"), "protocol");

    auto Down = (*C)->request("{\"cmd\":\"shutdown\"}");
    ASSERT_TRUE(bool(Down));
    EXPECT_TRUE(Down->ok());
  }

  Server.join();
  (*S)->stop();
  // The socket file is unlinked by the serve loop.
  EXPECT_NE(::access(Sock.c_str(), F_OK), 0);
}

TEST(SocketTest, StaleSocketFileIsReplaced) {
  std::string Sock = ::testing::TempDir() + "extra_stale_test.sock";
  std::remove(Sock.c_str());
  {
    // A crashed server's leftover: a bound socket nobody listens on
    // is simulated by binding and closing without accepting; the file
    // stays behind.
    auto Fd = listenUnix(Sock);
    ASSERT_TRUE(bool(Fd));
    ::close(*Fd);
  }
  ASSERT_EQ(::access(Sock.c_str(), F_OK), 0); // File left behind.
  auto Fd = listenUnix(Sock); // Probe detects no listener, rebinds.
  ASSERT_TRUE(bool(Fd)) << Fd.fault().Message;

  // A live listener is NOT displaced.
  auto Second = listenUnix(Sock);
  ASSERT_FALSE(bool(Second));
  EXPECT_EQ(Second.fault().Category, FaultCategory::Transport);
  ::close(*Fd);
  std::remove(Sock.c_str());
}

//===----------------------------------------------------------------------===//
// Endpoint grammar
//===----------------------------------------------------------------------===//

TEST(EndpointTest, ParsesBothTransportSpellings) {
  auto Tcp = parseEndpoint("127.0.0.1:9000");
  ASSERT_TRUE(bool(Tcp));
  EXPECT_TRUE(Tcp->Tcp);
  EXPECT_EQ(Tcp->Host, "127.0.0.1");
  EXPECT_EQ(Tcp->Port, 9000);
  EXPECT_EQ(Tcp->str(), "127.0.0.1:9000");

  auto Forced = parseEndpoint("tcp:localhost:80");
  ASSERT_TRUE(bool(Forced));
  EXPECT_TRUE(Forced->Tcp);
  EXPECT_EQ(Forced->Host, "localhost");
  EXPECT_EQ(Forced->Port, 80);

  auto Path = parseEndpoint("/tmp/extra.sock");
  ASSERT_TRUE(bool(Path));
  EXPECT_FALSE(Path->Tcp);
  EXPECT_EQ(Path->Path, "/tmp/extra.sock");

  // unix: forces the path reading even when the spec looks like
  // host:port; a bare spec with a non-numeric port is a path too.
  auto ForcedUnix = parseEndpoint("unix:./svc:1234");
  ASSERT_TRUE(bool(ForcedUnix));
  EXPECT_FALSE(ForcedUnix->Tcp);
  EXPECT_EQ(ForcedUnix->Path, "./svc:1234");
  auto OddPath = parseEndpoint("/tmp/odd:name");
  ASSERT_TRUE(bool(OddPath));
  EXPECT_FALSE(OddPath->Tcp);

  auto BadPort = parseEndpoint("tcp:localhost:notaport");
  ASSERT_FALSE(bool(BadPort));
  EXPECT_EQ(BadPort.fault().Category, FaultCategory::Protocol);
  auto Huge = parseEndpoint("tcp:localhost:99999");
  ASSERT_FALSE(bool(Huge));
  auto Empty = parseEndpoint("");
  ASSERT_FALSE(bool(Empty));
}

//===----------------------------------------------------------------------===//
// Admission control (queue-level: deterministic, no workers)
//===----------------------------------------------------------------------===//

TEST(WorkQueueTest, BacklogBoundRejectsNewWorkButNeverDedup) {
  WorkQueue Q(1, /*MaxQueued=*/1);
  JobTicket A = Q.submit(queueCase("a"), "ka");
  EXPECT_FALSE(A.Rejected);
  JobTicket B = Q.submit(queueCase("b"), "kb");
  EXPECT_TRUE(B.Rejected);
  EXPECT_EQ(B.Id, 0u);
  // Joining live work is free — backpressure gates cost, not answers.
  JobTicket A2 = Q.submit(queueCase("a"), "ka");
  EXPECT_TRUE(A2.Deduped);
  EXPECT_FALSE(A2.Rejected);
  // The bound counts the backlog, not running work: claiming the job
  // frees the slot.
  auto J = Q.pop();
  ASSERT_TRUE(J);
  JobTicket C = Q.submit(queueCase("b"), "kb");
  EXPECT_FALSE(C.Rejected);
  search::CheckpointRecord R;
  R.Case = "a";
  Q.complete(J->Id, R);
  Q.close();
}

TEST(WorkQueueTest, DrainStopsAdmissionAndWaitIdleForTimesOut) {
  WorkQueue Q(2);
  JobTicket A = Q.submit(queueCase("a"), "ka");
  ASSERT_FALSE(A.Rejected);
  EXPECT_FALSE(Q.draining());
  Q.beginDrain();
  EXPECT_TRUE(Q.draining());
  EXPECT_TRUE(Q.submit(queueCase("b"), "kb").Rejected);
  EXPECT_TRUE(Q.submit(queueCase("a"), "ka").Deduped);
  // Nobody pops, so the deadline elapses with work still queued.
  EXPECT_FALSE(Q.waitIdleFor(50));
  auto J = Q.pop();
  ASSERT_TRUE(J);
  EXPECT_FALSE(Q.waitIdleFor(50)); // Still running.
  search::CheckpointRecord R;
  R.Case = "a";
  Q.complete(J->Id, R);
  EXPECT_TRUE(Q.waitIdleFor(5000));
  Q.close();
}

//===----------------------------------------------------------------------===//
// Protocol edge cases: overloaded replies, rid echo and bounds
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, OverloadedResponseCarriesRetryHint) {
  auto F = obs::parseJsonObjectLine(overloadedResponse("backlog", 250));
  ASSERT_TRUE(F);
  EXPECT_EQ((*F)["ok"], "false");
  EXPECT_EQ((*F)["overloaded"], "true");
  EXPECT_EQ((*F)["retry_after_ms"], "250");
  EXPECT_NE((*F)["error"].find("backlog"), std::string::npos);
}

TEST(ProtocolTest, WithRidSplicesIntoObjectLinesOnly) {
  auto Tagged = obs::parseJsonObjectLine(withRid("{\"ok\":true}", "r-1"));
  ASSERT_TRUE(Tagged);
  EXPECT_EQ((*Tagged)["ok"], "true");
  EXPECT_EQ((*Tagged)["rid"], "r-1");
  // Nothing to splice into: non-object lines pass through untouched
  // (the client then accepts the first parsed reply instead).
  EXPECT_EQ(withRid("garbage", "r-1"), "garbage");
  EXPECT_EQ(withRid("", "r-1"), "");
  EXPECT_EQ(withRid("{\"ok\":true}", ""), "{\"ok\":true}");
}

TEST(ProtocolTest, RidParsesAndIsBounded) {
  auto R = parseRequest("{\"cmd\":\"status\",\"rid\":\"c1-42\"}");
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->Rid, "c1-42");
  // A rid over the 64-byte cap is refused outright — the dedup window
  // must not be growable by hostile key sizes.
  std::string Long(65, 'x');
  auto Bad = parseRequest("{\"cmd\":\"status\",\"rid\":\"" + Long + "\"}");
  ASSERT_FALSE(bool(Bad));
  EXPECT_EQ(Bad.fault().Category, FaultCategory::Protocol);
  // deadline_ms rides on drain.
  auto D = parseRequest("{\"cmd\":\"drain\",\"deadline_ms\":1500}");
  ASSERT_TRUE(bool(D));
  EXPECT_EQ(D->DeadlineMs, 1500);
}

//===----------------------------------------------------------------------===//
// Idempotent resubmission (the rid dedup window)
//===----------------------------------------------------------------------===//

TEST(ServiceTest, RidCoalescesRetriedSubmits) {
  TempFile F("svc_rid.jsonl");
  auto S = Service::create(quickOptions(F.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;
  const char *Submit =
      "{\"cmd\":\"submit\",\"operator\":\"pc2.copy\","
      "\"instruction\":\"pc2.copy\",\"wait\":true,\"rid\":\"r-alpha\"}";

  auto First = obs::parseJsonObjectLine((*S)->handle(Submit));
  ASSERT_TRUE(First);
  EXPECT_EQ((*First)["ok"], "true");
  EXPECT_EQ((*First)["verified"], "true");
  EXPECT_EQ((*First)["rid"], "r-alpha"); // Every reply echoes the rid.

  // The retry of a lost response: same rid, same answer, no second
  // execution.
  auto Again = obs::parseJsonObjectLine((*S)->handle(Submit));
  ASSERT_TRUE(Again);
  EXPECT_EQ((*Again)["ok"], "true");
  EXPECT_EQ((*Again)["verified"], "true");

  obs::Metrics &M = (*S)->metrics();
  EXPECT_EQ(M.counter("server.admission.rid_dedup").value(), 1u);
  EXPECT_EQ(M.counter("server.admission.enqueued").value(), 1u);
  auto St = obs::parseJsonObjectLine((*S)->handle("{\"cmd\":\"status\"}"));
  ASSERT_TRUE(St);
  EXPECT_EQ((*St)["completed"], "1");

  // A *different* rid is a fresh request for the same pairing: the memo
  // cache answers it; the job still ran exactly once.
  auto Fresh = obs::parseJsonObjectLine((*S)->handle(
      "{\"cmd\":\"submit\",\"operator\":\"pc2.copy\","
      "\"instruction\":\"pc2.copy\",\"wait\":true,\"rid\":\"r-beta\"}"));
  ASSERT_TRUE(Fresh);
  EXPECT_EQ((*Fresh)["cached"], "true");
  EXPECT_EQ(M.counter("server.admission.rid_dedup").value(), 1u);
  (*S)->stop();
}

TEST(ServiceTest, RidWindowEvictsFifoAndCacheBacksItUp) {
  TempFile F("svc_rid_window.jsonl");
  ServiceOptions O = quickOptions(F.Path);
  O.RidWindowSize = 2;
  auto S = Service::create(std::move(O));
  ASSERT_TRUE(bool(S)) << S.fault().Message;
  auto SubmitWith = [&](const char *Id, const char *Rid) {
    return obs::parseJsonObjectLine((*S)->handle(
        std::string("{\"cmd\":\"submit\",\"operator\":\"") + Id +
        "\",\"instruction\":\"" + Id + "\",\"wait\":true,\"rid\":\"" + Rid +
        "\"}"));
  };
  ASSERT_TRUE(SubmitWith("pc2.copy", "w-1"));
  ASSERT_TRUE(SubmitWith("pc2.clear", "w-2"));
  ASSERT_TRUE(SubmitWith("clu.search", "w-3")); // Evicts w-1.

  obs::Metrics &M = (*S)->metrics();
  EXPECT_EQ(M.counter("server.admission.rid_evict").value(), 1u);

  // The window forgot w-1, but at-most-once degrades safely: the memo
  // cache answers the retry without a second execution.
  auto Old = SubmitWith("pc2.copy", "w-1");
  ASSERT_TRUE(Old);
  EXPECT_EQ((*Old)["cached"], "true");
  EXPECT_EQ(M.counter("server.admission.rid_dedup").value(), 0u);

  // w-3 is still within the window: coalesced.
  auto Recent = SubmitWith("clu.search", "w-3");
  ASSERT_TRUE(Recent);
  EXPECT_EQ((*Recent)["ok"], "true");
  EXPECT_EQ(M.counter("server.admission.rid_dedup").value(), 1u);
  EXPECT_EQ(M.counter("server.admission.enqueued").value(), 3u);
  (*S)->stop();
}

//===----------------------------------------------------------------------===//
// Supervision probes and graceful drain
//===----------------------------------------------------------------------===//

TEST(ServiceTest, HealthAndReadyProbesTrackDrain) {
  TempFile F("svc_probes.jsonl");
  auto S = Service::create(quickOptions(F.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;

  auto H = obs::parseJsonObjectLine((*S)->handle("{\"cmd\":\"health\"}"));
  ASSERT_TRUE(H);
  EXPECT_EQ((*H)["ok"], "true");
  EXPECT_EQ((*H)["healthy"], "true");
  EXPECT_TRUE(H->count("uptime_ms"));
  EXPECT_EQ((*H)["workers"], "2");

  auto Rd = obs::parseJsonObjectLine((*S)->handle("{\"cmd\":\"ready\"}"));
  ASSERT_TRUE(Rd);
  EXPECT_EQ((*Rd)["ready"], "true");

  // Graceful drain on an idle service completes immediately and asks
  // the owner loop to stop.
  EXPECT_FALSE((*S)->shutdownRequested());
  auto D = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"drain\",\"deadline_ms\":5000}"));
  ASSERT_TRUE(D);
  EXPECT_EQ((*D)["drained"], "true");
  EXPECT_EQ((*D)["cancelled"], "0");
  EXPECT_EQ((*D)["stopping"], "true");
  EXPECT_TRUE((*S)->shutdownRequested());

  // Readiness flips; liveness does not — a draining server is healthy,
  // just not accepting, which is exactly what a rolling restart needs.
  auto Rd2 = obs::parseJsonObjectLine((*S)->handle("{\"cmd\":\"ready\"}"));
  ASSERT_TRUE(Rd2);
  EXPECT_EQ((*Rd2)["ready"], "false");
  EXPECT_FALSE((*Rd2)["reason"].empty());
  auto H2 = obs::parseJsonObjectLine((*S)->handle("{\"cmd\":\"health\"}"));
  ASSERT_TRUE(H2);
  EXPECT_EQ((*H2)["healthy"], "true");

  // New work is refused once the drain has run its course.
  auto Sub = obs::parseJsonObjectLine((*S)->handle(kSelfSubmit));
  ASSERT_TRUE(Sub);
  EXPECT_EQ((*Sub)["ok"], "false");
  (*S)->stop();
}

TEST(ServiceTest, DrainDeadlineStopsEvenWithWorkInFlight) {
  TempFile F("svc_drain_deadline.jsonl");
  auto S = Service::create(quickOptions(F.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;

  // A live cross-pairing job, then a drain whose deadline it may or may
  // not beat: either way the service must come down cleanly — straggler
  // cancellation included — never hang.
  auto Sub = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"submit\",\"operator\":\"pc2.copy\","
                   "\"instruction\":\"vax.movc3\",\"wait\":false}"));
  ASSERT_TRUE(Sub);
  ASSERT_EQ((*Sub)["ok"], "true");

  auto D = obs::parseJsonObjectLine(
      (*S)->handle("{\"cmd\":\"drain\",\"deadline_ms\":1}"));
  ASSERT_TRUE(D);
  EXPECT_EQ((*D)["stopping"], "true");
  EXPECT_TRUE(D->count("drained"));
  EXPECT_TRUE(D->count("cancelled"));
  EXPECT_TRUE((*S)->shutdownRequested());
  (*S)->stop(); // Joins workers; a hang here is the test failure.
}

//===----------------------------------------------------------------------===//
// Socket transport: TCP, peer protection, raw-wire edge cases
//===----------------------------------------------------------------------===//

TEST(SocketTest, TcpRoundTripOnEphemeralPort) {
  TempFile Store("tcp_store.jsonl");
  auto S = Service::create(quickOptions(Store.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;
  auto Fd = listenTcp("127.0.0.1", 0);
  ASSERT_TRUE(bool(Fd)) << Fd.fault().Message;
  uint16_t Port = localPort(*Fd);
  ASSERT_NE(Port, 0);
  std::thread Server(
      [&] { serveLoop({Listener{*Fd, ""}}, **S, ServeOptions()); });

  {
    auto C = Client::connect("127.0.0.1:" + std::to_string(Port));
    ASSERT_TRUE(bool(C)) << C.fault().Message;
    EXPECT_TRUE((*C)->endpoint().Tcp);
    auto Cold = (*C)->request(kSelfSubmit);
    ASSERT_TRUE(bool(Cold));
    EXPECT_EQ(Cold->get("outcome"), "verified");
    EXPECT_EQ(Cold->get("cached"), "false");
    auto Warm = (*C)->request(kSelfSubmit);
    ASSERT_TRUE(bool(Warm));
    EXPECT_EQ(Warm->get("cached"), "true");
    auto Down = (*C)->request("{\"cmd\":\"shutdown\"}");
    ASSERT_TRUE(bool(Down));
  }
  Server.join();
  (*S)->stop();
}

TEST(SocketTest, BlankLinesUnknownVerbsAndOversizedLinesOnTheWire) {
  TempFile Store("edge_store.jsonl");
  std::string Sock = ::testing::TempDir() + "extra_edge_test.sock";
  std::remove(Sock.c_str());
  auto S = Service::create(quickOptions(Store.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;
  auto Fd = listenUnix(Sock);
  ASSERT_TRUE(bool(Fd)) << Fd.fault().Message;
  ServeOptions O;
  O.MaxLineBytes = 512;
  std::thread Server([&] { serveLoop({Listener{*Fd, Sock}}, **S, O); });

  {
    auto Raw = connectUnix(Sock);
    ASSERT_TRUE(bool(Raw));
    std::string Buf;
    // Blank and whitespace-only lines are keep-alive noise: no reply,
    // no eviction — the next real request is answered in order.
    ASSERT_TRUE(writeLine(*Raw, ""));
    ASSERT_TRUE(writeLine(*Raw, "  \t "));
    ASSERT_TRUE(writeLine(*Raw, "{\"cmd\":\"status\"}"));
    auto St = readLine(*Raw, Buf);
    ASSERT_TRUE(St);
    auto StF = obs::parseJsonObjectLine(*St);
    ASSERT_TRUE(StF);
    EXPECT_EQ((*StF)["ok"], "true");

    // An unknown verb earns a typed protocol fault, not a hangup.
    ASSERT_TRUE(writeLine(*Raw, "{\"cmd\":\"frobnicate\"}"));
    auto Bad = readLine(*Raw, Buf);
    ASSERT_TRUE(Bad);
    auto BadF = obs::parseJsonObjectLine(*Bad);
    ASSERT_TRUE(BadF);
    EXPECT_EQ((*BadF)["ok"], "false");
    EXPECT_EQ((*BadF)["category"], "protocol");

    // An oversized line earns a typed transport fault and eviction.
    ASSERT_TRUE(writeLine(*Raw, std::string(600, 'x')));
    auto Evict = readLine(*Raw, Buf);
    ASSERT_TRUE(Evict);
    auto EvF = obs::parseJsonObjectLine(*Evict);
    ASSERT_TRUE(EvF);
    EXPECT_EQ((*EvF)["ok"], "false");
    EXPECT_EQ((*EvF)["category"], "transport");
    EXPECT_NE((*EvF)["error"].find("512"), std::string::npos);
    EXPECT_FALSE(readLine(*Raw, Buf)); // Connection closed behind it.
    ::close(*Raw);
  }

  obs::Metrics &M = (*S)->metrics();
  EXPECT_EQ(M.counter("server.net.oversized_line").value(), 1u);
  EXPECT_EQ(M.counter("server.net.evicted").value(), 1u);

  // The eviction disturbed nobody else: a fresh connection is served.
  {
    auto C = Client::connect(Sock);
    ASSERT_TRUE(bool(C));
    auto St = (*C)->request("{\"cmd\":\"status\"}");
    ASSERT_TRUE(bool(St));
    EXPECT_TRUE(St->ok());
    ASSERT_TRUE(bool((*C)->request("{\"cmd\":\"shutdown\"}")));
  }
  Server.join();
  (*S)->stop();
}

namespace reap {
/// Live thread count of this process, from /proc/self/task.
size_t taskCount() {
  DIR *D = ::opendir("/proc/self/task");
  if (!D)
    return 0;
  size_t N = 0;
  while (struct dirent *E = ::readdir(D))
    if (E->d_name[0] != '.')
      ++N;
  ::closedir(D);
  return N;
}
} // namespace reap

TEST(SocketTest, FinishedConnectionThreadsAreReapedWhileServing) {
  TempFile Store("reap_store.jsonl");
  std::string Sock = ::testing::TempDir() + "extra_reap_test.sock";
  std::remove(Sock.c_str());
  auto S = Service::create(quickOptions(Store.Path));
  ASSERT_TRUE(bool(S)) << S.fault().Message;
  auto Fd = listenUnix(Sock);
  ASSERT_TRUE(bool(Fd)) << Fd.fault().Message;
  std::thread Server([&] { serveLoop(*Fd, Sock, **S); });

  size_t Before = reap::taskCount();
  ASSERT_GT(Before, 0u);
  for (int I = 0; I < 4; ++I) {
    auto Raw = connectUnix(Sock);
    ASSERT_TRUE(bool(Raw));
    std::string Buf;
    ASSERT_TRUE(writeLine(*Raw, "{\"cmd\":\"status\"}"));
    ASSERT_TRUE(readLine(*Raw, Buf));
    ::close(*Raw);
  }
  // The serve loop must join those four handler threads while still
  // serving — not hoard them until shutdown.
  bool Reaped = false;
  for (int Tick = 0; Tick < 50 && !Reaped; ++Tick) {
    Reaped = reap::taskCount() <= Before;
    if (!Reaped)
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(Reaped) << "handler threads still alive: "
                      << reap::taskCount() << " vs baseline " << Before;

  auto C = Client::connect(Sock);
  ASSERT_TRUE(bool(C));
  ASSERT_TRUE(bool((*C)->request("{\"cmd\":\"shutdown\"}")));
  Server.join();
  (*S)->stop();
}

namespace lowlevel {
std::atomic<unsigned> Usr1Count{0};
void onUsr1(int) { Usr1Count.fetch_add(1, std::memory_order_relaxed); }
} // namespace lowlevel

TEST(SocketTest, PartialWritesAndSignalsDoNotCorruptLines) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  // A tiny send buffer forces the writer through many short writes.
  int SndBuf = 2048;
  ::setsockopt(Fds[0], SOL_SOCKET, SO_SNDBUF, &SndBuf, sizeof(SndBuf));
  ASSERT_TRUE(setNonBlocking(Fds[0]));
  ASSERT_TRUE(setNonBlocking(Fds[1]));

  // SA_RESTART deliberately off: every poll/read/write must survive a
  // raw EINTR, not rely on the kernel restarting it.
  struct sigaction SA = {};
  struct sigaction Old = {};
  SA.sa_handler = lowlevel::onUsr1;
  ASSERT_EQ(::sigaction(SIGUSR1, &SA, &Old), 0);

  std::string Big(256 * 1024, 'x');
  Big += "END";
  std::string Got1, Got2;
  std::thread Reader([&] {
    std::string Buf;
    LineIo A = readLineDeadline(Fds[1], Buf, 10000, 10000, 1 << 20);
    if (A.St == IoStatus::Ok)
      Got1 = std::move(A.Line);
    LineIo B = readLineDeadline(Fds[1], Buf, 10000, 10000, 1 << 20);
    if (B.St == IoStatus::Ok)
      Got2 = std::move(B.Line);
  });
  std::atomic<bool> Done{false};
  pthread_t Writer = ::pthread_self();
  std::thread Pepper([&] {
    while (!Done.load()) {
      ::pthread_kill(Writer, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  EXPECT_EQ(writeLineDeadline(Fds[0], Big, 10000), IoStatus::Ok);
  // The blocking compatibility wrapper takes the same gauntlet.
  EXPECT_TRUE(writeLine(Fds[0], "{\"ok\":true}"));
  Done.store(true);
  Pepper.join();
  Reader.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &Old, nullptr), 0);

  EXPECT_GT(lowlevel::Usr1Count.load(), 0u);
  EXPECT_EQ(Got1.size(), Big.size());
  EXPECT_EQ(Got1, Big); // Byte-exact through all the short writes.
  EXPECT_EQ(Got2, "{\"ok\":true}");
  ::close(Fds[0]);
  ::close(Fds[1]);
}

//===----------------------------------------------------------------------===//
// Store lock liveness
//===----------------------------------------------------------------------===//

TEST(MemoStoreTest, StaleLockFromDeadProcessIsTakenOver) {
  TempFile F("lock_dead.jsonl");
  // A pid guaranteed dead: fork a child that exits at once and reap it.
  pid_t Child = ::fork();
  ASSERT_GE(Child, 0);
  if (Child == 0)
    ::_exit(0);
  int St = 0;
  ASSERT_EQ(::waitpid(Child, &St, 0), Child);
  {
    std::ofstream L(F.Path + ".lock");
    L << Child << "\n";
  }
  auto S = MemoStore::open(F.Path);
  ASSERT_TRUE(bool(S)) << S.fault().Message; // Takeover, not a hang.
  ASSERT_TRUE(bool((*S)->put(sampleEntry("0x1", "vax.movc3/pc2.copy"))));
}

TEST(MemoStoreTest, LiveLockIsRespectedAgedGarbageLockIsNot) {
  TempFile F("lock_live.jsonl");
  // Our own pid is as live as it gets: the lock holds.
  {
    std::ofstream L(F.Path + ".lock");
    L << ::getpid() << "\n";
  }
  auto Held = MemoStore::open(F.Path);
  ASSERT_FALSE(bool(Held));
  EXPECT_NE(Held.fault().Message.find("live"), std::string::npos);
  std::remove((F.Path + ".lock").c_str());

  // A lock with no readable pid falls back to age: stamp it old and it
  // is stale.
  {
    std::ofstream L(F.Path + ".lock");
    L << "not-a-pid\n";
  }
  struct timeval Old[2];
  ::gettimeofday(&Old[0], nullptr);
  Old[0].tv_sec -= 3600;
  Old[1] = Old[0];
  ASSERT_EQ(::utimes((F.Path + ".lock").c_str(), Old), 0);
  auto S = MemoStore::open(F.Path);
  ASSERT_TRUE(bool(S)) << S.fault().Message;
}

} // namespace
