//===- figures_test.cpp - Golden checks against the paper's figures ------===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The regenerated Figure 4 (simplified scasb) and Figure 5 (augmented
/// scasb) are matched structurally against transcriptions of the paper's
/// own figures. This is the strongest fidelity check in the suite: the
/// engine's output must be the *same description* the paper prints,
/// modulo names.
///
//===----------------------------------------------------------------------===//

#include "analysis/Derivations.h"
#include "descriptions/Descriptions.h"
#include "isdl/Equiv.h"
#include "isdl/Parser.h"
#include "isdl/Printer.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::analysis;

namespace {

/// Figure 4 as printed in the paper (simplified scasb): flags rf/rfz/df
/// gone, fetch fixed low-to-high, exit condition reduced to zf.
constexpr const char *PaperFigure4 = R"(
scasb.instruction := begin
  ** SOURCE.ACCESS **
    di<15:0>,   ! source string address
    cx<15:0>,   ! source string length
    fetch()<7:0> := begin   ! fetch source character
      fetch <- Mb[di];
      di <- di + 1;   ! low-to-high addresses
    end
  ** STATE **
    zf<>,       ! last compare zero flag
    al<7:0>     ! character sought
  ** STRING.PROCESS **
    scasb.execute := begin
      input (zf, di, cx, al);
      repeat
        exit_when (cx = 0);
        cx <- cx - 1;
        if (al - fetch()) = 0 then
          zf <- 1;
        else
          zf <- 0;
        end_if;
        ! exit on condition
        exit_when (zf);
      end_repeat;
      output (zf, di, cx);
    end
end
)";

/// Figure 5 as printed in the paper (augmented scasb), with the zf
/// zeroing that the figure's listing omits but §4.1's prose requires
/// ("code must be added to the beginning of scasb which initially sets
/// zf to zero") and the assembly listing implements (`cmp si,1`).
constexpr const char *PaperFigure5 = R"(
scasb.instruction := begin
  ** SOURCE.ACCESS **
    di<15:0>,   ! source string address
    cx<15:0>,   ! source string length
    fetch()<7:0> := begin
      fetch <- Mb[di];
      di <- di + 1;   ! low-to-high addresses
    end
  ** STATE **
    zf<>,        ! result of last comparison
    al<7:0>,     ! character sought
    temp<15:0>   ! new temporary
  ** STRING.PROCESS **
    scasb.execute := begin
      input (di, cx, al);
      ! augmented code
      temp <- di;
      ! augmented code (from the prose; the figure omits it)
      zf <- 0;
      repeat
        exit_when (cx = 0);
        cx <- cx - 1;
        if (al - fetch()) = 0 then
          zf <- 1;
        else
          zf <- 0;
        end_if;
        exit_when (zf);
      end_repeat;
      ! augmented code
      if zf then
        output (di - temp);
      else
        output (0);
      end_if;
    end
end
)";

/// Replays the scasb instruction script up to (exclusive) the augment
/// phase when \p StopAtAugments, or in full.
isdl::Description replayScasb(bool StopAtAugments) {
  const AnalysisCase *Case = findCase("i8086.scasb/rigel.index");
  auto Scasb = descriptions::load("i8086.scasb");
  transform::Engine E(std::move(*Scasb));
  for (const transform::Step &S : Case->InstructionScript) {
    bool AugmentStart = S.Rule == "fix-operand-value" &&
                        S.Args.count("operand") &&
                        S.Args.at("operand") == "zf";
    if (StopAtAugments && AugmentStart)
      break;
    EXPECT_TRUE(E.apply(S).Applied) << S.str();
  }
  return E.takeDescription();
}

TEST(FiguresTest, RegeneratedFigure4MatchesThePaper) {
  DiagnosticEngine Diags;
  auto Paper = isdl::parseDescription(PaperFigure4, Diags);
  ASSERT_TRUE(Paper && !Diags.hasErrors()) << Diags.str();
  isdl::Description Ours = replayScasb(/*StopAtAugments=*/true);
  isdl::MatchResult M = isdl::matchDescriptions(*Paper, Ours);
  EXPECT_TRUE(M.Matched) << M.Mismatch << "\nregenerated:\n"
                         << isdl::printDescription(Ours);
  // Not merely equivalent modulo names: the names survive too.
  for (const auto &[A, B] : M.Binding.pairs())
    EXPECT_EQ(A, B);
}

TEST(FiguresTest, RegeneratedFigure5MatchesThePaper) {
  DiagnosticEngine Diags;
  auto Paper = isdl::parseDescription(PaperFigure5, Diags);
  ASSERT_TRUE(Paper && !Diags.hasErrors()) << Diags.str();
  isdl::Description Ours = replayScasb(/*StopAtAugments=*/false);
  isdl::MatchResult M = isdl::matchDescriptions(*Paper, Ours);
  EXPECT_TRUE(M.Matched) << M.Mismatch << "\nregenerated:\n"
                         << isdl::printDescription(Ours);
  for (const auto &[A, B] : M.Binding.pairs())
    EXPECT_EQ(A, B);
}

TEST(FiguresTest, Figure5BehavesLikeTheIndexOperator) {
  // The augmented instruction *is* the index operator: same outputs on a
  // concrete scenario, inputs mapped by the binding (di, cx, al) =
  // (base, length, char).
  isdl::Description Aug = replayScasb(false);
  auto Index = descriptions::load("rigel.index");
  interp::Memory M;
  interp::storeBytes(M, 40, "figure");
  for (int Ch : {'f', 'g', 'e', 'z'}) {
    auto A = interp::run(*Index, {40, 6, Ch}, M);
    auto B = interp::run(Aug, {40, 6, Ch}, M);
    ASSERT_TRUE(A.Ok && B.Ok);
    EXPECT_EQ(A.Outputs, B.Outputs) << static_cast<char>(Ch);
  }
}

} // namespace
