//===- search_test.cpp - Autonomous derivation search tests -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "search/BatchDriver.h"
#include "search/Canon.h"
#include "search/Searcher.h"

#include "analysis/Derivations.h"
#include "descriptions/Descriptions.h"
#include "isdl/Equiv.h"
#include "transform/Transform.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <gtest/gtest.h>

using namespace extra;
using namespace extra::search;

namespace {

/// Sorted one-line renderings of a constraint set, for order-insensitive
/// comparison between a discovered derivation and the recorded one.
std::vector<std::string> constraintLines(const constraint::ConstraintSet &CS) {
  std::vector<std::string> Out;
  for (const constraint::Constraint &C : CS.items())
    Out.push_back(C.str());
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Applies a recorded script and returns the final description.
isdl::Description runScript(const std::string &Id,
                            const transform::Script &S) {
  auto D = descriptions::load(Id);
  EXPECT_TRUE(D) << Id;
  transform::Engine E(std::move(*D));
  std::string Error;
  EXPECT_EQ(E.applyScript(S, &Error), S.size()) << Id << ": " << Error;
  return E.takeDescription();
}

//===----------------------------------------------------------------------===//
// Canonical fingerprints
//===----------------------------------------------------------------------===//

TEST(CanonTest, RenameInvariant) {
  // The fingerprint abstracts names away: alpha-renaming a variable or a
  // routine must not change it.
  auto A = descriptions::load("rigel.index");
  uint64_t Before = fingerprint(*A);

  transform::Engine E(A->clone());
  ASSERT_TRUE(E.apply({"rename-variable", "",
                       {{"from", "Src.Length"}, {"to", "zz"}}})
                  .Applied);
  EXPECT_EQ(fingerprint(E.current()), Before);

  ASSERT_TRUE(
      E.apply({"rename-routine", "", {{"from", "read"}, {"to", "grab"}}})
          .Applied);
  EXPECT_EQ(fingerprint(E.current()), Before);
}

TEST(CanonTest, DistinguishesStructure) {
  auto A = descriptions::load("pc2.clear");
  auto B = descriptions::load("pc2.copy");
  EXPECT_NE(fingerprint(*A), fingerprint(*B));
}

TEST(CanonTest, MatchedFinalFormsFingerprintEqual) {
  // The goal test of the searcher rests on: matchable => equal
  // fingerprints. Exercise it on every recorded derivation's final forms.
  auto Check = [](const analysis::AnalysisCase &C) {
    isdl::Description Op = runScript(C.OperatorId, C.OperatorScript);
    isdl::Description Inst = runScript(C.InstructionId, C.InstructionScript);
    ASSERT_TRUE(isdl::matchDescriptions(Op, Inst).Matched) << C.Id;
    EXPECT_EQ(fingerprint(Op), fingerprint(Inst)) << C.Id;
  };
  for (const analysis::AnalysisCase &C : analysis::table2Cases())
    Check(C);
  for (const analysis::AnalysisCase &C : analysis::extendedCases())
    Check(C);
}

TEST(CanonTest, PairKeyAsymmetric) {
  uint64_t A = fingerprint(*descriptions::load("pc2.clear"));
  uint64_t B = fingerprint(*descriptions::load("i8086.stosb"));
  EXPECT_NE(pairKey(A, B), pairKey(B, A));
  EXPECT_NE(pairKey(A, B), pairKey(A, A));
}

//===----------------------------------------------------------------------===//
// Derivation discovery
//===----------------------------------------------------------------------===//

/// Discovery must match the recorded derivation's constraint set exactly
/// (the scripts may differ — several step orders reach common form).
void expectDiscoveryMatchesRecorded(const char *CaseId) {
  const analysis::AnalysisCase *Recorded = analysis::findCase(CaseId);
  ASSERT_NE(Recorded, nullptr) << CaseId;

  SearchLimits Limits;
  DiscoveryResult R = discoverAndVerify(Recorded->OperatorId,
                                        Recorded->InstructionId, Limits);
  ASSERT_TRUE(R.Outcome.Found) << CaseId << ": "
                               << R.Outcome.FailureReason;
  EXPECT_TRUE(R.Verified) << CaseId << ": " << R.Replay.FailureReason;

  analysis::AnalysisResult Replay = analysis::runAnalysis(*Recorded);
  ASSERT_TRUE(Replay.Succeeded) << CaseId;
  EXPECT_EQ(constraintLines(R.Replay.Constraints),
            constraintLines(Replay.Constraints))
      << CaseId;

  EXPECT_GT(R.Outcome.Stats.NodesExpanded, 0u);
  EXPECT_GT(R.Outcome.Stats.WallMs, 0.0);
  EXPECT_GE(R.Outcome.Stats.hashHitRate(), 0.0);
  EXPECT_LE(R.Outcome.Stats.hashHitRate(), 1.0);
}

TEST(SearcherTest, DiscoversMovc3Pc2Copy) {
  expectDiscoveryMatchesRecorded("vax.movc3/pc2.copy");
}

TEST(SearcherTest, DiscoversStosbPc2Clear) {
  expectDiscoveryMatchesRecorded("i8086.stosb/pc2.clear");
}

TEST(SearcherTest, DiscoversMovc5Pc2Clear) {
  expectDiscoveryMatchesRecorded("vax.movc5/pc2.clear");
}

TEST(SearcherTest, DiscoversLoccRigelIndex) {
  expectDiscoveryMatchesRecorded("vax.locc/rigel.index");
}

TEST(SearcherTest, DiscoversLoccCluSearch) {
  expectDiscoveryMatchesRecorded("vax.locc/clu.search");
}

TEST(SearcherTest, DiscoversSkpcRigelSpan) {
  expectDiscoveryMatchesRecorded("vax.skpc/rigel.span");
}

TEST(SearcherTest, DiscoversMovsbSmove) {
  expectDiscoveryMatchesRecorded("i8086.movsb/pascal.smove");
}

TEST(SearcherTest, DiscoversMovsbPl1Move) {
  expectDiscoveryMatchesRecorded("i8086.movsb/pl1.move");
}

TEST(SearcherTest, DiscoversMajorityOfRecordedPairings) {
  // The headline acceptance bar: run the searcher over every recorded
  // pairing and require at least 8 of the 14 to be discovered, verified
  // end to end, *and* land on the recorded constraint set. A single
  // round at the base width keeps the unreachable pairings cheap — every
  // discoverable pairing is found without widening.
  SearchLimits Limits;
  Limits.Widenings = 0;

  unsigned Matching = 0;
  std::vector<const analysis::AnalysisCase *> All;
  for (const analysis::AnalysisCase &C : analysis::table2Cases())
    All.push_back(&C);
  for (const analysis::AnalysisCase &C : analysis::extendedCases())
    All.push_back(&C);
  All.push_back(&analysis::movc3SassignCase());
  ASSERT_EQ(All.size(), 14u);

  for (const analysis::AnalysisCase *C : All) {
    DiscoveryResult R =
        discoverAndVerify(C->OperatorId, C->InstructionId, Limits);
    if (!R.Outcome.Found || !R.Verified)
      continue;
    analysis::AnalysisResult Replay = analysis::runAnalysis(*C);
    ASSERT_TRUE(Replay.Succeeded) << C->Id;
    if (constraintLines(R.Replay.Constraints) ==
        constraintLines(Replay.Constraints))
      ++Matching;
  }
  EXPECT_GE(Matching, 8u);
}

TEST(SearcherTest, LengthLambdaPrefersShortScripts) {
  // Cost-guided beam score regression: with the default length weight,
  // the movc3/pc2.copy discovery must converge and ride a script no
  // longer than the recorded derivation (3 steps total); with the weight
  // off, the search must still converge on distance alone.
  const analysis::AnalysisCase *Recorded =
      analysis::findCase("vax.movc3/pc2.copy");
  ASSERT_NE(Recorded, nullptr);
  size_t RecordedLen =
      Recorded->OperatorScript.size() + Recorded->InstructionScript.size();

  SearchLimits Weighted;
  DiscoveryResult R =
      discoverAndVerify(Recorded->OperatorId, Recorded->InstructionId,
                        Weighted);
  ASSERT_TRUE(R.Outcome.Found) << R.Outcome.FailureReason;
  EXPECT_TRUE(R.Verified);
  EXPECT_LE(R.Outcome.OperatorScript.size() +
                R.Outcome.InstructionScript.size(),
            RecordedLen);

  SearchLimits Unweighted;
  Unweighted.LengthLambda = 0;
  DiscoveryResult R0 =
      discoverAndVerify(Recorded->OperatorId, Recorded->InstructionId,
                        Unweighted);
  ASSERT_TRUE(R0.Outcome.Found) << R0.Outcome.FailureReason;
  EXPECT_TRUE(R0.Verified);
}

TEST(SearcherTest, TrivialSelfPairSucceedsImmediately) {
  auto D = descriptions::load("pc2.clear");
  SearchOutcome Out = searchDerivation(*D, *D, SearchLimits());
  ASSERT_TRUE(Out.Found);
  EXPECT_TRUE(Out.OperatorScript.empty());
  EXPECT_TRUE(Out.InstructionScript.empty());
}

TEST(SearcherTest, ReportsFailureWithinBudget) {
  // A hopeless pairing must fail gracefully, with stats, not hang: the
  // node budget is the backstop.
  SearchLimits Limits;
  Limits.MaxNodes = 40;
  Limits.TimeBudgetMs = 10000;
  DiscoveryResult R =
      discoverAndVerify("pascal.sequal", "i8086.movsb", Limits);
  EXPECT_FALSE(R.Outcome.Found);
  EXPECT_FALSE(R.Outcome.FailureReason.empty());
  EXPECT_LE(R.Outcome.Stats.NodesExpanded, 40u);
}

TEST(SearcherTest, TinyDeadlineReturnsPromptly) {
  // Deadline-granularity regression: with a milliseconds-scale budget on
  // a pairing whose expansions take seconds in aggregate, the search must
  // stop *inside* expansion — between candidate attempts, within the
  // pin-and-simplify macro moves, and per differential trial — not after
  // finishing whatever multi-second work a coarse per-depth check would
  // allow. The generous bound still fails the coarse behavior, which
  // overshoots by tens of seconds.
  SearchLimits Limits;
  Limits.TimeBudgetMs = 5;
  auto Start = std::chrono::steady_clock::now();
  DiscoveryResult R = discoverAndVerify("clu.search", "i8086.scasb", Limits);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  EXPECT_FALSE(R.Outcome.Found);
  EXPECT_TRUE(R.Outcome.Stats.TimedOut);
  EXPECT_TRUE(R.Outcome.Stats.BudgetExhausted);
  EXPECT_LT(Ms, 3000.0);
}

TEST(SearcherTest, CancelFlagStopsSearch) {
  // A pre-raised cooperative cancel flag reads as an expired deadline.
  std::atomic<bool> Cancel{true};
  SearchLimits Limits;
  Limits.Cancel = &Cancel;
  DiscoveryResult R = discoverAndVerify("clu.search", "i8086.scasb", Limits);
  EXPECT_FALSE(R.Outcome.Found);
  EXPECT_TRUE(R.Outcome.Stats.TimedOut);
}

TEST(SearcherTest, FailedSearchCarriesPartialLine) {
  // Anytime result: a budget-bound failure still reports the closest
  // state the beam reached, with a consistent script prefix and a live
  // divergence report.
  SearchLimits Limits;
  Limits.MaxNodes = 60;
  Limits.Widenings = 0;
  DiscoveryResult R =
      discoverAndVerify("pascal.sequal", "i8086.cmpsb", Limits);
  ASSERT_FALSE(R.Outcome.Found);
  ASSERT_TRUE(R.Outcome.Partial.Valid);
  const PartialLine &P = R.Outcome.Partial;
  EXPECT_GT(P.Distance, 0u);
  // One beam level can append several steps (pin-and-simplify macro
  // moves), so the prefix is at least as long as the depth, never shorter.
  EXPECT_GE(P.OperatorScript.size() + P.InstructionScript.size(), P.Depth);
  EXPECT_NE(P.FpOp, P.FpInst); // Distance > 0 means unequal shapes.
  EXPECT_TRUE(P.Divergence.Valid);
}

TEST(SearcherTest, UnknownDescriptionIdIsTypedFault) {
  DiscoveryResult R = discoverAndVerify("no.such.operator", "i8086.movsb");
  EXPECT_FALSE(R.Outcome.Found);
  EXPECT_FALSE(R.Verified);
  ASSERT_TRUE(R.Outcome.SearchFault.isFault());
  EXPECT_EQ(R.Outcome.SearchFault.Category, FaultCategory::Internal);
  EXPECT_FALSE(R.Outcome.FailureReason.empty());
}

//===----------------------------------------------------------------------===//
// Batch driver
//===----------------------------------------------------------------------===//

std::vector<BatchCase> discoverableCases() {
  std::vector<BatchCase> Cases;
  for (const char *Id :
       {"vax.movc3/pc2.copy", "i8086.stosb/pc2.clear", "vax.movc5/pc2.clear"}) {
    const analysis::AnalysisCase *C = analysis::findCase(Id);
    EXPECT_NE(C, nullptr) << Id;
    BatchCase B;
    B.Id = C->Id;
    B.OperatorId = C->OperatorId;
    B.InstructionId = C->InstructionId;
    Cases.push_back(std::move(B));
  }
  return Cases;
}

TEST(BatchDriverTest, ParallelResultsMatchSequential) {
  std::vector<BatchCase> Cases = discoverableCases();

  BatchOptions Seq;
  Seq.Threads = 1;
  BatchStats SeqStats;
  std::vector<BatchResult> A = runBatch(Cases, Seq, &SeqStats);

  BatchOptions Par;
  Par.Threads = 2;
  BatchStats ParStats;
  std::vector<BatchResult> B = runBatch(Cases, Par, &ParStats);

  EXPECT_EQ(SeqStats.ThreadsUsed, 1u);
  EXPECT_GE(ParStats.ThreadsUsed, 2u);
  EXPECT_EQ(SeqStats.Discovered, Cases.size());
  EXPECT_EQ(ParStats.Discovered, Cases.size());
  EXPECT_EQ(SeqStats.Verified, Cases.size());
  EXPECT_EQ(ParStats.Verified, Cases.size());

  // Searches share no mutable state, so the discovered scripts and
  // constraints are identical whatever the thread count.
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    const SearchOutcome &X = A[I].Discovery.Outcome;
    const SearchOutcome &Y = B[I].Discovery.Outcome;
    ASSERT_EQ(X.Found, Y.Found) << Cases[I].Id;
    EXPECT_EQ(X.OperatorScript.size(), Y.OperatorScript.size());
    ASSERT_EQ(X.InstructionScript.size(), Y.InstructionScript.size());
    for (size_t S = 0; S < X.InstructionScript.size(); ++S)
      EXPECT_EQ(X.InstructionScript[S].str(), Y.InstructionScript[S].str())
          << Cases[I].Id;
    EXPECT_EQ(constraintLines(A[I].Discovery.Replay.Constraints),
              constraintLines(B[I].Discovery.Replay.Constraints))
        << Cases[I].Id;
  }
}

TEST(BatchDriverTest, LibraryCasesCoverRecordedPairings) {
  std::vector<BatchCase> Cases = libraryCases();
  size_t Expected = analysis::table2Cases().size() +
                    analysis::extendedCases().size() + 1;
  EXPECT_EQ(Cases.size(), Expected);
  for (const BatchCase &C : Cases) {
    EXPECT_FALSE(C.OperatorId.empty());
    EXPECT_FALSE(C.InstructionId.empty());
    EXPECT_TRUE(descriptions::load(C.OperatorId)) << C.OperatorId;
    EXPECT_TRUE(descriptions::load(C.InstructionId)) << C.InstructionId;
  }
}

} // namespace
