//===- isdl_validate_test.cpp - Validator unit tests ------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/Validate.h"

#include "TestSources.h"
#include "isdl/Parser.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::isdl;

namespace {

bool validates(std::string_view Src, std::string *FirstError = nullptr) {
  DiagnosticEngine Diags;
  auto D = parseDescription(Src, Diags);
  EXPECT_TRUE(D && !Diags.hasErrors()) << Diags.str();
  if (!D)
    return false;
  bool Ok = validate(*D, Diags);
  if (!Ok && FirstError)
    *FirstError = Diags.str();
  return Ok;
}

TEST(ValidateTest, PaperFiguresAreWellFormed) {
  EXPECT_TRUE(validates(extra::testing::RigelIndexSource));
  EXPECT_TRUE(validates(extra::testing::ScasbSource));
}

TEST(ValidateTest, UndeclaredVariableRejected) {
  std::string Err;
  EXPECT_FALSE(validates(R"(
x := begin
  ** S **
    a: integer,
    x.execute := begin a <- b + 1; end
end
)",
                         &Err));
  EXPECT_NE(Err.find("undeclared name 'b'"), std::string::npos);
}

TEST(ValidateTest, UnknownRoutineRejected) {
  std::string Err;
  EXPECT_FALSE(validates(R"(
x := begin
  ** S **
    a: integer,
    x.execute := begin a <- nosuch(); end
end
)",
                         &Err));
  EXPECT_NE(Err.find("unknown routine"), std::string::npos);
}

TEST(ValidateTest, ExitWhenOutsideLoopRejected) {
  std::string Err;
  EXPECT_FALSE(validates(R"(
x := begin
  ** S **
    a: integer,
    x.execute := begin exit_when (a = 0); end
end
)",
                         &Err));
  EXPECT_NE(Err.find("exit_when outside"), std::string::npos);
}

TEST(ValidateTest, ExitWhenInsideIfInsideLoopAccepted) {
  EXPECT_TRUE(validates(R"(
x := begin
  ** S **
    a: integer,
    x.execute := begin
      input (a);
      repeat
        if a = 0 then exit_when (1 = 1); end_if;
        a <- a - 1;
      end_repeat;
      output (a);
    end
end
)"));
}

TEST(ValidateTest, DuplicateDeclarationRejected) {
  EXPECT_FALSE(validates(R"(
x := begin
  ** S **
    a: integer,
    a: integer,
    x.execute := begin a <- 1; end
end
)"));
}

TEST(ValidateTest, AssigningOtherRoutineResultRejected) {
  std::string Err;
  EXPECT_FALSE(validates(R"(
x := begin
  ** S **
    f(): integer := begin f <- 1; end
    x.execute := begin f <- 2; end
end
)",
                         &Err));
  EXPECT_NE(Err.find("assigns result"), std::string::npos);
}

TEST(ValidateTest, RoutineUsedAsVariableRejected) {
  std::string Err;
  EXPECT_FALSE(validates(R"(
x := begin
  ** S **
    a: integer,
    f(): integer := begin f <- 1; end
    x.execute := begin a <- f + 1; end
end
)",
                         &Err));
  EXPECT_NE(Err.find("used as a variable"), std::string::npos);
}

TEST(ValidateTest, OwnResultAssignmentAccepted) {
  EXPECT_TRUE(validates(R"(
x := begin
  ** S **
    a: integer,
    f(): integer := begin f <- Mb[a]; a <- a + 1; end
    x.execute := begin input (a); a <- f(); output (a); end
end
)"));
}

TEST(ValidateTest, InvertedBitRangeRejected) {
  std::string Err;
  EXPECT_FALSE(validates(R"(
x := begin
  ** S **
    a<1:2>,
    x.execute := begin input (a); output (a); end
end
)",
                         &Err));
  EXPECT_NE(Err.find("invalid bit range"), std::string::npos);
}

TEST(ValidateTest, UndeclaredInputOperandRejected) {
  std::string Err;
  EXPECT_FALSE(validates(R"(
x := begin
  ** S **
    a: integer,
    x.execute := begin input (a, b); output (a); end
end
)",
                         &Err));
  EXPECT_NE(Err.find("undeclared input operand"), std::string::npos);
}

} // namespace
