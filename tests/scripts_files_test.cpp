//===- scripts_files_test.cpp - The shipped derivation scripts --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scripts/ directory ships every recorded derivation in the textual
/// format (`extra-cli export-script` output, replayable with `extra-cli
/// replay`). These tests keep the files in sync with the built-in
/// derivations: each file must parse and match its in-tree Script.
///
//===----------------------------------------------------------------------===//

#include "analysis/Derivations.h"
#include "transform/ScriptIO.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace extra;
using namespace extra::analysis;

#ifndef EXTRA_SOURCE_DIR
#define EXTRA_SOURCE_DIR "."
#endif

namespace {

std::string slurp(const std::string &Path, bool &Ok) {
  std::ifstream F(Path);
  Ok = F.good();
  std::ostringstream Out;
  Out << F.rdbuf();
  return Out.str();
}

std::string fileFor(const AnalysisCase &C, bool Operator) {
  std::string Name = C.Id;
  for (char &Ch : Name)
    if (Ch == '/')
      Ch = '_';
  return std::string(EXTRA_SOURCE_DIR) + "/scripts/" + Name +
         (Operator ? ".operator.script" : ".instruction.script");
}

void expectMatches(const transform::Script &Want, const std::string &Path) {
  bool Ok = false;
  std::string Text = slurp(Path, Ok);
  ASSERT_TRUE(Ok) << "missing " << Path
                  << " (regenerate with extra-cli export-script)";
  DiagnosticEngine Diags;
  auto Got = transform::parseScript(Text, Diags);
  ASSERT_TRUE(Got.has_value()) << Path << "\n" << Diags.str();
  ASSERT_EQ(Got->size(), Want.size()) << Path << " is stale";
  for (size_t I = 0; I < Want.size(); ++I) {
    EXPECT_EQ((*Got)[I].Rule, Want[I].Rule) << Path;
    EXPECT_EQ((*Got)[I].Routine, Want[I].Routine) << Path;
    EXPECT_EQ((*Got)[I].Args, Want[I].Args) << Path;
  }
}

TEST(ScriptFilesTest, AllShippedScriptsMatchTheBuiltInDerivations) {
  for (const AnalysisCase &C : table2Cases()) {
    expectMatches(C.OperatorScript, fileFor(C, true));
    expectMatches(C.InstructionScript, fileFor(C, false));
  }
  for (const AnalysisCase &C : extendedCases()) {
    expectMatches(C.OperatorScript, fileFor(C, true));
    expectMatches(C.InstructionScript, fileFor(C, false));
  }
  const AnalysisCase &M = movc3SassignCase();
  expectMatches(M.OperatorScript, fileFor(M, true));
  expectMatches(M.InstructionScript, fileFor(M, false));
}

} // namespace
