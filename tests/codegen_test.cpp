//===- codegen_test.cpp - Retargetable code generator tests -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "codegen/Target.h"

#include "sim/Sim370.h"
#include "sim/Sim8086.h"
#include "sim/SimVax.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::codegen;
using interp::Memory;
using interp::loadBytes;
using interp::storeBytes;

namespace {

std::string joined(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines)
    Out += L + "\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Intel 8086
//===----------------------------------------------------------------------===//

TEST(I8086CodegenTest, IndexEmitsThePaperListing) {
  auto T = makeI8086Target();
  Program P;
  P.Ops.push_back(strIndex("result", Value::symbol("str"),
                           Value::symbol("len"), Value::symbol("ch")));
  CodeGenResult R = T->generate(P);
  EXPECT_EQ(R.ExoticCount, 1u);
  std::string Asm = joined(R.Asm);
  // The §4.1 hand translation: save initial address, zero zf, cld, the
  // repeat-prefixed scasb, and the index computation.
  EXPECT_NE(Asm.find("mov bx, di"), std::string::npos) << Asm;
  EXPECT_NE(Asm.find("cmp si, 1"), std::string::npos);
  EXPECT_NE(Asm.find("cld"), std::string::npos);
  EXPECT_NE(Asm.find("repne scasb"), std::string::npos);
  EXPECT_NE(Asm.find("sub di, bx"), std::string::npos);
}

TEST(I8086CodegenTest, GeneratedIndexRunsCorrectly) {
  auto T = makeI8086Target();
  Program P;
  P.Ops.push_back(strIndex("result", Value::symbol("str"),
                           Value::symbol("len"), Value::symbol("ch")));
  CodeGenResult R = T->generate(P);
  Memory M;
  storeBytes(M, 100, "hello");
  for (auto [Ch, Want] : std::vector<std::pair<int, int>>{
           {'l', 3}, {'h', 1}, {'o', 5}, {'z', 0}}) {
    sim::SimResult S = sim::run8086(
        R.Asm, M, {{"str", 100}, {"len", 5}, {"ch", Ch}});
    ASSERT_TRUE(S.Ok) << S.Error;
    EXPECT_EQ(S.reg("result"), Want) << "ch=" << static_cast<char>(Ch);
  }
  // Empty string: not found.
  sim::SimResult S =
      sim::run8086(R.Asm, M, {{"str", 100}, {"len", 0}, {"ch", 'h'}});
  ASSERT_TRUE(S.Ok);
  EXPECT_EQ(S.reg("result"), 0);
}

TEST(I8086CodegenTest, MoveAndEqualRunCorrectly) {
  auto T = makeI8086Target();
  Program P;
  P.Ops.push_back(strMove(Value::literal(200), Value::literal(100),
                          Value::literal(5)));
  P.Ops.push_back(strEqual("eq", Value::literal(100), Value::literal(200),
                           Value::literal(5)));
  CodeGenResult R = T->generate(P);
  EXPECT_EQ(R.ExoticCount, 2u);
  Memory M;
  storeBytes(M, 100, "amove");
  sim::SimResult S = sim::run8086(R.Asm, M);
  ASSERT_TRUE(S.Ok) << S.Error << "\n" << joined(R.Asm);
  EXPECT_EQ(loadBytes(S.Mem, 200, 5), "amove");
  EXPECT_EQ(S.reg("eq"), 1);
}

TEST(I8086CodegenTest, BlockCopyDecomposesAndHandlesOverlap) {
  auto T = makeI8086Target();
  Program P;
  // Overlapping copy: only the decomposed, direction-checked loop is
  // correct, and 8086 has no analyzed overlap-safe exotic binding.
  P.Ops.push_back(blockCopy(Value::literal(102), Value::literal(100),
                            Value::literal(4)));
  CodeGenResult R = T->generate(P);
  EXPECT_EQ(R.DecomposedCount, 1u);
  Memory M;
  storeBytes(M, 100, "abcd");
  sim::SimResult S = sim::run8086(R.Asm, M);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(loadBytes(S.Mem, 102, 4), "abcd");
}

TEST(I8086CodegenTest, BlockClearUsesStosb) {
  // The extended stosb/pc2.clear analysis gives the 8086 an exotic
  // BlockClear implementation.
  auto T = makeI8086Target();
  Program P;
  P.Ops.push_back(blockClear(Value::literal(400), Value::literal(6)));
  CodeGenResult R = T->generate(P);
  EXPECT_EQ(R.ExoticCount, 1u);
  EXPECT_NE(joined(R.Asm).find("rep stosb"), std::string::npos);
  Memory M;
  storeBytes(M, 400, "dirty!");
  sim::SimResult S = sim::run8086(R.Asm, M);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(loadBytes(S.Mem, 400, 6), std::string(6, '\0'));
}

TEST(I8086CodegenTest, DecomposedIndexMatchesExotic) {
  auto T = makeI8086Target();
  Program P;
  P.Ops.push_back(strIndex("r1", Value::symbol("s"), Value::symbol("n"),
                           Value::symbol("c")));
  CodeGenResult Exotic = T->generate(P);

  CodeGenContext Ctx;
  T->decompose(P.Ops[0], Ctx);
  std::vector<std::string> Decomposed = Ctx.takeLines();

  Memory M;
  storeBytes(M, 64, "abacus");
  for (int Ch : {'a', 'b', 'c', 'u', 's', 'z'}) {
    std::map<std::string, int64_t> Regs = {{"s", 64}, {"n", 6}, {"c", Ch}};
    sim::SimResult A = sim::run8086(Exotic.Asm, M, Regs);
    sim::SimResult B = sim::run8086(Decomposed, M, Regs);
    ASSERT_TRUE(A.Ok && B.Ok) << A.Error << B.Error;
    EXPECT_EQ(A.reg("r1"), B.reg("r1")) << "ch=" << static_cast<char>(Ch);
  }
}

TEST(I8086CodegenTest, DecomposedEqualMatchesExotic) {
  auto T = makeI8086Target();
  Memory M;
  storeBytes(M, 100, "equalize");
  storeBytes(M, 200, "equalize");
  storeBytes(M, 300, "equalizr");
  for (auto [B, Want] : std::vector<std::pair<int64_t, int64_t>>{
           {200, 1}, {300, 0}}) {
    Program P;
    P.Ops.push_back(strEqual("r", Value::literal(100), Value::literal(B),
                             Value::literal(8)));
    CodeGenResult Exotic = T->generate(P);
    CodeGenContext Ctx;
    T->decompose(P.Ops[0], Ctx);
    sim::SimResult A = sim::run8086(Exotic.Asm, M);
    sim::SimResult D = sim::run8086(Ctx.takeLines(), M);
    ASSERT_TRUE(A.Ok && D.Ok) << A.Error << D.Error;
    EXPECT_EQ(A.reg("r"), Want);
    EXPECT_EQ(D.reg("r"), Want);
  }
}

TEST(I8086CodegenTest, CascadedSearchesReuseAl) {
  // §6: "if exotic instructions are cascaded or put in loops, additional
  // loads of the registers are not necessary." Searching two strings for
  // the same character must load al only once.
  auto T = makeI8086Target();
  Program P;
  P.Ops.push_back(strIndex("i1", Value::symbol("s1"), Value::symbol("n1"),
                           Value::symbol("c")));
  P.Ops.push_back(strIndex("i2", Value::symbol("s2"), Value::symbol("n2"),
                           Value::symbol("c")));
  CodeGenResult R = T->generate(P);
  unsigned AlLoads = 0;
  for (const std::string &L : R.Asm)
    if (L.find("mov al, c") != std::string::npos)
      ++AlLoads;
  EXPECT_EQ(AlLoads, 1u) << joined(R.Asm);
}

//===----------------------------------------------------------------------===//
// VAX-11
//===----------------------------------------------------------------------===//

TEST(VaxCodegenTest, IndexViaLoccRunsCorrectly) {
  auto T = makeVaxTarget();
  Program P;
  P.Ops.push_back(strIndex("result", Value::symbol("str"),
                           Value::symbol("len"), Value::symbol("ch")));
  // VAX string lengths are 16 bits — a non-trivial constraint on a
  // 32-bit machine (§4.1). The front end vouches that a declared Pascal
  // string is at most 255 characters.
  P.Facts.KnownRanges["len"] = {0, 255};
  CodeGenResult R = T->generate(P);
  EXPECT_EQ(R.ExoticCount, 1u);
  Memory M;
  storeBytes(M, 100, "hello");
  for (auto [Ch, Want] : std::vector<std::pair<int, int>>{
           {'l', 3}, {'h', 1}, {'o', 5}, {'z', 0}}) {
    sim::SimResult S =
        sim::runVax(R.Asm, M, {{"str", 100}, {"len", 5}, {"ch", Ch}});
    ASSERT_TRUE(S.Ok) << S.Error << "\n" << joined(R.Asm);
    EXPECT_EQ(S.reg("result"), Want) << "ch=" << static_cast<char>(Ch);
  }
}

TEST(VaxCodegenTest, StrMoveNeedsNoOverlapAxiom) {
  auto T = makeVaxTarget();
  Program P;
  P.Ops.push_back(strMove(Value::symbol("dst"), Value::symbol("src"),
                          Value::symbol("len")));
  P.Facts.KnownRanges["len"] = {0, 255};
  // Without the Pascal no-overlap guarantee, the relational constraint
  // cannot be discharged: decomposition (§4.3's failure, compiler-side).
  CodeGenResult NoAxiom = T->generate(P);
  EXPECT_EQ(NoAxiom.DecomposedCount, 1u);

  P.Facts.Axioms.insert("pascal.no-overlap");
  CodeGenResult WithAxiom = T->generate(P);
  EXPECT_EQ(WithAxiom.ExoticCount, 1u);
  EXPECT_NE(joined(WithAxiom.Asm).find("movc3"), std::string::npos);
}

TEST(VaxCodegenTest, BlockCopyUsesMovc3Unconditionally) {
  auto T = makeVaxTarget();
  Program P;
  P.Ops.push_back(blockCopy(Value::literal(102), Value::literal(100),
                            Value::literal(4)));
  CodeGenResult R = T->generate(P);
  EXPECT_EQ(R.ExoticCount, 1u);
  Memory M;
  storeBytes(M, 100, "abcd");
  sim::SimResult S = sim::runVax(R.Asm, M);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(loadBytes(S.Mem, 102, 4), "abcd"); // overlap-safe
}

TEST(VaxCodegenTest, SixtyFiveKMoveChunksLikeSection6) {
  // §6's rewriting-rule example: a 100000-byte literal move becomes
  // consecutive movc3 substrings of at most 65535 bytes.
  auto T = makeVaxTarget();
  Program P;
  P.Ops.push_back(blockCopy(Value::literal(200000), Value::literal(0),
                            Value::literal(100000)));
  CodeGenResult R = T->generate(P);
  ASSERT_EQ(R.Notes.size(), 1u);
  EXPECT_NE(R.Notes[0].Chosen.find("rewritten"), std::string::npos)
      << R.Notes[0].Chosen;
  unsigned Movc3Count = 0;
  for (const std::string &L : R.Asm)
    if (L.find("movc3 r0") != std::string::npos)
      ++Movc3Count;
  EXPECT_EQ(Movc3Count, 2u); // 65535 + 34465
  interp::Memory M;
  for (int64_t I = 0; I < 100000; I += 997)
    M[I] = static_cast<uint8_t>(I & 0xFF);
  sim::SimResult S = sim::runVax(R.Asm, M, {}, 10000000);
  ASSERT_TRUE(S.Ok) << S.Error;
  for (int64_t I = 0; I < 100000; I += 997)
    ASSERT_EQ(S.Mem.at(200000 + I), static_cast<uint8_t>(I & 0xFF)) << I;
}

TEST(VaxCodegenTest, OverlappingLongCopyDecomposes) {
  // Chunking is forward-only; a potentially overlapping long copy must
  // not be chunked.
  auto T = makeVaxTarget();
  Program P;
  P.Ops.push_back(blockCopy(Value::literal(50000), Value::literal(0),
                            Value::literal(100000)));
  CodeGenResult R = T->generate(P);
  EXPECT_EQ(R.DecomposedCount, 1u);
}

TEST(VaxCodegenTest, ClearAndEqualRunCorrectly) {
  auto T = makeVaxTarget();
  Program P;
  P.Ops.push_back(blockClear(Value::literal(100), Value::literal(4)));
  P.Ops.push_back(strEqual("eq", Value::literal(100), Value::literal(200),
                           Value::literal(4)));
  CodeGenResult R = T->generate(P);
  EXPECT_EQ(R.ExoticCount, 2u);
  Memory M;
  storeBytes(M, 100, "junk");
  // 200.. is already zero.
  sim::SimResult S = sim::runVax(R.Asm, M);
  ASSERT_TRUE(S.Ok) << S.Error << "\n" << joined(R.Asm);
  EXPECT_EQ(loadBytes(S.Mem, 100, 4), std::string(4, '\0'));
  EXPECT_EQ(S.reg("eq"), 1);
}

//===----------------------------------------------------------------------===//
// IBM 370
//===----------------------------------------------------------------------===//

TEST(Ibm370CodegenTest, MvcEmitsLengthMinusOne) {
  auto T = makeIbm370Target();
  Program P;
  P.Ops.push_back(strMove(Value::literal(300), Value::literal(100),
                          Value::literal(10)));
  CodeGenResult R = T->generate(P);
  EXPECT_EQ(R.ExoticCount, 1u);
  // 10 bytes => length field 9 (the §4.2 coding constraint).
  EXPECT_NE(joined(R.Asm).find("mvc (r1), (r2), 9"), std::string::npos)
      << joined(R.Asm);
  Memory M;
  storeBytes(M, 100, "0123456789");
  sim::SimResult S = sim::run370(R.Asm, M);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(loadBytes(S.Mem, 300, 10), "0123456789");
}

TEST(Ibm370CodegenTest, LongMoveChunksInto256ByteMvcs) {
  auto T = makeIbm370Target();
  Program P;
  P.Ops.push_back(strMove(Value::literal(2000), Value::literal(100),
                          Value::literal(600)));
  CodeGenResult R = T->generate(P);
  ASSERT_EQ(R.Notes.size(), 1u);
  EXPECT_NE(R.Notes[0].Chosen.find("rewritten"), std::string::npos);
  unsigned MvcCount = 0;
  for (const std::string &L : R.Asm)
    if (L.find("mvc (") != std::string::npos)
      ++MvcCount;
  EXPECT_EQ(MvcCount, 3u); // 256 + 256 + 88
  Memory M;
  for (int I = 0; I < 600; ++I)
    M[100 + I] = static_cast<uint8_t>(I & 0xFF);
  sim::SimResult S = sim::run370(R.Asm, M);
  ASSERT_TRUE(S.Ok) << S.Error;
  for (int I = 0; I < 600; ++I)
    ASSERT_EQ(S.Mem.at(2000 + I), static_cast<uint8_t>(I & 0xFF)) << I;
}

TEST(Ibm370CodegenTest, SymbolicLengthDecomposes) {
  auto T = makeIbm370Target();
  Program P;
  P.Ops.push_back(strMove(Value::symbol("d"), Value::symbol("s"),
                          Value::symbol("n")));
  CodeGenResult R = T->generate(P);
  EXPECT_EQ(R.DecomposedCount, 1u);
  Memory M;
  storeBytes(M, 100, "dyn");
  sim::SimResult S =
      sim::run370(R.Asm, M, {{"d", 200}, {"s", 100}, {"n", 3}});
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(loadBytes(S.Mem, 200, 3), "dyn");
}

TEST(Ibm370CodegenTest, FactKnownLengthUsesMvc) {
  auto T = makeIbm370Target();
  Program P;
  P.Ops.push_back(strMove(Value::symbol("d"), Value::symbol("s"),
                          Value::symbol("n")));
  // The front end knows n = 12 from constant propagation (§6).
  P.Facts.KnownValues["n"] = 12;
  CodeGenResult R = T->generate(P);
  EXPECT_EQ(R.ExoticCount, 1u);
  EXPECT_NE(joined(R.Asm).find(", 11"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Peephole (§6 integration optimization)
//===----------------------------------------------------------------------===//

TEST(PeepholeTest, RemovesSelfMovesAndRepeatedCld) {
  std::vector<std::string> Out = peephole({
      "  mov di, di",
      "  cld",
      "  cld",
      "  mov ax, bx",
  });
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_NE(Out[0].find("cld"), std::string::npos);
  EXPECT_NE(Out[1].find("mov ax, bx"), std::string::npos);
}

TEST(PeepholeTest, KeepsSeparatedSetup) {
  std::vector<std::string> Out = peephole({
      "  cld",
      "  mov ax, 1",
      "  cld",
  });
  EXPECT_EQ(Out.size(), 3u);
}

} // namespace
