//===- isdl_equiv_test.cpp - Common-form matcher tests ----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/Equiv.h"

#include "isdl/Parser.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::isdl;

namespace {

ExprPtr expr(std::string_view Src) {
  DiagnosticEngine Diags;
  ExprPtr E = parseExpr(Src, Diags);
  EXPECT_TRUE(E && !Diags.hasErrors()) << Diags.str();
  return E;
}

std::unique_ptr<Description> desc(std::string_view Src) {
  DiagnosticEngine Diags;
  auto D = parseDescription(Src, Diags);
  EXPECT_TRUE(D && !Diags.hasErrors()) << Diags.str();
  return D;
}

TEST(NameBindingTest, BijectionEnforced) {
  NameBinding B;
  EXPECT_TRUE(B.bind("a", "x"));
  EXPECT_TRUE(B.bind("a", "x"));  // Re-binding the same pair is fine.
  EXPECT_FALSE(B.bind("a", "y")); // a already bound to x.
  EXPECT_FALSE(B.bind("b", "x")); // x already bound to a.
  EXPECT_TRUE(B.bind("b", "y"));
  EXPECT_EQ(B.lookupA("a"), "x");
  EXPECT_EQ(B.lookupB("y"), "b");
  EXPECT_EQ(B.lookupA("zzz"), "");
}

TEST(MatchExprTest, RenamedOperands) {
  NameBinding B;
  EXPECT_TRUE(matchExpr(*expr("Src.Length - 1"), *expr("cx - 1"), B));
  EXPECT_EQ(B.lookupA("Src.Length"), "cx");
}

TEST(MatchExprTest, LiteralMismatch) {
  NameBinding B;
  std::string Why;
  EXPECT_FALSE(matchExpr(*expr("a + 1"), *expr("b + 2"), B, &Why));
  EXPECT_FALSE(Why.empty());
}

TEST(MatchExprTest, OperatorMismatch) {
  NameBinding B;
  EXPECT_FALSE(matchExpr(*expr("a + b"), *expr("a - b"), B));
  EXPECT_FALSE(matchExpr(*expr("a = b"), *expr("a <> b"), B));
}

TEST(MatchExprTest, ConsistentRenamingRequired) {
  NameBinding B;
  // a must map to x both times; the second use maps it to y.
  EXPECT_FALSE(matchExpr(*expr("a + a"), *expr("x + y"), B));
  NameBinding B2;
  EXPECT_TRUE(matchExpr(*expr("a + a"), *expr("x + x"), B2));
}

TEST(MatchExprTest, CallsBindRoutineNames) {
  NameBinding B;
  EXPECT_TRUE(matchExpr(*expr("ch = read()"), *expr("al = fetch()"), B));
  EXPECT_EQ(B.lookupA("read"), "fetch");
}

TEST(MatchStmtTest, AssignAndMemTargets) {
  DiagnosticEngine Diags;
  StmtList A = parseStmts("Mb[p] <- v; p <- p + 1;", Diags);
  StmtList B = parseStmts("Mb[di] <- al; di <- di + 1;", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  NameBinding Bind;
  EXPECT_TRUE(matchStmts(A, B, Bind));
  EXPECT_EQ(Bind.lookupA("p"), "di");
  EXPECT_EQ(Bind.lookupA("v"), "al");
}

TEST(MatchStmtTest, StatementCountMismatch) {
  DiagnosticEngine Diags;
  StmtList A = parseStmts("a <- 1;", Diags);
  StmtList B = parseStmts("x <- 1; y <- 2;", Diags);
  NameBinding Bind;
  std::string Why;
  EXPECT_FALSE(matchStmts(A, B, Bind, &Why));
  EXPECT_NE(Why.find("statement counts differ"), std::string::npos);
}

TEST(MatchStmtTest, InputPositionalBinding) {
  DiagnosticEngine Diags;
  StmtList A = parseStmts("input (Src.Base, Src.Length, ch);", Diags);
  StmtList B = parseStmts("input (di, cx, al);", Diags);
  NameBinding Bind;
  EXPECT_TRUE(matchStmts(A, B, Bind));
  EXPECT_EQ(Bind.lookupA("Src.Base"), "di");
  EXPECT_EQ(Bind.lookupA("Src.Length"), "cx");
  EXPECT_EQ(Bind.lookupA("ch"), "al");
}

TEST(MatchStmtTest, InputArityMismatch) {
  DiagnosticEngine Diags;
  StmtList A = parseStmts("input (a, b);", Diags);
  StmtList B = parseStmts("input (x, y, z);", Diags);
  NameBinding Bind;
  EXPECT_FALSE(matchStmts(A, B, Bind));
}

TEST(ExactEqualTest, RequiresIdenticalNames) {
  EXPECT_TRUE(exactEqual(*expr("a + b"), *expr("a + b")));
  EXPECT_FALSE(exactEqual(*expr("a + b"), *expr("a + c")));
}

// Two whole descriptions that are the same program modulo names.
constexpr const char *CopyA = R"(
copy.operation := begin
  ** ACCESS **
    p: integer,
    n: integer,
  ** PROCESS **
    copy.execute := begin
      input (p, n);
      repeat
        exit_when (n = 0);
        Mb[p] <- 0;
        p <- p + 1;
        n <- n - 1;
      end_repeat;
      output (p);
    end
end
)";

constexpr const char *CopyB = R"(
clear.instruction := begin
  ** ACCESS **
    r3<15:0>,
    r0<15:0>,
  ** PROCESS **
    clear.execute := begin
      input (r3, r0);
      repeat
        exit_when (r0 = 0);
        Mb[r3] <- 0;
        r3 <- r3 + 1;
        r0 <- r0 - 1;
      end_repeat;
      output (r3);
    end
end
)";

TEST(MatchDescriptionsTest, CommonFormModuloRenaming) {
  auto A = desc(CopyA);
  auto B = desc(CopyB);
  MatchResult R = matchDescriptions(*A, *B);
  ASSERT_TRUE(R.Matched) << R.Mismatch;
  EXPECT_EQ(R.Binding.lookupA("p"), "r3");
  EXPECT_EQ(R.Binding.lookupA("n"), "r0");
  EXPECT_EQ(R.Binding.lookupA("copy.execute"), "clear.execute");
}

TEST(MatchDescriptionsTest, RoutineBodiesMustMatch) {
  auto A = desc(R"(
a := begin
  ** S **
    x: integer,
    f(): integer := begin f <- Mb[x]; x <- x + 1; end
    a.execute := begin input (x); x <- f(); output (x); end
end
)");
  auto B = desc(R"(
b := begin
  ** S **
    r<15:0>,
    g()<7:0> := begin g <- Mb[r]; r <- r - 1; end
    b.execute := begin input (r); r <- g(); output (r); end
end
)");
  // Entry bodies match and bind f<->g, but the routine bodies differ
  // (increment vs decrement).
  MatchResult R = matchDescriptions(*A, *B);
  EXPECT_FALSE(R.Matched);
  EXPECT_FALSE(R.Mismatch.empty());
}

TEST(MatchDescriptionsTest, WidthDifferencesDoNotBlockMatching) {
  // Same structure; operator side declares `integer`, instruction side a
  // 16-bit register. The match succeeds; constraint derivation handles the
  // width difference elsewhere.
  auto A = desc(CopyA);
  auto B = desc(CopyB);
  EXPECT_TRUE(matchDescriptions(*A, *B).Matched);
}

TEST(MatchDescriptionsTest, UndeclaredNameFailsMatch) {
  auto A = desc(R"(
a := begin
  ** S **
    x: integer,
    a.execute := begin input (x); output (x + y); end
end
)");
  // `y` is undeclared on the A side (validation would reject it, but the
  // matcher must also notice).
  auto B = desc(R"(
b := begin
  ** S **
    r<15:0>,
    q<15:0>,
    b.execute := begin input (r); output (r + q); end
end
)");
  MatchResult R = matchDescriptions(*A, *B);
  EXPECT_FALSE(R.Matched);
  EXPECT_NE(R.Mismatch.find("undeclared"), std::string::npos);
}

} // namespace
