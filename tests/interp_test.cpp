//===- interp_test.cpp - Interpreter unit tests -----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "TestSources.h"
#include "isdl/Parser.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::interp;
using namespace extra::isdl;

namespace {

std::unique_ptr<Description> desc(std::string_view Src) {
  DiagnosticEngine Diags;
  auto D = parseDescription(Src, Diags);
  EXPECT_TRUE(D && !Diags.hasErrors()) << Diags.str();
  return D;
}

TEST(InterpTest, RigelIndexFindsCharacter) {
  DiagnosticEngine Diags;
  auto D = parseDescription(extra::testing::RigelIndexSource, Diags);
  ASSERT_TRUE(D);
  Memory M;
  storeBytes(M, 100, "hello");
  // index("hello", 'l') -> 3 (1-based index of first 'l').
  ExecResult R = run(*D, {100, 5, 'l'}, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Outputs.size(), 1u);
  EXPECT_EQ(R.Outputs[0], 3);
}

TEST(InterpTest, RigelIndexCharacterNotFound) {
  DiagnosticEngine Diags;
  auto D = parseDescription(extra::testing::RigelIndexSource, Diags);
  ASSERT_TRUE(D);
  Memory M;
  storeBytes(M, 100, "hello");
  ExecResult R = run(*D, {100, 5, 'z'}, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Outputs, std::vector<int64_t>{0});
}

TEST(InterpTest, RigelIndexEmptyString) {
  DiagnosticEngine Diags;
  auto D = parseDescription(extra::testing::RigelIndexSource, Diags);
  ASSERT_TRUE(D);
  ExecResult R = run(*D, {100, 0, 'a'});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Outputs, std::vector<int64_t>{0});
}

TEST(InterpTest, RigelIndexFirstAndLastPosition) {
  DiagnosticEngine Diags;
  auto D = parseDescription(extra::testing::RigelIndexSource, Diags);
  ASSERT_TRUE(D);
  Memory M;
  storeBytes(M, 50, "abc");
  EXPECT_EQ(run(*D, {50, 3, 'a'}, M).Outputs, std::vector<int64_t>{1});
  EXPECT_EQ(run(*D, {50, 3, 'c'}, M).Outputs, std::vector<int64_t>{3});
}

TEST(InterpTest, ScasbRepeatModeFindsCharacter) {
  DiagnosticEngine Diags;
  auto D = parseDescription(extra::testing::ScasbSource, Diags);
  ASSERT_TRUE(D);
  Memory M;
  storeBytes(M, 200, "hello");
  // rf=1 (repeat), rfz=0 (stop on match), df=0 (forward), zf=0.
  ExecResult R = run(*D, {1, 0, 0, 0, 200, 5, 'l'}, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Outputs: zf, di, cx. di points one past the found 'l' (index 2 ->
  // address 202, post-incremented to 203).
  ASSERT_EQ(R.Outputs.size(), 3u);
  EXPECT_EQ(R.Outputs[0], 1);   // zf: found
  EXPECT_EQ(R.Outputs[1], 203); // di
  EXPECT_EQ(R.Outputs[2], 2);   // cx: 5 - 3 consumed... cx decremented per trip
}

TEST(InterpTest, ScasbNotFoundExhaustsString) {
  DiagnosticEngine Diags;
  auto D = parseDescription(extra::testing::ScasbSource, Diags);
  ASSERT_TRUE(D);
  Memory M;
  storeBytes(M, 200, "hello");
  ExecResult R = run(*D, {1, 0, 0, 0, 200, 5, 'z'}, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Outputs[0], 0);   // zf: not found
  EXPECT_EQ(R.Outputs[1], 205); // scanned all five bytes
  EXPECT_EQ(R.Outputs[2], 0);
}

TEST(InterpTest, ScasbBackwardDirection) {
  DiagnosticEngine Diags;
  auto D = parseDescription(extra::testing::ScasbSource, Diags);
  ASSERT_TRUE(D);
  Memory M;
  storeBytes(M, 200, "abc");
  // df=1: scan from address 202 down.
  ExecResult R = run(*D, {1, 0, 1, 0, 202, 3, 'b'}, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Outputs[0], 1);
  EXPECT_EQ(R.Outputs[1], 200); // one past 'b' going downward
}

TEST(InterpTest, ScasbNonRepeatMode) {
  DiagnosticEngine Diags;
  auto D = parseDescription(extra::testing::ScasbSource, Diags);
  ASSERT_TRUE(D);
  Memory M;
  storeBytes(M, 200, "x");
  ExecResult R = run(*D, {0, 0, 0, 0, 200, 5, 'x'}, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Outputs[0], 1);   // single compare, matched
  EXPECT_EQ(R.Outputs[1], 201); // one advance
  EXPECT_EQ(R.Outputs[2], 5);   // cx untouched
}

TEST(InterpTest, ScasbScanWhileEqual) {
  DiagnosticEngine Diags;
  auto D = parseDescription(extra::testing::ScasbSource, Diags);
  ASSERT_TRUE(D);
  Memory M;
  storeBytes(M, 200, "aaab");
  // rfz=1: loop while matching; exits at first non-match.
  ExecResult R = run(*D, {1, 1, 0, 0, 200, 4, 'a'}, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Outputs[0], 0);   // zf clear at exit (mismatch)
  EXPECT_EQ(R.Outputs[1], 204); // stopped after 'b'
}

TEST(InterpTest, RegisterWidthWraparound) {
  auto D = desc(R"(
x := begin
  ** S **
    c<7:0>,
    x.execute := begin input (c); c <- c + 1; output (c); end
end
)");
  ExecResult R = run(*D, {255});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Outputs, std::vector<int64_t>{0});
}

TEST(InterpTest, InputValuesMaskedOnIntake) {
  auto D = desc(R"(
x := begin
  ** S **
    c<3:0>,
    x.execute := begin input (c); output (c); end
end
)");
  ExecResult R = run(*D, {0xFF});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Outputs, std::vector<int64_t>{0xF});
}

TEST(InterpTest, MemoryWriteAndFinalMemory) {
  auto D = desc(R"(
x := begin
  ** S **
    p: integer, v: integer,
    x.execute := begin input (p, v); Mb[p] <- v; output (Mb[p]); end
end
)");
  ExecResult R = run(*D, {10, 0x1FF});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Outputs, std::vector<int64_t>{0xFF}); // bytes are 8-bit
  EXPECT_EQ(loadBytes(R.FinalMemory, 10, 1), std::string(1, '\xff'));
}

TEST(InterpTest, RoutineReturnAccumulatorIsPerInvocation) {
  auto D = desc(R"(
x := begin
  ** S **
    a: integer,
    f(): integer := begin f <- a; a <- a + 1; end
    x.execute := begin input (a); output (f() + f()); end
end
)");
  // First call returns 5, second 6.
  ExecResult R = run(*D, {5});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Outputs, std::vector<int64_t>{11});
}

TEST(InterpTest, InputExhaustionIsAnError) {
  auto D = desc(R"(
x := begin
  ** S **
    a: integer, b: integer,
    x.execute := begin input (a, b); output (a); end
end
)");
  ExecResult R = run(*D, {1});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("input exhausted"), std::string::npos);
}

TEST(InterpTest, DivisionByZeroIsAnError) {
  auto D = desc(R"(
x := begin
  ** S **
    a: integer,
    x.execute := begin input (a); output (1 / a); end
end
)");
  EXPECT_FALSE(run(*D, {0}).Ok);
  EXPECT_TRUE(run(*D, {2}).Ok);
}

TEST(InterpTest, StepLimitStopsInfiniteLoop) {
  auto D = desc(R"(
x := begin
  ** S **
    a: integer,
    x.execute := begin
      repeat
        a <- a + 1;
        exit_when (a < 0);
      end_repeat;
      output (a);
    end
end
)");
  ExecOptions Opts;
  Opts.MaxSteps = 1000;
  ExecResult R = run(*D, {}, {}, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

TEST(InterpTest, AssertFailureStopsExecution) {
  auto D = desc(R"(
x := begin
  ** S **
    a: integer,
    x.execute := begin input (a); assert a > 0; output (a); end
end
)");
  EXPECT_TRUE(run(*D, {3}).Ok);
  ExecResult R = run(*D, {0});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("assertion failed"), std::string::npos);
}

TEST(InterpTest, ConstrainIsARuntimeNoOp) {
  auto D = desc(R"(
x := begin
  ** S **
    a: integer,
    x.execute := begin input (a); constrain range: a <= 2; output (a); end
end
)");
  // Violating the constraint does not abort execution: constraints are
  // obligations for the code generator, not run-time checks.
  EXPECT_TRUE(run(*D, {100}).Ok);
}

TEST(InterpTest, LogicalOperatorsAreNonZeroTests) {
  auto D = desc(R"(
x := begin
  ** S **
    a: integer, b: integer,
    x.execute := begin
      input (a, b);
      output (a and b, a or b, not a);
    end
end
)");
  ExecResult R = run(*D, {5, 0});
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Outputs, (std::vector<int64_t>{0, 1, 0}));
}

TEST(InterpTest, InputOperandsHelper) {
  DiagnosticEngine Diags;
  auto D = parseDescription(extra::testing::ScasbSource, Diags);
  ASSERT_TRUE(D);
  auto Ops = inputOperands(*D);
  ASSERT_EQ(Ops.size(), 7u);
  EXPECT_EQ(Ops[0], "rf");
  EXPECT_EQ(inputWidth(*D, "di"), 16u);
  EXPECT_EQ(inputWidth(*D, "rf"), 1u);
}

TEST(InterpTest, SameObservableComparesMemory) {
  auto D = desc(R"(
x := begin
  ** S **
    p: integer,
    x.execute := begin input (p); Mb[p] <- 7; output (0); end
end
)");
  ExecResult A = run(*D, {10});
  ExecResult B = run(*D, {10});
  ExecResult C = run(*D, {11});
  EXPECT_TRUE(A.sameObservable(B));
  EXPECT_FALSE(A.sameObservable(C));
}

} // namespace
