//===- sim_test.cpp - Target simulator unit tests ---------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "sim/Sim370.h"
#include "sim/Sim8086.h"
#include "sim/SimVax.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::sim;
using interp::Memory;
using interp::loadBytes;
using interp::storeBytes;

namespace {

TEST(SimCommonTest, ParseAsmLine) {
  AsmStmt S = parseAsmLine("  mov di, 100   ; comment", ';');
  ASSERT_EQ(S.Toks.size(), 3u);
  EXPECT_EQ(S.Toks[0], "mov");
  EXPECT_EQ(S.Toks[1], "di");
  EXPECT_EQ(S.Toks[2], "100");

  AsmStmt L = parseAsmLine("top0:", ';');
  EXPECT_EQ(L.Label, "top0");
  EXPECT_TRUE(L.Toks.empty());

  AsmStmt C = parseAsmLine("; only a comment", ';');
  EXPECT_TRUE(C.Label.empty());
  EXPECT_TRUE(C.Toks.empty());
}

TEST(SimCommonTest, AssembleRejectsDuplicateLabels) {
  std::vector<AsmStmt> Prog;
  std::map<std::string, size_t> Labels;
  std::string Error;
  EXPECT_FALSE(assemble({"x:", "mov a, 1", "x:"}, ';', Prog, Labels, Error));
  EXPECT_NE(Error.find("duplicate"), std::string::npos);
}

TEST(SimCommonTest, CodeSizeCountsInstructionLines) {
  EXPECT_EQ(codeSize({"; c", "l:", "mov a, 1", "", "  add a, 2"}, ';'), 2u);
}

//===----------------------------------------------------------------------===//
// 8086
//===----------------------------------------------------------------------===//

TEST(Sim8086Test, MovAddSubCmp) {
  SimResult R = run8086({
      "mov ax, 5",
      "add ax, 7",
      "sub ax, 2",
      "cmp ax, 10",
      "jz yes",
      "mov bx, 0",
      "jmp done",
      "yes:",
      "mov bx, 1",
      "done:",
  });
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.reg("ax"), 10);
  EXPECT_EQ(R.reg("bx"), 1);
}

TEST(Sim8086Test, SixteenBitWraparound) {
  SimResult R = run8086({"mov cx, 0", "dec cx"});
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.reg("cx"), 0xFFFF);
}

TEST(Sim8086Test, MemoryOperands) {
  Memory M;
  M[50] = 7;
  SimResult R = run8086({"mov si, 50", "mov al, [si]", "mov di, 60",
                         "mov [di], al"},
                        M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.reg("al"), 7);
  EXPECT_EQ(R.Mem.at(60), 7);
}

TEST(Sim8086Test, RepneScasbFindsCharacter) {
  Memory M;
  storeBytes(M, 100, "hello");
  SimResult R = run8086({"mov di, 100", "mov cx, 5", "mov al, 108",
                         "cld", "repne scasb"},
                        M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.reg("di"), 103); // one past the first 'l'
  EXPECT_EQ(R.reg("cx"), 2);
}

TEST(Sim8086Test, RepMovsbMovesBlock) {
  Memory M;
  storeBytes(M, 10, "abcde");
  SimResult R = run8086({"mov si, 10", "mov di, 30", "mov cx, 5", "cld",
                         "rep movsb"},
                        M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(loadBytes(R.Mem, 30, 5), "abcde");
  // One dispatch for the rep line, five micro-ops for the bytes.
  EXPECT_EQ(R.reg("cx"), 0);
}

TEST(Sim8086Test, RepeCmpsbStopsAtMismatch) {
  Memory M;
  storeBytes(M, 10, "abcx");
  storeBytes(M, 30, "abcy");
  SimResult R = run8086({"mov si, 10", "mov di, 30", "mov cx, 4", "cld",
                         "cmp ax, ax", "repe cmpsb", "jnz ne", "mov dx, 1",
                         "jmp done", "ne:", "mov dx, 0", "done:"},
                        M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.reg("dx"), 0);
}

TEST(Sim8086Test, BackwardDirection) {
  Memory M;
  storeBytes(M, 10, "ab");
  SimResult R = run8086({"mov si, 11", "std", "lodsb"}, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.reg("al"), 'b');
  EXPECT_EQ(R.reg("si"), 10);
}

TEST(Sim8086Test, UnknownInstructionReported) {
  SimResult R = run8086({"frobnicate ax, 1"});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unknown instruction"), std::string::npos);
}

TEST(Sim8086Test, InfiniteLoopHitsStepLimit) {
  SimResult R = run8086({"top:", "jmp top"}, {}, {}, 1000);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

TEST(Sim8086Test, VirtualSymbolsActAsRegisters) {
  SimResult R = run8086({"mov result, 42", "mov ax, result"});
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.reg("ax"), 42);
}

//===----------------------------------------------------------------------===//
// VAX
//===----------------------------------------------------------------------===//

TEST(SimVaxTest, Movc3ForwardAndResults) {
  Memory M;
  storeBytes(M, 10, "vax11");
  SimResult R = runVax({"movl r0, 5", "movl r1, 10", "movl r3, 40",
                        "movc3 r0, r1, r3"},
                       M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(loadBytes(R.Mem, 40, 5), "vax11");
  EXPECT_EQ(R.reg("r0"), 0);
  EXPECT_EQ(R.reg("r1"), 15);
  EXPECT_EQ(R.reg("r3"), 45);
}

TEST(SimVaxTest, Movc3OverlapSafety) {
  Memory M;
  storeBytes(M, 10, "abc");
  // dst = 12 overlaps the source tail; the naive forward copy would
  // produce "aba" at 12 (§4.3's example).
  SimResult R = runVax({"movc3 3, 10, 12"}, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(loadBytes(R.Mem, 12, 3), "abc");
}

TEST(SimVaxTest, LoccFoundAndNotFound) {
  Memory M;
  storeBytes(M, 10, "hello");
  SimResult Found = runVax({"locc 108, 5, 10"}, M); // 'l'
  ASSERT_TRUE(Found.Ok) << Found.Error;
  EXPECT_EQ(Found.reg("r0"), 3);  // bytes remaining including 'l'
  EXPECT_EQ(Found.reg("r1"), 12); // address of the located byte

  SimResult Absent = runVax({"locc 122, 5, 10"}, M); // 'z'
  ASSERT_TRUE(Absent.Ok);
  EXPECT_EQ(Absent.reg("r0"), 0);
  EXPECT_EQ(Absent.reg("r1"), 15);
}

TEST(SimVaxTest, Cmpc3EqualAndUnequal) {
  Memory M;
  storeBytes(M, 10, "same");
  storeBytes(M, 30, "same");
  storeBytes(M, 50, "sane");
  SimResult Eq = runVax({"cmpc3 4, 10, 30"}, M);
  ASSERT_TRUE(Eq.Ok);
  EXPECT_EQ(Eq.reg("r0"), 0);
  SimResult Ne = runVax({"cmpc3 4, 10, 50"}, M);
  ASSERT_TRUE(Ne.Ok);
  EXPECT_EQ(Ne.reg("r0"), 2); // mismatch at 'm'/'n', two bytes remain
}

TEST(SimVaxTest, Movc5FillsTail) {
  Memory M;
  storeBytes(M, 10, "xy");
  SimResult R = runVax({"movc5 2, 10, 46, 5, 40"}, M); // fill '.'
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(loadBytes(R.Mem, 40, 5), "xy...");
  EXPECT_EQ(R.reg("r0"), 0);
}

TEST(SimVaxTest, BranchesAndByteOps) {
  Memory M;
  M[20] = 9;
  SimResult R = runVax({"movl r1, 20", "ldb r5, (r1)", "cmpl r5, 9",
                        "beql hit", "movl r6, 0", "brb done", "hit:",
                        "movl r6, 1", "done:", "stb r6, (r1)"},
                       M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.reg("r6"), 1);
  EXPECT_EQ(R.Mem.at(20), 1);
}

//===----------------------------------------------------------------------===//
// 370
//===----------------------------------------------------------------------===//

TEST(Sim370Test, MvcMovesLengthPlusOne) {
  Memory M;
  storeBytes(M, 100, "abcdef");
  SimResult R = run370({"la r1, 200", "la r2, 100", "mvc (r1), (r2), 3"}, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Length field 3 moves FOUR bytes — the §4.2 quirk.
  EXPECT_EQ(loadBytes(R.Mem, 200, 6), std::string("abcd\0\0", 6));
}

TEST(Sim370Test, MvcRejectsWideLengthField) {
  SimResult R = run370({"la r1, 0", "la r2, 10", "mvc (r1), (r2), 300"});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("8 bits"), std::string::npos);
}

TEST(Sim370Test, ArithmeticAndBranches) {
  SimResult R = run370({"la r1, 10", "ahi r1, -3", "chi r1, 7", "je ok",
                        "la r2, 0", "j done", "ok:", "la r2, 1", "done:"});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.reg("r1"), 7);
  EXPECT_EQ(R.reg("r2"), 1);
}

TEST(Sim370Test, TwentyFourBitAddresses) {
  SimResult R = run370({"la r1, 16777216"}); // 2^24 wraps to 0
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.reg("r1"), 0);
}

TEST(Sim370Test, ByteLoadStoreLoop) {
  Memory M;
  storeBytes(M, 10, "abc");
  SimResult R = run370({
      "la r1, 10", "la r2, 30", "la r3, 3",
      "top:", "chi r3, 0", "je done", "ahi r3, -1",
      "ldb r6, (r1)", "ahi r1, 1", "stb r6, (r2)", "ahi r2, 1", "j top",
      "done:",
  }, M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(loadBytes(R.Mem, 30, 3), "abc");
}

} // namespace
