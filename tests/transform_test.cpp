//===- transform_test.cpp - Framework + local rule tests --------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "transform/Transform.h"

#include "isdl/Parser.h"
#include "isdl/Printer.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::transform;
using namespace extra::isdl;

namespace {

std::unique_ptr<Description> desc(std::string_view Src) {
  DiagnosticEngine Diags;
  auto D = parseDescription(Src, Diags);
  EXPECT_TRUE(D && !Diags.hasErrors()) << Diags.str();
  return D;
}

/// Wraps a statement sequence into a one-routine description over the
/// given integer variables.
std::unique_ptr<Description> wrap(const std::string &Vars,
                                  const std::string &Body) {
  std::string Src = "t := begin\n  ** S **\n";
  DiagnosticEngine Diags;
  for (const std::string &V : split(Vars, ',')) {
    std::string Name(trim(V));
    if (!Name.empty())
      Src += "    " + Name + ": integer,\n";
  }
  Src += "    t.execute := begin\n" + Body + "\n    end\nend\n";
  return desc(Src);
}

/// Applies one rule and returns the printed entry body, or "FAIL: reason".
std::string applyOne(Description &D, const Step &S) {
  Engine E(D.clone());
  ApplyResult R = E.apply(S);
  if (!R.Applied)
    return "FAIL: " + R.Reason;
  return printStmts(E.current().entryRoutine()->Body);
}

TEST(RegistryTest, SeventyFiveTransformations) {
  // "The current implementation of EXTRA includes 75 transformations in
  // the transformation library." (§5)
  EXPECT_EQ(Registry::instance().size(), 75u);
}

TEST(RegistryTest, AllSevenCategoriesPopulated) {
  const Registry &R = Registry::instance();
  EXPECT_FALSE(R.inCategory(Category::Local).empty());
  EXPECT_FALSE(R.inCategory(Category::CodeMotion).empty());
  EXPECT_FALSE(R.inCategory(Category::Loop).empty());
  EXPECT_FALSE(R.inCategory(Category::Global).empty());
  EXPECT_FALSE(R.inCategory(Category::RoutineStructuring).empty());
  EXPECT_FALSE(R.inCategory(Category::ConstraintOp).empty());
  EXPECT_FALSE(R.inCategory(Category::Augment).empty());
}

TEST(RegistryTest, LookupUnknownReturnsNull) {
  EXPECT_EQ(Registry::instance().lookup("no-such-rule"), nullptr);
}

TEST(RegistryTest, EveryRuleHasDocumentation) {
  for (const Transformation *T : Registry::instance().all()) {
    EXPECT_FALSE(T->name().empty());
    EXPECT_FALSE(T->description().empty()) << T->name();
  }
}

TEST(EngineTest, UnknownRuleFails) {
  auto D = wrap("a", "      input (a); output (a);");
  Engine E(D->clone());
  ApplyResult R = E.apply({"does-not-exist", "", {}});
  EXPECT_FALSE(R.Applied);
  EXPECT_NE(R.Reason.find("unknown transformation"), std::string::npos);
}

TEST(EngineTest, FailedStepLeavesDescriptionUntouched) {
  auto D = wrap("a", "      input (a); output (a);");
  Engine E(D->clone());
  std::string Before = printDescription(E.current());
  ApplyResult R = E.apply({"add-zero", "", {}}); // nothing matches
  EXPECT_FALSE(R.Applied);
  EXPECT_EQ(printDescription(E.current()), Before);
  EXPECT_EQ(E.stepsApplied(), 0u);
}

TEST(EngineTest, ScriptStopsAtFirstFailure) {
  auto D = wrap("a", "      input (a); a <- a + 0; output (a);");
  Engine E(D->clone());
  Script S = {{"add-zero", "", {}}, {"add-zero", "", {}}};
  std::string Error;
  EXPECT_EQ(E.applyScript(S, &Error), 1u);
  EXPECT_NE(Error.find("step 2"), std::string::npos);
}

TEST(EngineTest, LogRecordsAppliedSteps) {
  auto D = wrap("a", "      input (a); a <- a + 0; a <- a * 1; output (a);");
  Engine E(D->clone());
  EXPECT_TRUE(E.apply({"add-zero", "", {}}).Applied);
  EXPECT_TRUE(E.apply({"mul-one", "", {}}).Applied);
  ASSERT_EQ(E.log().size(), 2u);
  EXPECT_EQ(E.log()[0].S.Rule, "add-zero");
  EXPECT_EQ(E.log()[1].S.Rule, "mul-one");
}

TEST(EngineTest, VerifierRejectionRollsBack) {
  auto D = wrap("a", "      input (a); a <- a + 0; output (a);");
  Engine E(D->clone());
  E.setVerifier([](const StepObservation &, std::string &Err) {
    Err = "synthetic rejection";
    return false;
  });
  std::string Before = printDescription(E.current());
  ApplyResult R = E.apply({"add-zero", "", {}});
  EXPECT_FALSE(R.Applied);
  EXPECT_NE(R.Reason.find("synthetic rejection"), std::string::npos);
  EXPECT_EQ(printDescription(E.current()), Before);
}

//===----------------------------------------------------------------------===//
// Local rules
//===----------------------------------------------------------------------===//

TEST(LocalRuleTest, ConstantFolds) {
  auto D = wrap("a", "      a <- 2 + 3; output (a);");
  EXPECT_NE(applyOne(*D, {"fold-add", "", {}}).find("a <- 5;"),
            std::string::npos);
  auto D2 = wrap("a", "      a <- 10 - 4; output (a);");
  EXPECT_NE(applyOne(*D2, {"fold-sub", "", {}}).find("a <- 6;"),
            std::string::npos);
  auto D3 = wrap("a", "      a <- 6 / 0; output (a);");
  // Division by zero must not fold (it is an execution error).
  EXPECT_NE(applyOne(*D3, {"fold-div", "", {}}).find("FAIL"),
            std::string::npos);
}

TEST(LocalRuleTest, IdentityRules) {
  auto D = wrap("a,b", "      a <- b + 0; output (a);");
  EXPECT_NE(applyOne(*D, {"add-zero", "", {}}).find("a <- b;"),
            std::string::npos);
  auto D2 = wrap("a,b", "      a <- b - b; output (a);");
  EXPECT_NE(applyOne(*D2, {"sub-self", "", {}}).find("a <- 0;"),
            std::string::npos);
  auto D3 = wrap("a", "      a <- read() - read(); output (a);");
  // Impure operands: sub-self must refuse (two calls).
  EXPECT_NE(applyOne(*D3, {"sub-self", "", {}}).find("FAIL"),
            std::string::npos);
}

TEST(LocalRuleTest, OccurrenceAddressing) {
  auto D = wrap("a,b", "      a <- b + 0; b <- a + 0; output (a);");
  // occurrence=1 rewrites only the second match.
  std::string Out = applyOne(*D, {"add-zero", "", {{"occurrence", "1"}}});
  EXPECT_NE(Out.find("a <- b + 0;"), std::string::npos);
  EXPECT_NE(Out.find("b <- a;"), std::string::npos);
}

TEST(LocalRuleTest, ReverseConditionalFigure1) {
  auto D = wrap("e,x", "      input (e);\n"
                       "      if e = 1 then x <- 1; else x <- 2; end_if;\n"
                       "      output (x);");
  std::string Out = applyOne(*D, {"reverse-conditional", "", {}});
  EXPECT_NE(Out.find("if not e = 1 then"), std::string::npos);
  EXPECT_NE(Out.find("x <- 2;"), std::string::npos);
  // Round-trip: if-not-elim restores the original.
  Engine E(D->clone());
  EXPECT_TRUE(E.apply({"reverse-conditional", "", {}}).Applied);
  EXPECT_TRUE(E.apply({"if-not-elim", "", {}}).Applied);
  std::string Restored = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Restored.find("if e = 1 then"), std::string::npos);
}

TEST(LocalRuleTest, NotNotRequiresBoolean) {
  auto D = wrap("a,b", "      a <- not (not (b = 1)); output (a);");
  EXPECT_NE(applyOne(*D, {"not-not", "", {}}).find("a <- b = 1;"),
            std::string::npos);
  auto D2 = wrap("a,b", "      a <- not (not b); output (a);");
  // b is an unbounded integer, not boolean: must refuse.
  EXPECT_NE(applyOne(*D2, {"not-not", "", {}}).find("FAIL"),
            std::string::npos);
}

TEST(LocalRuleTest, ScasbExitConditionSimplification) {
  // The exact §4.1 sequence: with rfz = 0 propagated,
  //   (rfz and (not zf)) or ((not rfz) and zf)
  // folds to zf.
  auto D = desc(R"(
t := begin
  ** S **
    zf<>, x: integer,
    t.execute := begin
      input (zf, x);
      repeat
        exit_when ((0 and (not zf)) or ((not 0) and zf));
        x <- x - 1;
        exit_when (x = 0);
      end_repeat;
      output (x);
    end
end
)");
  Engine E(D->clone());
  EXPECT_TRUE(E.apply({"fold-constants", "", {}}).Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Out.find("exit_when (zf);"), std::string::npos)
      << Out;
}

TEST(LocalRuleTest, EqToDiffZeroAndBack) {
  auto D = wrap("a,b,f", "      f <- a = b; output (f);");
  std::string Out = applyOne(*D, {"eq-to-diff-zero", "", {}});
  EXPECT_NE(Out.find("f <- a - b = 0;"), std::string::npos);
  Engine E(D->clone());
  EXPECT_TRUE(E.apply({"eq-to-diff-zero", "", {}}).Applied);
  EXPECT_TRUE(E.apply({"diff-zero-to-eq", "", {}}).Applied);
  EXPECT_NE(printStmts(E.current().entryRoutine()->Body).find("f <- a = b;"),
            std::string::npos);
}

TEST(LocalRuleTest, IfToFlagAssignIdiom) {
  auto D = wrap("f,a",
                "      input (a);\n"
                "      if a = 0 then f <- 1; else f <- 0; end_if;\n"
                "      output (f);");
  std::string Out = applyOne(*D, {"if-to-flag-assign", "", {}});
  EXPECT_NE(Out.find("f <- a = 0;"), std::string::npos);
  // And the inverse.
  Engine E(D->clone());
  EXPECT_TRUE(E.apply({"if-to-flag-assign", "", {}}).Applied);
  EXPECT_TRUE(E.apply({"flag-assign-to-if", "", {}}).Applied);
  EXPECT_NE(printStmts(E.current().entryRoutine()->Body)
                .find("if a = 0 then"),
            std::string::npos);
}

TEST(LocalRuleTest, RelShiftConst) {
  auto D = wrap("a,f", "      f <- a - 1 = 0; output (f);");
  EXPECT_NE(applyOne(*D, {"rel-shift-const", "", {}}).find("f <- a = 1;"),
            std::string::npos);
  auto D2 = wrap("a,f", "      f <- a + 2 >= 5; output (f);");
  EXPECT_NE(applyOne(*D2, {"rel-shift-const", "", {}}).find("f <- a >= 3;"),
            std::string::npos);
}

TEST(LocalRuleTest, DeMorgan) {
  auto D = wrap("a,b,f", "      f <- not (a = 1 and b = 2); output (f);");
  std::string Out = applyOne(*D, {"de-morgan-and", "", {}});
  EXPECT_NE(Out.find("f <- not a = 1 or not b = 2;"), std::string::npos)
      << Out;
}

TEST(LocalRuleTest, IfFalseElimUnwrapsElse) {
  auto D = wrap("x", "      if 0 then x <- 1; else x <- 2; x <- x + 1; "
                     "end_if;\n      output (x);");
  std::string Out = applyOne(*D, {"if-false-elim", "", {}});
  EXPECT_EQ(Out.find("if"), std::string::npos);
  EXPECT_NE(Out.find("x <- 2;"), std::string::npos);
  EXPECT_NE(Out.find("x <- x + 1;"), std::string::npos);
}

TEST(EngineTest, UndoRestoresDescriptionAndConstraints) {
  // Undo across a constraint-producing step must roll back both the
  // description (byte-for-byte under the printer) and the recorded
  // constraint set, like backing out of an edit in the 1982 structure
  // editor.
  auto D = desc(R"(
t.instruction := begin
  ** OPERANDS **
    f<>,        ! flag operand
    n<15:0>,
  ** PROCESS **
    t.execute := begin
      input (f, n);
      if f then
        n <- n + 1;
      else
        n <- n - 1;
      end_if;
      output (n);
    end
end
)");
  Engine E(D->clone());
  std::string Before = printDescription(E.current());
  ASSERT_EQ(E.constraints().size(), 0u);

  ApplyResult R = E.apply(
      {"fix-operand-value", "", {{"operand", "f"}, {"value", "1"}}});
  ASSERT_TRUE(R.Applied) << R.Reason;
  EXPECT_EQ(R.Effect, SemanticsEffect::InputRefining);
  EXPECT_EQ(E.constraints().size(), 1u);
  EXPECT_NE(printDescription(E.current()), Before);
  EXPECT_EQ(E.stepsApplied(), 1u);

  ASSERT_TRUE(E.undo());
  EXPECT_EQ(E.constraints().size(), 0u);
  EXPECT_EQ(printDescription(E.current()), Before);
  EXPECT_EQ(E.stepsApplied(), 0u);

  // Nothing left to undo.
  EXPECT_FALSE(E.undo());

  // The engine is still usable: re-applying the step succeeds again.
  ASSERT_TRUE(E.apply({"fix-operand-value", "",
                       {{"operand", "f"}, {"value", "1"}}})
                  .Applied);
  EXPECT_EQ(E.constraints().size(), 1u);
}

} // namespace
