//===- property_test.cpp - Property-based sweeps ----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized property sweeps across the whole pipeline:
///
///  * every Table 2 derivation holds under several independent random
///    seeds (different inputs, memories, and constraint-respecting draws);
///  * printing any intermediate or final description and re-parsing it
///    yields a structurally identical description;
///  * inverse rule pairs compose to the identity;
///  * generated code for every (target, operator) pair agrees with the
///    reference interpretation of the corresponding library operator
///    description across a grid of scenarios.
///
//===----------------------------------------------------------------------===//

#include "analysis/Derivations.h"
#include "codegen/Target.h"
#include "descriptions/Descriptions.h"
#include "isdl/Equiv.h"
#include "isdl/Parser.h"
#include "isdl/Printer.h"
#include "sim/Sim370.h"
#include "sim/Sim8086.h"
#include "sim/SimVax.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::analysis;

namespace {

std::string sanitize(std::string S) {
  for (char &C : S)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return S;
}

//===----------------------------------------------------------------------===//
// Derivations hold under independent seeds
//===----------------------------------------------------------------------===//

const AnalysisCase &caseByIndex(size_t I) {
  if (I < table2Cases().size())
    return table2Cases()[I];
  return extendedCases()[I - table2Cases().size()];
}

class SeededDerivationTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(SeededDerivationTest, HoldsUnderSeed) {
  const AnalysisCase &Case = caseByIndex(std::get<0>(GetParam()));
  DiffOptions Opts;
  Opts.Seed = std::get<1>(GetParam());
  Opts.Trials = 24;
  AnalysisResult R = runAnalysis(Case, Mode::Base, Opts);
  EXPECT_TRUE(R.Succeeded) << Case.Id << " seed=" << Opts.Seed << ": "
                           << R.FailureReason;
}

INSTANTIATE_TEST_SUITE_P(
    AllCasesThreeSeeds, SeededDerivationTest,
    ::testing::Combine(::testing::Range<size_t>(0, 13),
                       ::testing::Values(1u, 424242u, 0xDEADBEEFu)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, uint64_t>> &Info) {
      return sanitize(caseByIndex(std::get<0>(Info.param)).Id) + "_s" +
             std::to_string(std::get<1>(Info.param));
    });

//===----------------------------------------------------------------------===//
// Printer/parser round trip over every derivation's final forms
//===----------------------------------------------------------------------===//

class RoundTripFinalFormsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RoundTripFinalFormsTest, PrintedFormsReparse) {
  const AnalysisCase &Case = table2Cases()[GetParam()];
  AnalysisResult R = runAnalysis(Case, Mode::Base);
  ASSERT_TRUE(R.Succeeded) << R.FailureReason;
  for (const std::string &Text :
       {R.AugmentedInstruction, R.TransformedOperator}) {
    DiagnosticEngine Diags;
    auto Once = isdl::parseDescription(Text, Diags);
    ASSERT_TRUE(Once && !Diags.hasErrors()) << Case.Id << "\n" << Text;
    std::string Again = isdl::printDescription(*Once);
    auto Twice = isdl::parseDescription(Again, Diags);
    ASSERT_TRUE(Twice && !Diags.hasErrors());
    isdl::MatchResult M = isdl::matchDescriptions(*Once, *Twice);
    EXPECT_TRUE(M.Matched) << M.Mismatch;
    for (const auto &[A, B] : M.Binding.pairs())
      EXPECT_EQ(A, B);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCases, RoundTripFinalFormsTest,
                         ::testing::Range<size_t>(0, 11),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return sanitize(table2Cases()[Info.param].Id);
                         });

//===----------------------------------------------------------------------===//
// Inverse rule pairs compose to the identity
//===----------------------------------------------------------------------===//

struct InversePair {
  const char *Forward;
  const char *Backward;
  const char *Fixture; // statement text inside a two-variable routine
};

class InverseRuleTest : public ::testing::TestWithParam<InversePair> {};

TEST_P(InverseRuleTest, RoundTripsToIdentity) {
  const InversePair &P = GetParam();
  std::string Src = std::string("t := begin\n  ** S **\n    a: integer,\n"
                                "    b: integer,\n    f<>,\n"
                                "    t.execute := begin\n") +
                    P.Fixture + "\n    end\nend\n";
  DiagnosticEngine Diags;
  auto D = isdl::parseDescription(Src, Diags);
  ASSERT_TRUE(D && !Diags.hasErrors()) << Diags.str();
  std::string Before = isdl::printDescription(*D);

  transform::Engine E(D->clone());
  ASSERT_TRUE(E.apply({P.Forward, "", {}}).Applied) << P.Forward;
  std::string Middle = isdl::printDescription(E.current());
  EXPECT_NE(Middle, Before) << "forward rule was a no-op";
  ASSERT_TRUE(E.apply({P.Backward, "", {}}).Applied) << P.Backward;
  EXPECT_EQ(isdl::printDescription(E.current()), Before);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, InverseRuleTest,
    ::testing::Values(
        InversePair{"reverse-conditional", "if-not-elim",
                    "      input (a);\n"
                    "      if a = 0 then b <- 1; else b <- 2; end_if;\n"
                    "      output (b);"},
        InversePair{"eq-to-diff-zero", "diff-zero-to-eq",
                    "      input (a, b);\n"
                    "      f <- a = b;\n"
                    "      output (f);"},
        InversePair{"if-to-flag-assign", "flag-assign-to-if",
                    "      input (a);\n"
                    "      if a = 0 then f <- 1; else f <- 0; end_if;\n"
                    "      output (f);"},
        InversePair{"split-exit-disjunction", "merge-exits",
                    "      input (a, b);\n"
                    "      repeat\n"
                    "        exit_when (a = 0 or b = 0);\n"
                    "        a <- a - 1;\n"
                    "        b <- b - 1;\n"
                    "      end_repeat;\n"
                    "      output (a, b);"}),
    [](const ::testing::TestParamInfo<InversePair> &Info) {
      return sanitize(Info.param.Forward);
    });

//===----------------------------------------------------------------------===//
// Generated code vs. reference interpretation, across a scenario grid
//===----------------------------------------------------------------------===//

struct CodegenGridCase {
  const char *TargetName;
  sim::SimResult (*Run)(const std::vector<std::string> &,
                        const interp::Memory &,
                        const std::map<std::string, int64_t> &, uint64_t);
  std::unique_ptr<codegen::Target> (*Make)();
};

class IndexGridTest : public ::testing::TestWithParam<CodegenGridCase> {};

TEST_P(IndexGridTest, MatchesRigelIndexDescription) {
  const CodegenGridCase &G = GetParam();
  auto T = G.Make();
  codegen::Program P;
  P.Ops.push_back(codegen::strIndex("res", codegen::Value::symbol("s"),
                                    codegen::Value::symbol("n"),
                                    codegen::Value::symbol("c")));
  P.Facts.KnownRanges["n"] = {0, 255}; // VAX's 16-bit length, satisfied
  codegen::CodeGenResult Code = T->generate(P);
  ASSERT_EQ(Code.ExoticCount + Code.DecomposedCount, 1u);

  auto Index = descriptions::load("rigel.index");
  interp::Memory M;
  interp::storeBytes(M, 64, "the quick brown fox");
  for (int64_t Len : {0, 1, 5, 19})
    for (int Ch : {'t', 'q', 'x', 'z', ' '}) {
      auto Ref = interp::run(*Index, {64, Len, Ch}, M);
      ASSERT_TRUE(Ref.Ok);
      sim::SimResult S =
          G.Run(Code.Asm, M, {{"s", 64}, {"n", Len}, {"c", Ch}}, 1000000);
      ASSERT_TRUE(S.Ok) << G.TargetName << ": " << S.Error;
      EXPECT_EQ(S.reg("res"), Ref.Outputs.at(0))
          << G.TargetName << " len=" << Len << " ch="
          << static_cast<char>(Ch);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, IndexGridTest,
    ::testing::Values(
        CodegenGridCase{"i8086", sim::run8086, codegen::makeI8086Target},
        CodegenGridCase{"vax", sim::runVax, codegen::makeVaxTarget},
        CodegenGridCase{"ibm370", sim::run370, codegen::makeIbm370Target}),
    [](const ::testing::TestParamInfo<CodegenGridCase> &Info) {
      return Info.param.TargetName;
    });

class MoveGridTest : public ::testing::TestWithParam<CodegenGridCase> {};

TEST_P(MoveGridTest, MovesExactlyTheRequestedBytes) {
  const CodegenGridCase &G = GetParam();
  auto T = G.Make();
  for (int64_t Len : {1, 7, 16, 255}) {
    codegen::Program P;
    P.Ops.push_back(codegen::strMove(codegen::Value::literal(700),
                                     codegen::Value::literal(64),
                                     codegen::Value::literal(Len)));
    P.Facts.Axioms.insert("pascal.no-overlap");
    codegen::CodeGenResult Code = T->generate(P);
    interp::Memory M;
    for (int64_t I = 0; I < 300; ++I)
      M[64 + I] = static_cast<uint8_t>(1 + (I % 251));
    sim::SimResult S = G.Run(Code.Asm, M, {}, 1000000);
    ASSERT_TRUE(S.Ok) << G.TargetName << ": " << S.Error;
    for (int64_t I = 0; I < Len; ++I)
      ASSERT_EQ(S.Mem.at(700 + I), M.at(64 + I))
          << G.TargetName << " len=" << Len << " at " << I;
    // Exactly Len bytes: the next cell is untouched.
    EXPECT_EQ(S.Mem.count(700 + Len), 0u) << G.TargetName << " len=" << Len;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, MoveGridTest,
    ::testing::Values(
        CodegenGridCase{"i8086", sim::run8086, codegen::makeI8086Target},
        CodegenGridCase{"vax", sim::runVax, codegen::makeVaxTarget},
        CodegenGridCase{"ibm370", sim::run370, codegen::makeIbm370Target}),
    [](const ::testing::TestParamInfo<CodegenGridCase> &Info) {
      return Info.param.TargetName;
    });

class EqualGridTest : public ::testing::TestWithParam<CodegenGridCase> {};

TEST_P(EqualGridTest, MatchesSequalDescription) {
  const CodegenGridCase &G = GetParam();
  auto T = G.Make();
  codegen::Program P;
  P.Ops.push_back(codegen::strEqual("res", codegen::Value::symbol("a"),
                                    codegen::Value::symbol("b"),
                                    codegen::Value::symbol("n")));
  P.Facts.KnownRanges["n"] = {0, 255};
  codegen::CodeGenResult Code = T->generate(P);

  auto Sequal = descriptions::load("pascal.sequal");
  interp::Memory M;
  interp::storeBytes(M, 64, "prefixAB");
  interp::storeBytes(M, 128, "prefixAC");
  for (int64_t Len : {0, 1, 6, 7, 8}) {
    auto Ref = interp::run(*Sequal, {64, 128, Len}, M);
    ASSERT_TRUE(Ref.Ok);
    sim::SimResult S =
        G.Run(Code.Asm, M, {{"a", 64}, {"b", 128}, {"n", Len}}, 1000000);
    ASSERT_TRUE(S.Ok) << G.TargetName << ": " << S.Error;
    EXPECT_EQ(S.reg("res"), Ref.Outputs.at(0))
        << G.TargetName << " len=" << Len;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, EqualGridTest,
    ::testing::Values(
        CodegenGridCase{"i8086", sim::run8086, codegen::makeI8086Target},
        CodegenGridCase{"vax", sim::runVax, codegen::makeVaxTarget},
        CodegenGridCase{"ibm370", sim::run370, codegen::makeIbm370Target}),
    [](const ::testing::TestParamInfo<CodegenGridCase> &Info) {
      return Info.param.TargetName;
    });

class ClearGridTest : public ::testing::TestWithParam<CodegenGridCase> {};

TEST_P(ClearGridTest, ClearsExactlyTheRequestedBytes) {
  const CodegenGridCase &G = GetParam();
  auto T = G.Make();
  for (int64_t Len : {1, 9, 64}) {
    codegen::Program P;
    P.Ops.push_back(codegen::blockClear(codegen::Value::literal(700),
                                        codegen::Value::literal(Len)));
    codegen::CodeGenResult Code = T->generate(P);
    interp::Memory M;
    for (int64_t I = 0; I < Len + 4; ++I)
      M[700 + I] = 0xAB;
    sim::SimResult S = G.Run(Code.Asm, M, {}, 1000000);
    ASSERT_TRUE(S.Ok) << G.TargetName << ": " << S.Error;
    for (int64_t I = 0; I < Len; ++I)
      ASSERT_EQ(S.Mem.at(700 + I), 0) << G.TargetName << " at " << I;
    EXPECT_EQ(S.Mem.at(700 + Len), 0xAB) << G.TargetName << " len=" << Len;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, ClearGridTest,
    ::testing::Values(
        CodegenGridCase{"i8086", sim::run8086, codegen::makeI8086Target},
        CodegenGridCase{"vax", sim::runVax, codegen::makeVaxTarget},
        CodegenGridCase{"ibm370", sim::run370, codegen::makeIbm370Target}),
    [](const ::testing::TestParamInfo<CodegenGridCase> &Info) {
      return Info.param.TargetName;
    });

} // namespace
