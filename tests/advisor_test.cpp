//===- advisor_test.cpp - Analysis advisor tests ----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "analysis/Advisor.h"

#include "analysis/Derivations.h"
#include "descriptions/Descriptions.h"
#include "isdl/Equiv.h"
#include "isdl/Parser.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::analysis;

namespace {

TEST(StructuralDistanceTest, ZeroOnIdenticalAndRenamed) {
  auto A = descriptions::load("rigel.index");
  EXPECT_EQ(structuralDistance(*A, *A), 0u);
  // Renaming does not change the structure.
  auto B = descriptions::load("rigel.index");
  transform::Engine E(B->clone());
  ASSERT_TRUE(E.apply({"rename-variable", "",
                       {{"from", "Src.Length"}, {"to", "n"}}})
                  .Applied);
  EXPECT_EQ(structuralDistance(*A, E.current()), 0u);
}

TEST(StructuralDistanceTest, EmptyRoutineDescriptions) {
  // Degenerate descriptions with an empty entry routine: the distance
  // must be well-defined (no crash), zero against itself, and positive
  // against any real description.
  DiagnosticEngine Diags;
  auto Empty = isdl::parseDescription(R"(
e.op := begin
  ** S **
    e.execute := begin
    end
end
)",
                                      Diags);
  ASSERT_TRUE(Empty && !Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(structuralDistance(*Empty, *Empty), 0u);

  auto Real = descriptions::load("pc2.clear");
  EXPECT_GT(structuralDistance(*Empty, *Real), 0u);
  EXPECT_EQ(structuralDistance(*Empty, *Real),
            structuralDistance(*Real, *Empty));
}

TEST(StructuralDistanceTest, SensitiveToStructure) {
  auto A = descriptions::load("rigel.index");
  auto B = descriptions::load("i8086.scasb");
  EXPECT_GT(structuralDistance(*A, *B), 0u);
}

TEST(AdvisorTest, SuggestsOnlyApplicableSteps) {
  auto Current = descriptions::load("i8086.scasb");
  auto Target = descriptions::load("rigel.index");
  std::vector<Suggestion> Sugg = suggestSteps(*Current, *Target, 12);
  ASSERT_FALSE(Sugg.empty());
  for (const Suggestion &S : Sugg) {
    transform::Engine E(Current->clone());
    EXPECT_TRUE(E.apply(S.S).Applied) << S.S.str();
  }
}

TEST(AdvisorTest, FlagFixingRanksHighForScasb) {
  // Moving scasb toward the (already flag-free) index operator: pinning
  // one of the instruction's flag operands should be among the top
  // suggestions, since it unlocks the §4.1 simplification chain.
  auto Current = descriptions::load("i8086.scasb");
  auto Target = descriptions::load("rigel.index");
  std::vector<Suggestion> Sugg = suggestSteps(*Current, *Target, 8);
  bool SawFlagFix = false;
  for (const Suggestion &S : Sugg)
    if (S.S.Rule == "fix-operand-value")
      SawFlagFix = true;
  EXPECT_TRUE(SawFlagFix);
}

TEST(AdvisorTest, GuidedGreedySearchMakesProgress) {
  // Greedy advisor-guided search from simplified-scasb territory: start
  // the instruction script, then let the advisor finish simplification.
  // It will not reproduce augments (those need user intent), but it must
  // strictly reduce the structural distance.
  const AnalysisCase *Case = findCase("i8086.scasb/rigel.index");
  auto Instr = descriptions::load(Case->InstructionId);

  // Operator side fully derived (the target of the instruction session).
  auto Oper = descriptions::load(Case->OperatorId);
  transform::Engine OperE(std::move(*Oper));
  std::string Error;
  ASSERT_EQ(OperE.applyScript(Case->OperatorScript, &Error),
            Case->OperatorScript.size())
      << Error;
  const isdl::Description &Target = OperE.current();

  transform::Engine E(Instr->clone());
  unsigned Distance = structuralDistance(E.current(), Target);
  for (int Round = 0; Round < 24; ++Round) {
    std::vector<Suggestion> Sugg = suggestSteps(E.current(), Target, 4);
    if (Sugg.empty() || Sugg.front().DistanceAfter >= Distance)
      break;
    ASSERT_TRUE(E.apply(Sugg.front().S).Applied);
    Distance = Sugg.front().DistanceAfter;
  }
  EXPECT_LT(Distance, structuralDistance(*descriptions::load("i8086.scasb"),
                                         Target));
}

TEST(AdvisorTest, IndexToPointerSuggestedForBaseIndexAccess) {
  auto Current = descriptions::load("rigel.index");
  auto Target = descriptions::load("vax.locc");
  std::vector<Suggestion> Sugg = suggestSteps(*Current, *Target, 16);
  bool Saw = false;
  for (const Suggestion &S : Sugg)
    if (S.S.Rule == "index-to-pointer")
      Saw = true;
  EXPECT_TRUE(Saw);
}

} // namespace
