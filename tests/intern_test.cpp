//===- intern_test.cpp - Hash-consed AST / COW handle tests -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// The differential suite for the interned hot path: the new representation
// (hash-consed arena, memoized canonical fingerprints, FeatureVec
// distances, copy-on-write engine state) must be *observationally
// identical* to the legacy deep-copy path on the whole description
// library — byte-identical printed text, equal fingerprints, equal
// structural distances, and identical whole-search outcomes. Run under
// ASan/UBSan in the sanitizers CI job, these tests also exercise the
// arena and the sharing/undo aliasing edges.
//
//===----------------------------------------------------------------------===//

#include "analysis/Advisor.h"
#include "descriptions/Descriptions.h"
#include "isdl/Intern.h"
#include "isdl/Printer.h"
#include "search/Canon.h"
#include "search/Searcher.h"
#include "transform/Transform.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::isdl;
using transform::Engine;
using transform::Script;
using transform::Step;

namespace {

std::vector<std::string> corpusIds() {
  std::vector<std::string> Ids;
  for (const descriptions::Entry &E : descriptions::allEntries())
    Ids.push_back(E.Id);
  return Ids;
}

//===----------------------------------------------------------------------===//
// Fingerprint parity: values are unchanged (MemoStore keys, registry dedup
// keys and recorded traces depend on this).
//===----------------------------------------------------------------------===//

TEST(InternTest, FingerprintMatchesLegacyOnWholeCorpus) {
  for (const std::string &Id : corpusIds()) {
    auto D = descriptions::load(Id);
    ASSERT_TRUE(D) << Id;
    EXPECT_EQ(search::fingerprint(*D), search::fingerprintLegacy(*D))
        << "interned fingerprint diverged from legacy on " << Id;
  }
}

TEST(InternTest, FingerprintMatchesLegacyAfterTransformations) {
  // Parity must hold on *derived* states too, not just library roots:
  // apply every applicable candidate step to every description and
  // compare on the results.
  for (const std::string &Id : corpusIds()) {
    auto D = descriptions::load(Id);
    ASSERT_TRUE(D) << Id;
    for (const Step &S : search::enumerateCandidates(*D, *D)) {
      Engine E(D->clone());
      if (!E.apply(S).Applied)
        continue;
      const Description &After = E.current();
      EXPECT_EQ(search::fingerprint(After), search::fingerprintLegacy(After))
          << Id << " after " << S.str();
    }
  }
}

TEST(InternTest, FingerprintMemoAnswersRepeats) {
  Interner &I = Interner::local();
  I.reset();
  auto D = descriptions::load("i8086.movsb");
  ASSERT_TRUE(D);
  uint64_t First = I.canonicalFingerprint(*D);
  uint64_t HitsBefore = I.memoHits();
  // A structurally identical clone must be answered from the memo.
  auto Clone = D->clone();
  EXPECT_EQ(I.canonicalFingerprint(Clone), First);
  EXPECT_GT(I.memoHits(), HitsBefore);
}

TEST(InternTest, InternSharesEqualSubtrees) {
  Interner &I = Interner::local();
  I.reset();
  auto D = descriptions::load("i8086.movsb");
  ASSERT_TRUE(D);
  uint64_t IdA = I.identity(*D);
  size_t NodesAfterFirst = I.nodeCount();
  EXPECT_GT(NodesAfterFirst, 0u);
  // Interning a structural clone creates no new nodes: every subtree is
  // already in the arena.
  auto Clone = D->clone();
  EXPECT_EQ(I.identity(Clone), IdA);
  EXPECT_EQ(I.nodeCount(), NodesAfterFirst);
}

TEST(InternTest, ResetInvalidatesNothingButNodes) {
  Interner &I = Interner::local();
  auto D = descriptions::load("vax.locc");
  ASSERT_TRUE(D);
  uint64_t Fp = I.canonicalFingerprint(*D);
  I.reset();
  EXPECT_EQ(I.nodeCount(), 0u);
  // Values recomputed after a reset are identical.
  EXPECT_EQ(I.canonicalFingerprint(*D), Fp);
}

//===----------------------------------------------------------------------===//
// FeatureVec parity with the legacy map-based structural distance
//===----------------------------------------------------------------------===//

TEST(InternTest, FeatureDistanceMatchesLegacyOnAllPairs) {
  std::vector<std::unique_ptr<Description>> Descs;
  for (const std::string &Id : corpusIds())
    Descs.push_back(descriptions::load(Id));
  for (size_t A = 0; A < Descs.size(); ++A) {
    FeatureVec FA = FeatureVec::of(*Descs[A]);
    for (size_t B = 0; B < Descs.size(); ++B) {
      FeatureVec FB = FeatureVec::of(*Descs[B]);
      EXPECT_EQ(FA.distance(FB),
                analysis::structuralDistance(*Descs[A], *Descs[B]))
          << corpusIds()[A] << " vs " << corpusIds()[B];
    }
  }
}

TEST(InternTest, HandleDistanceShortCircuitsOnSharedVersion) {
  DescHandle A(descriptions::load("i8086.scasb")->clone());
  DescHandle B = A; // shared version
  EXPECT_TRUE(A.same(B));
  EXPECT_EQ(DescHandle::distance(A, B), 0u);
  // A distinct but structurally equal version measures 0 the long way.
  DescHandle C(A.clone());
  EXPECT_FALSE(A.same(C));
  EXPECT_EQ(DescHandle::distance(A, C), 0u);
}

//===----------------------------------------------------------------------===//
// Copy-on-write engine: sharing, apply, undo-after-share
//===----------------------------------------------------------------------===//

/// A step that applies on every library description.
Step anyApplicableStep(const Description &D, bool &Found) {
  for (const Step &S : search::enumerateCandidates(D, D)) {
    Engine Probe(D.clone());
    if (Probe.apply(S).Applied) {
      Found = true;
      return S;
    }
  }
  Found = false;
  return Step{};
}

TEST(InternTest, CowApplyMatchesOwnedApplyOnWholeCorpus) {
  for (const std::string &Id : corpusIds()) {
    auto D = descriptions::load(Id);
    ASSERT_TRUE(D) << Id;
    DescHandle Shared(D->clone());
    for (const Step &S : search::enumerateCandidates(*D, *D)) {
      // Owned path: engine owns a private description from the start.
      Engine Owned(D->clone());
      // COW path: engine shares `Shared` until the step applies.
      Engine Cow(Shared);
      transform::ApplyResult ROwned = Owned.apply(S);
      transform::ApplyResult RCow = Cow.apply(S);
      ASSERT_EQ(ROwned.Applied, RCow.Applied) << Id << " step " << S.str();
      if (!ROwned.Applied)
        continue;
      // Byte-identical text, equal fingerprints (both computations), and
      // equal structural distance against the untouched original.
      EXPECT_EQ(printDescription(Owned.current()),
                printDescription(Cow.current()))
          << Id << " step " << S.str();
      EXPECT_EQ(search::fingerprint(Owned.current()),
                search::fingerprint(Cow.current()));
      EXPECT_EQ(search::fingerprintLegacy(Owned.current()),
                search::fingerprintLegacy(Cow.current()));
      EXPECT_EQ(analysis::structuralDistance(Owned.current(), *D),
                analysis::structuralDistance(Cow.current(), *D));
      // The shared original must be untouched by the COW apply.
      EXPECT_EQ(printDescription(*Shared), printDescription(*D))
          << Id << " step " << S.str() << " mutated a shared version";
    }
  }
}

TEST(InternTest, RefusalsLeaveScratchBufferPure) {
  // The scratch-reuse contract (Transformation::apply): a refused rule
  // must leave the working copy untouched, because the next attempt on
  // the same version reuses the buffer instead of re-cloning. Sweep
  // every candidate through ONE engine per description — refusals and
  // successes interleaved on the same thread-local scratch slot — and
  // check each applied result against a fresh single-use engine. A rule
  // that mutated before refusing would corrupt the shared buffer and
  // diverge the next applied candidate.
  for (const std::string &Id : corpusIds()) {
    auto D = descriptions::load(Id);
    ASSERT_TRUE(D) << Id;
    DescHandle Shared(D->clone());
    std::string Before = printDescription(*D);
    Engine Reused(Shared);
    for (const Step &S : search::enumerateCandidates(*D, *D)) {
      bool Applied = Reused.apply(S).Applied;
      if (!Applied) {
        EXPECT_EQ(printDescription(Reused.current()), Before)
            << Id << ": refusal of " << S.str() << " mutated engine state";
        continue;
      }
      Engine Fresh(D->clone());
      ASSERT_TRUE(Fresh.apply(S).Applied) << Id << " step " << S.str();
      EXPECT_EQ(printDescription(Reused.current()),
                printDescription(Fresh.current()))
          << Id << ": scratch buffer was dirty before " << S.str();
      // Back to the shared version so every candidate starts equal.
      ASSERT_TRUE(Reused.undo());
      ASSERT_TRUE(Reused.currentHandle().same(Shared));
    }
  }
}

TEST(InternTest, UndoAfterShareRestoresExactText) {
  for (const std::string &Id : corpusIds()) {
    auto D = descriptions::load(Id);
    ASSERT_TRUE(D) << Id;
    bool Found = false;
    Step S = anyApplicableStep(*D, Found);
    if (!Found)
      continue;
    std::string Original = printDescription(*D);
    DescHandle Shared(D->clone());
    Engine E(Shared);
    ASSERT_TRUE(E.apply(S).Applied) << Id;
    // Keep a handle to the post-step version, then undo: the kept handle
    // must still read the post-step text (versions are immutable), and
    // the engine must be back on the pre-step version byte for byte.
    DescHandle After = E.currentHandle();
    std::string AfterText = printDescription(*After);
    ASSERT_TRUE(E.undo());
    EXPECT_EQ(printDescription(E.current()), Original) << Id;
    EXPECT_TRUE(E.currentHandle().same(Shared)) << Id;
    EXPECT_EQ(printDescription(*After), AfterText)
        << Id << ": undo mutated a shared post-step version";
  }
}

TEST(InternTest, TakeOnSharedHandleLeavesSiblingIntact) {
  auto D = descriptions::load("pc2.clear");
  ASSERT_TRUE(D);
  DescHandle A(D->clone());
  DescHandle B = A;
  std::string Text = printDescription(*A);
  Description Taken = std::move(A).take(); // shared: must deep-copy
  EXPECT_FALSE(A.valid());
  ASSERT_TRUE(B.valid());
  EXPECT_EQ(printDescription(*B), Text);
  EXPECT_EQ(printDescription(Taken), Text);
  // Sole owner: take() may move, and the handle dies.
  Description Taken2 = std::move(B).take();
  EXPECT_FALSE(B.valid());
  EXPECT_EQ(printDescription(Taken2), Text);
}

//===----------------------------------------------------------------------===//
// Whole-search differential: the COW hot path and the legacy hot path are
// the same search (same outcome, same scripts, same node traffic).
//===----------------------------------------------------------------------===//

void expectSearchesIdentical(const std::string &OperatorId,
                             const std::string &InstructionId) {
  auto Op = descriptions::load(OperatorId);
  auto Inst = descriptions::load(InstructionId);
  ASSERT_TRUE(Op && Inst);

  search::SearchLimits Cow;
  Cow.VerifyTrials = 0; // keep the test fast; replay is not under test
  search::SearchLimits Legacy = Cow;
  Legacy.LegacyHotPath = true;

  search::SearchOutcome A = search::searchDerivation(*Op, *Inst, Cow);
  search::SearchOutcome B = search::searchDerivation(*Op, *Inst, Legacy);

  EXPECT_EQ(A.Found, B.Found);
  ASSERT_EQ(A.OperatorScript.size(), B.OperatorScript.size());
  for (size_t I = 0; I < A.OperatorScript.size(); ++I)
    EXPECT_EQ(A.OperatorScript[I].str(), B.OperatorScript[I].str());
  ASSERT_EQ(A.InstructionScript.size(), B.InstructionScript.size());
  for (size_t I = 0; I < A.InstructionScript.size(); ++I)
    EXPECT_EQ(A.InstructionScript[I].str(), B.InstructionScript[I].str());
  // Node traffic is part of the contract: the representations may not
  // change what the search explores.
  EXPECT_EQ(A.Stats.NodesExpanded, B.Stats.NodesExpanded);
  EXPECT_EQ(A.Stats.NodesGenerated, B.Stats.NodesGenerated);
  EXPECT_EQ(A.Stats.HashHits, B.Stats.HashHits);
  EXPECT_EQ(A.Stats.Reopened, B.Stats.Reopened);
}

TEST(InternTest, SearchOutcomeIdenticalToLegacyPathMovc3) {
  expectSearchesIdentical("pc2.copy", "vax.movc3");
}

TEST(InternTest, SearchOutcomeIdenticalToLegacyPathSkpc) {
  expectSearchesIdentical("rigel.span", "vax.skpc");
}

} // namespace
