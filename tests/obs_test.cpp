//===- obs_test.cpp - Tracing, metrics, and postmortem tests ----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// The observability layer's contract: JSONL traces round-trip through
// the reader with parentage and ordering intact, the disabled sink costs
// nothing and crashes nothing, the metrics registry survives concurrent
// writers, and search::postmortem pins the divergence depth and needed
// rule from a trace — synthetic first, then a real traced search.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "obs/TraceFile.h"

#include "analysis/Derivations.h"
#include "descriptions/Descriptions.h"
#include "search/Canon.h"
#include "search/Postmortem.h"
#include "search/Searcher.h"
#include "transform/Transform.h"

#include <gtest/gtest.h>
#include <sstream>
#include <thread>

using namespace extra;

namespace {

//===----------------------------------------------------------------------===//
// Payload and escaping
//===----------------------------------------------------------------------===//

TEST(ObsPayload, RendersTypedValues) {
  obs::Payload P;
  P.add("s", "text").add("u", uint64_t(7)).add("i", int64_t(-3));
  P.add("d", 2.5).add("b", true).addHex("fp", uint64_t(0xdeadbeef));
  std::string R = P.rendered();
  EXPECT_NE(R.find("\"s\":\"text\""), std::string::npos);
  EXPECT_NE(R.find("\"u\":7"), std::string::npos);
  EXPECT_NE(R.find("\"i\":-3"), std::string::npos);
  EXPECT_NE(R.find("\"b\":true"), std::string::npos);
  EXPECT_NE(R.find("\"fp\":\"0x00000000deadbeef\""), std::string::npos);
  EXPECT_EQ(R[0], ',') << "payload fragment must lead with a comma";
}

TEST(ObsPayload, EscapesJsonMetacharacters) {
  EXPECT_EQ(obs::jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

//===----------------------------------------------------------------------===//
// Sink round-trip
//===----------------------------------------------------------------------===//

TEST(ObsTrace, RoundTripParentageAndOrdering) {
  std::ostringstream OS;
  uint64_t Outer = 0, Inner = 0;
  {
    obs::JsonlTraceSink Sink(OS);
    EXPECT_TRUE(Sink.enabled());
    Outer = Sink.beginSpan("outer", 0,
                           obs::Payload().add("case", "t/x"));
    Inner = Sink.beginSpan("inner", Outer, obs::Payload());
    Sink.event("tick", Inner,
               obs::Payload().add("n", 1u).addHex("fp", uint64_t(0xabcd)));
    Sink.event("tick", Inner, obs::Payload().add("n", 2u));
    Sink.endSpan(Inner);
    Sink.endSpan(Outer);
    EXPECT_EQ(Sink.recordCount(), 4u);
  }
  std::istringstream In(OS.str());
  std::string Err;
  auto Trace = obs::readTrace(In, &Err);
  ASSERT_TRUE(Trace.has_value()) << Err;
  ASSERT_EQ(Trace->size(), 4u);

  const obs::TraceRecord *OuterR = nullptr, *InnerR = nullptr;
  std::vector<const obs::TraceRecord *> Ticks;
  for (const obs::TraceRecord &R : *Trace) {
    if (R.K == obs::TraceRecord::Kind::Span && R.Name == "outer")
      OuterR = &R;
    else if (R.K == obs::TraceRecord::Kind::Span && R.Name == "inner")
      InnerR = &R;
    else if (R.Name == "tick")
      Ticks.push_back(&R);
  }
  ASSERT_NE(OuterR, nullptr);
  ASSERT_NE(InnerR, nullptr);
  ASSERT_EQ(Ticks.size(), 2u);

  EXPECT_EQ(OuterR->Id, Outer);
  EXPECT_EQ(OuterR->Parent, 0u);
  EXPECT_EQ(InnerR->Parent, Outer);
  EXPECT_EQ(Ticks[0]->Span, Inner);
  EXPECT_EQ(OuterR->field("case"), "t/x");
  EXPECT_EQ(Ticks[0]->fieldU64("fp"), 0xabcdu);
  EXPECT_EQ(Ticks[0]->fieldU64("n"), 1u);
  EXPECT_EQ(Ticks[1]->fieldU64("n"), 2u);

  // Sequence numbers are unique, dense, and in file order; event
  // timestamps are monotonic in sequence order (span records carry
  // their *start* time, so they are excluded).
  uint64_t PrevSeq = 0, PrevEventTs = 0;
  bool First = true;
  for (const obs::TraceRecord &R : *Trace) {
    if (!First) {
      EXPECT_EQ(R.Seq, PrevSeq + 1);
    }
    First = false;
    PrevSeq = R.Seq;
    if (R.K == obs::TraceRecord::Kind::Event) {
      EXPECT_GE(R.TsUs, PrevEventTs);
      PrevEventTs = R.TsUs;
    }
  }
  // A span's wall time covers its children's lifetime.
  EXPECT_GE(OuterR->WallUs, InnerR->WallUs);
}

TEST(ObsTrace, DestructorClosesOpenSpans) {
  std::ostringstream OS;
  {
    obs::JsonlTraceSink Sink(OS);
    Sink.beginSpan("left-open", 0, obs::Payload());
  }
  std::istringstream In(OS.str());
  auto Trace = obs::readTrace(In);
  ASSERT_TRUE(Trace.has_value());
  ASSERT_EQ(Trace->size(), 1u);
  EXPECT_EQ((*Trace)[0].Name, "left-open");
}

TEST(ObsTrace, NoopSinkIsDisabledAndSafe) {
  obs::TraceSink &T = obs::TraceSink::noop();
  EXPECT_FALSE(T.enabled());
  EXPECT_EQ(T.beginSpan("x", 0), 0u);
  T.event("e", 0);
  T.endSpan(0);
  obs::ScopedSpan S(T, "scoped");
  EXPECT_EQ(S.id(), 0u);
  S.event("e"); // Must not crash or emit.
}

TEST(ObsTraceFile, RejectsMalformedLines) {
  std::istringstream In("{\"t\":\"event\",\"seq\":1,\"name\":\"a\"}\n"
                        "this is not json\n");
  std::string Err;
  auto Trace = obs::readTrace(In, &Err);
  EXPECT_FALSE(Trace.has_value());
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(ObsMetrics, CountersAndHistograms) {
  obs::Metrics M;
  M.counter("a.b").add();
  M.counter("a.b").add(4);
  EXPECT_EQ(M.counter("a.b").value(), 5u);

  obs::Histogram &H = M.histogram("lat");
  for (uint64_t V : {1u, 2u, 4u, 100u, 1000u})
    H.record(V);
  obs::Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 5u);
  EXPECT_EQ(S.Sum, 1107u);
  EXPECT_EQ(S.Min, 1u);
  EXPECT_EQ(S.Max, 1000u);
  EXPECT_GE(S.P50, 2u);   // Bucket upper bounds: estimates, not exact.
  EXPECT_LE(S.P50, 128u);
  EXPECT_GE(S.P99, S.P50);

  std::string J = M.json();
  EXPECT_NE(J.find("\"a.b\":5"), std::string::npos) << J;
  EXPECT_NE(J.find("\"lat\""), std::string::npos) << J;
}

TEST(ObsMetrics, ConcurrentWritersSumExactly) {
  obs::Metrics M;
  constexpr unsigned Threads = 4, PerThread = 10000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&M] {
      for (unsigned I = 0; I < PerThread; ++I) {
        M.counter("shared").add();
        M.histogram("h").record(I);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(M.counter("shared").value(), uint64_t(Threads) * PerThread);
  EXPECT_EQ(M.histogram("h").snapshot().Count,
            uint64_t(Threads) * PerThread);
}

//===----------------------------------------------------------------------===//
// Postmortem on a synthetic trace
//===----------------------------------------------------------------------===//

/// Fingerprints of every prefix of one side of a recorded derivation.
std::vector<uint64_t> prefixFps(const std::string &DescId,
                                const transform::Script &S) {
  auto D = descriptions::load(DescId);
  EXPECT_TRUE(D) << DescId;
  transform::Engine E(std::move(*D));
  std::vector<uint64_t> Fps{search::fingerprint(E.current())};
  for (const transform::Step &St : S) {
    EXPECT_TRUE(E.apply(St).Applied) << St.str();
    Fps.push_back(search::fingerprint(E.current()));
  }
  return Fps;
}

/// A recorded case with at least one step on each side.
const analysis::AnalysisCase &twoSidedCase() {
  for (const analysis::AnalysisCase &C : analysis::table2Cases())
    if (!C.OperatorScript.empty() && !C.InstructionScript.empty())
      return C;
  ADD_FAILURE() << "no two-sided recorded case in the library";
  return analysis::table2Cases().front();
}

TEST(Postmortem, SyntheticTracePinsDivergence) {
  const analysis::AnalysisCase &Case = twoSidedCase();
  std::vector<uint64_t> FpOp = prefixFps(Case.OperatorId,
                                         Case.OperatorScript);
  std::vector<uint64_t> FpInst = prefixFps(Case.InstructionId,
                                           Case.InstructionScript);

  // Script the story: the beam holds the line to depth 1 (one operator
  // step applied), then at depth 2 keeps only an off-line state while
  // the on-line successor — the first recorded *instruction* step —
  // loses to the score cutoff.
  std::ostringstream OS;
  {
    obs::JsonlTraceSink Sink(OS);
    uint64_t S = Sink.beginSpan("search", 0,
                                obs::Payload().add("case", Case.Id));
    uint64_t R0 = Sink.beginSpan(
        "round", S, obs::Payload().add("round", 0u).add("width", 8u));
    auto State = [&](uint64_t O, uint64_t I, unsigned Depth) {
      return obs::Payload()
          .add("depth", Depth)
          .add("round", 0u)
          .addHex("fp_op", O)
          .addHex("fp_inst", I)
          .add("score", 10.0 - Depth)
          .add("distance", 10u - Depth);
    };
    Sink.event("frontier", R0, State(FpOp[0], FpInst[0], 0));
    uint64_t D1 = Sink.beginSpan(
        "depth", R0, obs::Payload().add("depth", 1u).add("round", 0u));
    Sink.event("frontier", D1, State(FpOp[1], FpInst[0], 1));
    Sink.endSpan(D1);
    uint64_t D2 = Sink.beginSpan(
        "depth", R0, obs::Payload().add("depth", 2u).add("round", 0u));
    Sink.event("frontier", D2, State(0x1234, 0x5678, 2)); // off-line
    Sink.event("prune", D2,
               State(FpOp[1], FpInst[1], 2)
                   .add("reason", "score-cutoff")
                   .add("cutoff", 7.25)
                   .add("rule", Case.InstructionScript[0].Rule)
                   .add("side", "instruction"));
    Sink.endSpan(D2);
    Sink.endSpan(R0);
    Sink.endSpan(S);
  }

  std::istringstream In(OS.str());
  std::string Err;
  auto Trace = obs::readTrace(In, &Err);
  ASSERT_TRUE(Trace.has_value()) << Err;

  search::PostmortemReport Rep = search::postmortem(*Trace, Case);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  EXPECT_EQ(Rep.Case, Case.Id);
  EXPECT_FALSE(Rep.GoalReached);
  ASSERT_TRUE(Rep.Diverged);
  EXPECT_EQ(Rep.DivergenceDepth, 2u);
  EXPECT_EQ(Rep.RecordedOpSteps, 1u);
  EXPECT_EQ(Rep.RecordedInstSteps, 0u);
  EXPECT_EQ(Rep.NeededSide, "instruction");
  EXPECT_EQ(Rep.NeededRule, Case.InstructionScript[0].str());
  EXPECT_EQ(Rep.PruneReason, "score-cutoff");
  EXPECT_DOUBLE_EQ(Rep.CutoffScore, 7.25);
  EXPECT_EQ(Rep.PruneBreakdown.at("score-cutoff"), 1u);
  EXPECT_GT(Rep.CandidatePool, 0);
  // The rendering names the essentials.
  std::string S = Rep.str();
  EXPECT_NE(S.find("depth 2"), std::string::npos) << S;
  EXPECT_NE(S.find("score-cutoff"), std::string::npos) << S;
}

TEST(Postmortem, SurvivingLineReportsNoDivergence) {
  const analysis::AnalysisCase &Case = twoSidedCase();
  std::vector<uint64_t> FpOp = prefixFps(Case.OperatorId,
                                         Case.OperatorScript);
  std::vector<uint64_t> FpInst = prefixFps(Case.InstructionId,
                                           Case.InstructionScript);
  std::ostringstream OS;
  {
    obs::JsonlTraceSink Sink(OS);
    uint64_t S = Sink.beginSpan("search", 0,
                                obs::Payload().add("case", Case.Id));
    uint64_t R0 = Sink.beginSpan(
        "round", S, obs::Payload().add("round", 0u).add("width", 8u));
    Sink.event("frontier", R0,
               obs::Payload()
                   .add("depth", 0u)
                   .add("round", 0u)
                   .addHex("fp_op", FpOp[0])
                   .addHex("fp_inst", FpInst[0]));
    uint64_t D1 = Sink.beginSpan(
        "depth", R0, obs::Payload().add("depth", 1u).add("round", 0u));
    Sink.event("frontier", D1,
               obs::Payload()
                   .add("depth", 1u)
                   .add("round", 0u)
                   .addHex("fp_op", FpOp[1])
                   .addHex("fp_inst", FpInst[0]));
    Sink.endSpan(D1);
    Sink.endSpan(R0);
    Sink.endSpan(S);
  }
  std::istringstream In(OS.str());
  auto Trace = obs::readTrace(In);
  ASSERT_TRUE(Trace.has_value());
  search::PostmortemReport Rep = search::postmortem(*Trace, Case);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  EXPECT_FALSE(Rep.Diverged);
}

//===----------------------------------------------------------------------===//
// A real traced search end to end
//===----------------------------------------------------------------------===//

TEST(ObsSearch, TracedDiscoveryProducesParseableTrace) {
  auto Operator = descriptions::load("pc2.copy");
  auto Instruction = descriptions::load("vax.movc3");
  ASSERT_TRUE(Operator && Instruction);

  std::ostringstream OS;
  obs::Metrics Met;
  search::SearchOutcome Out;
  {
    obs::JsonlTraceSink Sink(OS);
    search::SearchLimits Limits;
    Limits.Trace = &Sink;
    Limits.Metrics = &Met;
    Limits.TraceLabel = "vax.movc3/pc2.copy";
    Out = search::searchDerivation(*Operator, *Instruction, Limits);
  }
  EXPECT_TRUE(Out.Found);

  std::istringstream In(OS.str());
  std::string Err;
  auto Trace = obs::readTrace(In, &Err);
  ASSERT_TRUE(Trace.has_value()) << Err;

  unsigned SearchSpans = 0, Frontiers = 0, Goals = 0;
  for (const obs::TraceRecord &R : *Trace) {
    if (R.K == obs::TraceRecord::Kind::Span && R.Name == "search") {
      ++SearchSpans;
      EXPECT_EQ(R.field("case"), "vax.movc3/pc2.copy");
    }
    if (R.Name == "frontier")
      ++Frontiers;
    if (R.Name == "goal")
      ++Goals;
  }
  EXPECT_EQ(SearchSpans, 1u);
  EXPECT_GT(Frontiers, 0u);
  EXPECT_EQ(Goals, 1u);

  // The metrics registry saw the search: per-rule applies, beam shape,
  // and verify outcomes all land under their taxonomy names.
  bool RuleApplies = false;
  for (const auto &[Name, Value] : Met.counters())
    if (Name.rfind("rule.apply.", 0) == 0 && Value > 0)
      RuleApplies = true;
  EXPECT_TRUE(RuleApplies);
  EXPECT_GT(Met.histogram("search.beam.children").snapshot().Count, 0u);
  EXPECT_GT(Met.counter("verify.pass").value(), 0u);
}

} // namespace
