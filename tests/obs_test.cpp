//===- obs_test.cpp - Tracing, metrics, and postmortem tests ----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// The observability layer's contract: JSONL traces round-trip through
// the reader with parentage and ordering intact, the disabled sink costs
// nothing and crashes nothing, the metrics registry survives concurrent
// writers, and search::postmortem pins the divergence depth and needed
// rule from a trace — synthetic first, then a real traced search.
//
//===----------------------------------------------------------------------===//

#include "obs/BenchDiff.h"
#include "obs/Exposition.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/Progress.h"
#include "obs/Trace.h"
#include "obs/TraceFile.h"

#include "analysis/Derivations.h"
#include "descriptions/Descriptions.h"
#include "search/Canon.h"
#include "search/Postmortem.h"
#include "search/Searcher.h"
#include "transform/Transform.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <thread>

using namespace extra;

namespace {

//===----------------------------------------------------------------------===//
// Payload and escaping
//===----------------------------------------------------------------------===//

TEST(ObsPayload, RendersTypedValues) {
  obs::Payload P;
  P.add("s", "text").add("u", uint64_t(7)).add("i", int64_t(-3));
  P.add("d", 2.5).add("b", true).addHex("fp", uint64_t(0xdeadbeef));
  std::string R = P.rendered();
  EXPECT_NE(R.find("\"s\":\"text\""), std::string::npos);
  EXPECT_NE(R.find("\"u\":7"), std::string::npos);
  EXPECT_NE(R.find("\"i\":-3"), std::string::npos);
  EXPECT_NE(R.find("\"b\":true"), std::string::npos);
  EXPECT_NE(R.find("\"fp\":\"0x00000000deadbeef\""), std::string::npos);
  EXPECT_EQ(R[0], ',') << "payload fragment must lead with a comma";
}

TEST(ObsPayload, EscapesJsonMetacharacters) {
  EXPECT_EQ(obs::jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

//===----------------------------------------------------------------------===//
// Sink round-trip
//===----------------------------------------------------------------------===//

TEST(ObsTrace, RoundTripParentageAndOrdering) {
  std::ostringstream OS;
  uint64_t Outer = 0, Inner = 0;
  {
    obs::JsonlTraceSink Sink(OS);
    EXPECT_TRUE(Sink.enabled());
    Outer = Sink.beginSpan("outer", 0,
                           obs::Payload().add("case", "t/x"));
    Inner = Sink.beginSpan("inner", Outer, obs::Payload());
    Sink.event("tick", Inner,
               obs::Payload().add("n", 1u).addHex("fp", uint64_t(0xabcd)));
    Sink.event("tick", Inner, obs::Payload().add("n", 2u));
    Sink.endSpan(Inner);
    Sink.endSpan(Outer);
    EXPECT_EQ(Sink.recordCount(), 4u);
  }
  std::istringstream In(OS.str());
  std::string Err;
  auto Trace = obs::readTrace(In, &Err);
  ASSERT_TRUE(Trace.has_value()) << Err;
  ASSERT_EQ(Trace->size(), 4u);

  const obs::TraceRecord *OuterR = nullptr, *InnerR = nullptr;
  std::vector<const obs::TraceRecord *> Ticks;
  for (const obs::TraceRecord &R : *Trace) {
    if (R.K == obs::TraceRecord::Kind::Span && R.Name == "outer")
      OuterR = &R;
    else if (R.K == obs::TraceRecord::Kind::Span && R.Name == "inner")
      InnerR = &R;
    else if (R.Name == "tick")
      Ticks.push_back(&R);
  }
  ASSERT_NE(OuterR, nullptr);
  ASSERT_NE(InnerR, nullptr);
  ASSERT_EQ(Ticks.size(), 2u);

  EXPECT_EQ(OuterR->Id, Outer);
  EXPECT_EQ(OuterR->Parent, 0u);
  EXPECT_EQ(InnerR->Parent, Outer);
  EXPECT_EQ(Ticks[0]->Span, Inner);
  EXPECT_EQ(OuterR->field("case"), "t/x");
  EXPECT_EQ(Ticks[0]->fieldU64("fp"), 0xabcdu);
  EXPECT_EQ(Ticks[0]->fieldU64("n"), 1u);
  EXPECT_EQ(Ticks[1]->fieldU64("n"), 2u);

  // Sequence numbers are unique, dense, and in file order; event
  // timestamps are monotonic in sequence order (span records carry
  // their *start* time, so they are excluded).
  uint64_t PrevSeq = 0, PrevEventTs = 0;
  bool First = true;
  for (const obs::TraceRecord &R : *Trace) {
    if (!First) {
      EXPECT_EQ(R.Seq, PrevSeq + 1);
    }
    First = false;
    PrevSeq = R.Seq;
    if (R.K == obs::TraceRecord::Kind::Event) {
      EXPECT_GE(R.TsUs, PrevEventTs);
      PrevEventTs = R.TsUs;
    }
  }
  // A span's wall time covers its children's lifetime.
  EXPECT_GE(OuterR->WallUs, InnerR->WallUs);
}

TEST(ObsTrace, DestructorClosesOpenSpans) {
  std::ostringstream OS;
  {
    obs::JsonlTraceSink Sink(OS);
    Sink.beginSpan("left-open", 0, obs::Payload());
  }
  std::istringstream In(OS.str());
  auto Trace = obs::readTrace(In);
  ASSERT_TRUE(Trace.has_value());
  ASSERT_EQ(Trace->size(), 1u);
  EXPECT_EQ((*Trace)[0].Name, "left-open");
}

TEST(ObsTrace, NoopSinkIsDisabledAndSafe) {
  obs::TraceSink &T = obs::TraceSink::noop();
  EXPECT_FALSE(T.enabled());
  EXPECT_EQ(T.beginSpan("x", 0), 0u);
  T.event("e", 0);
  T.endSpan(0);
  obs::ScopedSpan S(T, "scoped");
  EXPECT_EQ(S.id(), 0u);
  S.event("e"); // Must not crash or emit.
}

TEST(ObsTraceFile, RejectsMalformedLines) {
  std::istringstream In("{\"t\":\"event\",\"seq\":1,\"name\":\"a\"}\n"
                        "this is not json\n");
  std::string Err;
  auto Trace = obs::readTrace(In, &Err);
  EXPECT_FALSE(Trace.has_value());
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(ObsMetrics, CountersAndHistograms) {
  obs::Metrics M;
  M.counter("a.b").add();
  M.counter("a.b").add(4);
  EXPECT_EQ(M.counter("a.b").value(), 5u);

  obs::Histogram &H = M.histogram("lat");
  for (uint64_t V : {1u, 2u, 4u, 100u, 1000u})
    H.record(V);
  obs::Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 5u);
  EXPECT_EQ(S.Sum, 1107u);
  EXPECT_EQ(S.Min, 1u);
  EXPECT_EQ(S.Max, 1000u);
  EXPECT_GE(S.P50, 2u);   // Bucket upper bounds: estimates, not exact.
  EXPECT_LE(S.P50, 128u);
  EXPECT_GE(S.P99, S.P50);

  std::string J = M.json();
  EXPECT_NE(J.find("\"a.b\":5"), std::string::npos) << J;
  EXPECT_NE(J.find("\"lat\""), std::string::npos) << J;
}

TEST(ObsMetrics, ConcurrentWritersSumExactly) {
  obs::Metrics M;
  constexpr unsigned Threads = 4, PerThread = 10000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&M] {
      for (unsigned I = 0; I < PerThread; ++I) {
        M.counter("shared").add();
        M.histogram("h").record(I);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(M.counter("shared").value(), uint64_t(Threads) * PerThread);
  EXPECT_EQ(M.histogram("h").snapshot().Count,
            uint64_t(Threads) * PerThread);
}

//===----------------------------------------------------------------------===//
// Postmortem on a synthetic trace
//===----------------------------------------------------------------------===//

/// Fingerprints of every prefix of one side of a recorded derivation.
std::vector<uint64_t> prefixFps(const std::string &DescId,
                                const transform::Script &S) {
  auto D = descriptions::load(DescId);
  EXPECT_TRUE(D) << DescId;
  transform::Engine E(std::move(*D));
  std::vector<uint64_t> Fps{search::fingerprint(E.current())};
  for (const transform::Step &St : S) {
    EXPECT_TRUE(E.apply(St).Applied) << St.str();
    Fps.push_back(search::fingerprint(E.current()));
  }
  return Fps;
}

/// A recorded case with at least one step on each side.
const analysis::AnalysisCase &twoSidedCase() {
  for (const analysis::AnalysisCase &C : analysis::table2Cases())
    if (!C.OperatorScript.empty() && !C.InstructionScript.empty())
      return C;
  ADD_FAILURE() << "no two-sided recorded case in the library";
  return analysis::table2Cases().front();
}

TEST(Postmortem, SyntheticTracePinsDivergence) {
  const analysis::AnalysisCase &Case = twoSidedCase();
  std::vector<uint64_t> FpOp = prefixFps(Case.OperatorId,
                                         Case.OperatorScript);
  std::vector<uint64_t> FpInst = prefixFps(Case.InstructionId,
                                           Case.InstructionScript);

  // Script the story: the beam holds the line to depth 1 (one operator
  // step applied), then at depth 2 keeps only an off-line state while
  // the on-line successor — the first recorded *instruction* step —
  // loses to the score cutoff.
  std::ostringstream OS;
  {
    obs::JsonlTraceSink Sink(OS);
    uint64_t S = Sink.beginSpan("search", 0,
                                obs::Payload().add("case", Case.Id));
    uint64_t R0 = Sink.beginSpan(
        "round", S, obs::Payload().add("round", 0u).add("width", 8u));
    auto State = [&](uint64_t O, uint64_t I, unsigned Depth) {
      return obs::Payload()
          .add("depth", Depth)
          .add("round", 0u)
          .addHex("fp_op", O)
          .addHex("fp_inst", I)
          .add("score", 10.0 - Depth)
          .add("distance", 10u - Depth);
    };
    Sink.event("frontier", R0, State(FpOp[0], FpInst[0], 0));
    uint64_t D1 = Sink.beginSpan(
        "depth", R0, obs::Payload().add("depth", 1u).add("round", 0u));
    Sink.event("frontier", D1, State(FpOp[1], FpInst[0], 1));
    Sink.endSpan(D1);
    uint64_t D2 = Sink.beginSpan(
        "depth", R0, obs::Payload().add("depth", 2u).add("round", 0u));
    Sink.event("frontier", D2, State(0x1234, 0x5678, 2)); // off-line
    Sink.event("prune", D2,
               State(FpOp[1], FpInst[1], 2)
                   .add("reason", "score-cutoff")
                   .add("cutoff", 7.25)
                   .add("rule", Case.InstructionScript[0].Rule)
                   .add("side", "instruction"));
    Sink.endSpan(D2);
    Sink.endSpan(R0);
    Sink.endSpan(S);
  }

  std::istringstream In(OS.str());
  std::string Err;
  auto Trace = obs::readTrace(In, &Err);
  ASSERT_TRUE(Trace.has_value()) << Err;

  search::PostmortemReport Rep = search::postmortem(*Trace, Case);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  EXPECT_EQ(Rep.Case, Case.Id);
  EXPECT_FALSE(Rep.GoalReached);
  ASSERT_TRUE(Rep.Diverged);
  EXPECT_EQ(Rep.DivergenceDepth, 2u);
  EXPECT_EQ(Rep.RecordedOpSteps, 1u);
  EXPECT_EQ(Rep.RecordedInstSteps, 0u);
  EXPECT_EQ(Rep.NeededSide, "instruction");
  EXPECT_EQ(Rep.NeededRule, Case.InstructionScript[0].str());
  EXPECT_EQ(Rep.PruneReason, "score-cutoff");
  EXPECT_DOUBLE_EQ(Rep.CutoffScore, 7.25);
  EXPECT_EQ(Rep.PruneBreakdown.at("score-cutoff"), 1u);
  EXPECT_GT(Rep.CandidatePool, 0);
  // The rendering names the essentials.
  std::string S = Rep.str();
  EXPECT_NE(S.find("depth 2"), std::string::npos) << S;
  EXPECT_NE(S.find("score-cutoff"), std::string::npos) << S;
}

TEST(Postmortem, SurvivingLineReportsNoDivergence) {
  const analysis::AnalysisCase &Case = twoSidedCase();
  std::vector<uint64_t> FpOp = prefixFps(Case.OperatorId,
                                         Case.OperatorScript);
  std::vector<uint64_t> FpInst = prefixFps(Case.InstructionId,
                                           Case.InstructionScript);
  std::ostringstream OS;
  {
    obs::JsonlTraceSink Sink(OS);
    uint64_t S = Sink.beginSpan("search", 0,
                                obs::Payload().add("case", Case.Id));
    uint64_t R0 = Sink.beginSpan(
        "round", S, obs::Payload().add("round", 0u).add("width", 8u));
    Sink.event("frontier", R0,
               obs::Payload()
                   .add("depth", 0u)
                   .add("round", 0u)
                   .addHex("fp_op", FpOp[0])
                   .addHex("fp_inst", FpInst[0]));
    uint64_t D1 = Sink.beginSpan(
        "depth", R0, obs::Payload().add("depth", 1u).add("round", 0u));
    Sink.event("frontier", D1,
               obs::Payload()
                   .add("depth", 1u)
                   .add("round", 0u)
                   .addHex("fp_op", FpOp[1])
                   .addHex("fp_inst", FpInst[0]));
    Sink.endSpan(D1);
    Sink.endSpan(R0);
    Sink.endSpan(S);
  }
  std::istringstream In(OS.str());
  auto Trace = obs::readTrace(In);
  ASSERT_TRUE(Trace.has_value());
  search::PostmortemReport Rep = search::postmortem(*Trace, Case);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  EXPECT_FALSE(Rep.Diverged);
}

//===----------------------------------------------------------------------===//
// A real traced search end to end
//===----------------------------------------------------------------------===//

TEST(ObsSearch, TracedDiscoveryProducesParseableTrace) {
  auto Operator = descriptions::load("pc2.copy");
  auto Instruction = descriptions::load("vax.movc3");
  ASSERT_TRUE(Operator && Instruction);

  std::ostringstream OS;
  obs::Metrics Met;
  search::SearchOutcome Out;
  {
    obs::JsonlTraceSink Sink(OS);
    search::SearchLimits Limits;
    Limits.Trace = &Sink;
    Limits.Metrics = &Met;
    Limits.TraceLabel = "vax.movc3/pc2.copy";
    Out = search::searchDerivation(*Operator, *Instruction, Limits);
  }
  EXPECT_TRUE(Out.Found);

  std::istringstream In(OS.str());
  std::string Err;
  auto Trace = obs::readTrace(In, &Err);
  ASSERT_TRUE(Trace.has_value()) << Err;

  unsigned SearchSpans = 0, Frontiers = 0, Goals = 0;
  for (const obs::TraceRecord &R : *Trace) {
    if (R.K == obs::TraceRecord::Kind::Span && R.Name == "search") {
      ++SearchSpans;
      EXPECT_EQ(R.field("case"), "vax.movc3/pc2.copy");
    }
    if (R.Name == "frontier")
      ++Frontiers;
    if (R.Name == "goal")
      ++Goals;
  }
  EXPECT_EQ(SearchSpans, 1u);
  EXPECT_GT(Frontiers, 0u);
  EXPECT_EQ(Goals, 1u);

  // The metrics registry saw the search: per-rule applies, beam shape,
  // and verify outcomes all land under their taxonomy names.
  bool RuleApplies = false;
  for (const auto &[Name, Value] : Met.counters())
    if (Name.rfind("rule.apply.", 0) == 0 && Value > 0)
      RuleApplies = true;
  EXPECT_TRUE(RuleApplies);
  EXPECT_GT(Met.histogram("search.beam.children").snapshot().Count, 0u);
  EXPECT_GT(Met.counter("verify.pass").value(), 0u);
}

//===----------------------------------------------------------------------===//
// Prometheus exposition
//===----------------------------------------------------------------------===//

TEST(ObsExposition, FoldsNamesAndKeepsOriginalAsLabel) {
  EXPECT_EQ(obs::prometheusName("rule.apply.fold-constant"),
            "extra_rule_apply_fold_constant");
  EXPECT_EQ(obs::prometheusName("verify.pass"), "extra_verify_pass");
}

TEST(ObsExposition, RendersAndValidatesRoundTrip) {
  obs::Metrics M;
  M.counter("verify.pass").add(5);
  M.counter("server.cache.hit").add(2);
  M.histogram("transform.apply_ns").record(1000);
  M.histogram("transform.apply_ns").record(3000);

  std::string Text = obs::prometheusText(M);
  EXPECT_NE(Text.find("# TYPE extra_verify_pass counter"), std::string::npos);
  EXPECT_NE(Text.find("extra_verify_pass{name=\"verify.pass\"} 5"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE extra_transform_apply_ns summary"),
            std::string::npos);

  std::map<std::string, double> Samples;
  std::string Err;
  ASSERT_TRUE(obs::validateExposition(Text, Samples, &Err)) << Err;
  EXPECT_EQ(Samples.at("extra_verify_pass{name=\"verify.pass\"}"), 5.0);
  EXPECT_EQ(Samples.at("extra_server_cache_hit{name=\"server.cache.hit\"}"),
            2.0);
  EXPECT_EQ(
      Samples.at("extra_transform_apply_ns_count{name=\"transform.apply_ns\"}"),
      2.0);
  EXPECT_EQ(
      Samples.at("extra_transform_apply_ns_sum{name=\"transform.apply_ns\"}"),
      4000.0);
  // Quantile samples carry an extra label each.
  unsigned Quantiles = 0;
  for (const auto &[Key, Value] : Samples) {
    (void)Value;
    if (Key.find("quantile=") != std::string::npos)
      ++Quantiles;
  }
  EXPECT_EQ(Quantiles, 3u);
}

TEST(ObsExposition, RejectsMalformedTextWithLineNumber) {
  std::map<std::string, double> Samples;
  std::string Err;
  EXPECT_FALSE(obs::validateExposition("extra_ok 1\nbogus line here\n",
                                       Samples, &Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;

  Samples.clear();
  EXPECT_FALSE(obs::validateExposition("# only a comment\n", Samples, &Err))
      << "an exposition with zero samples must not validate";
}

//===----------------------------------------------------------------------===//
// Trace profiler
//===----------------------------------------------------------------------===//

namespace {

obs::TraceRecord
makeSpan(uint64_t Seq, uint64_t Id, uint64_t Parent, const char *Name,
         uint64_t WallUs,
         std::map<std::string, std::string> Fields = {}) {
  obs::TraceRecord R;
  R.K = obs::TraceRecord::Kind::Span;
  R.Seq = Seq;
  R.Id = Id;
  R.Parent = Parent;
  R.Name = Name;
  R.WallUs = WallUs;
  R.Fields = std::move(Fields);
  return R;
}

obs::TraceRecord makeEvent(uint64_t Seq, const char *Name,
                           std::map<std::string, std::string> Fields) {
  obs::TraceRecord R;
  R.K = obs::TraceRecord::Kind::Event;
  R.Seq = Seq;
  R.Name = Name;
  R.Fields = std::move(Fields);
  return R;
}

const obs::ProfileStat *findStat(const std::vector<obs::ProfileStat> &Rows,
                                 const std::string &Key) {
  for (const obs::ProfileStat &S : Rows)
    if (S.Key == Key)
      return &S;
  return nullptr;
}

/// A synthetic tree with known self times:
///   search(1000) -> round(600) -> depth#1(400), depth#2(100)
///               -> verify(200)
/// Self: search 200, round 100, depth 500, verify 200. Sum == 1000.
std::vector<obs::TraceRecord> syntheticProfileTrace() {
  std::vector<obs::TraceRecord> T;
  T.push_back(makeSpan(1, 3, 2, "depth", 400, {{"depth", "1"}}));
  T.push_back(makeSpan(2, 4, 2, "depth", 100, {{"depth", "2"}}));
  T.push_back(makeSpan(3, 2, 1, "round", 600));
  T.push_back(makeSpan(4, 5, 1, "verify", 200));
  T.push_back(makeSpan(5, 1, 0, "search", 1000));
  T.push_back(makeEvent(6, "rule-apply",
                        {{"rule", "fold-constant"}, {"dur_ns", "5000"}}));
  T.push_back(makeEvent(7, "rule-apply",
                        {{"rule", "fold-constant"}, {"dur_ns", "5000"}}));
  T.push_back(
      makeEvent(8, "rule-apply", {{"rule", "swap"}, {"dur_ns", "2000"}}));
  return T;
}

} // namespace

TEST(ObsProfile, SelfTimeAccountsForTracedWallExactly) {
  obs::ProfileReport R = obs::profileTrace(syntheticProfileTrace());
  EXPECT_EQ(R.Spans, 5u);
  EXPECT_EQ(R.Events, 3u);
  EXPECT_EQ(R.TracedWallUs, 1000u);
  // The invariant the rollup rests on: summing self over every span of
  // the tree reproduces the root's wall time (acceptance bound is 5%;
  // synthetic clocks make it exact).
  EXPECT_EQ(R.selfTotalUs(), R.TracedWallUs);

  const obs::ProfileStat *Depth = findStat(R.ByLabel, "depth");
  ASSERT_NE(Depth, nullptr);
  EXPECT_EQ(Depth->Count, 2u);
  EXPECT_EQ(Depth->TotalUs, 500u);
  EXPECT_EQ(Depth->SelfUs, 500u);
  EXPECT_EQ(R.ByLabel.front().Key, "depth") << "sorted by self time";

  const obs::ProfileStat *Search = findStat(R.ByLabel, "search");
  ASSERT_NE(Search, nullptr);
  EXPECT_EQ(Search->TotalUs, 1000u);
  EXPECT_EQ(Search->SelfUs, 200u);

  const obs::ProfileStat *Round = findStat(R.ByLabel, "round");
  ASSERT_NE(Round, nullptr);
  EXPECT_EQ(Round->SelfUs, 100u);
}

TEST(ObsProfile, RollsRulesFromDurNsAndDepthsInOrder) {
  obs::ProfileReport R = obs::profileTrace(syntheticProfileTrace());

  ASSERT_EQ(R.ByRule.size(), 2u);
  EXPECT_EQ(R.ByRule[0].Key, "fold-constant");
  EXPECT_EQ(R.ByRule[0].Count, 2u);
  EXPECT_EQ(R.ByRule[0].TotalUs, 10u); // 2 x 5000 ns.
  EXPECT_EQ(R.ByRule[0].SelfUs, 10u);  // Events have no children.
  EXPECT_EQ(R.ByRule[1].Key, "swap");
  EXPECT_EQ(R.ByRule[1].TotalUs, 2u);

  ASSERT_EQ(R.ByDepth.size(), 2u);
  EXPECT_EQ(R.ByDepth[0].Key, "1"); // Depth order, not time order.
  EXPECT_EQ(R.ByDepth[0].SelfUs, 400u);
  EXPECT_EQ(R.ByDepth[1].Key, "2");
  EXPECT_EQ(R.ByDepth[1].SelfUs, 100u);

  std::string Text = R.str();
  EXPECT_NE(Text.find("traced wall 1000 us"), std::string::npos);
  EXPECT_NE(Text.find("self-time accounted 1000 us"), std::string::npos);
  EXPECT_NE(Text.find("fold-constant"), std::string::npos);
}

TEST(ObsProfile, CollapsedStacksKeepTreePaths) {
  std::string Collapsed = obs::collapsedStacks(syntheticProfileTrace());
  EXPECT_EQ(Collapsed, "search 200\n"
                       "search;round 100\n"
                       "search;round;depth 500\n"
                       "search;verify 200\n");
}

//===----------------------------------------------------------------------===//
// Bench regression attribution
//===----------------------------------------------------------------------===//

TEST(ObsBenchDiff, ParsesLineWithNestedCounters) {
  std::string Err;
  auto R = obs::parseBenchLine(
      "{\"bench\":\"bench_search_discovery\",\"name\":\"discoveryReport/"
      "suite\",\"iterations\":3,\"ns_per_op\":250.5,"
      "\"counters\":{\"search.expansions_per_sec\":1200,"
      "\"server.cache.hit\":7}}",
      &Err);
  ASSERT_TRUE(R.has_value()) << Err;
  EXPECT_EQ(R->Bench, "bench_search_discovery");
  EXPECT_EQ(R->Name, "discoveryReport/suite");
  EXPECT_EQ(R->Iterations, 3u);
  EXPECT_DOUBLE_EQ(R->NsPerOp, 250.5);
  EXPECT_DOUBLE_EQ(R->Counters.at("search.expansions_per_sec"), 1200.0);
  EXPECT_DOUBLE_EQ(R->Counters.at("server.cache.hit"), 7.0);
  EXPECT_EQ(R->key(), "bench_search_discovery/discoveryReport/suite");

  EXPECT_FALSE(obs::parseBenchLine("{\"bench\":\"b\"}", &Err).has_value());
  EXPECT_FALSE(Err.empty());
}

namespace {

obs::BenchRecord benchFixture(const char *Name, double NsPerOp,
                              double ExpPerSec) {
  obs::BenchRecord R;
  R.Bench = "bench_search_discovery";
  R.Name = Name;
  R.Iterations = 10;
  R.NsPerOp = NsPerOp;
  R.Counters["search.expansions_per_sec"] = ExpPerSec;
  return R;
}

} // namespace

TEST(ObsBenchDiff, NamesTheBenchmarkAndMetricThatMoved) {
  std::vector<obs::BenchRecord> Old = {benchFixture("suite", 100, 1000),
                                       benchFixture("cow", 50, 4000),
                                       benchFixture("gone", 10, 1)};
  std::vector<obs::BenchRecord> New = {
      benchFixture("suite", 130, 1020), // ns_per_op +30%, counter +2%.
      benchFixture("cow", 51, 4010),    // Within threshold on both.
      benchFixture("fresh", 10, 1)};

  obs::BenchDiffReport D = obs::diffBenches(Old, New, 0.10);
  EXPECT_TRUE(D.anyMovement());
  EXPECT_EQ(D.Compared, 2u);
  ASSERT_EQ(D.Moved.size(), 1u);
  EXPECT_EQ(D.Moved[0].Key, "bench_search_discovery/suite");
  EXPECT_EQ(D.Moved[0].Metric, "ns_per_op");
  EXPECT_DOUBLE_EQ(D.Moved[0].Old, 100.0);
  EXPECT_DOUBLE_EQ(D.Moved[0].New, 130.0);
  EXPECT_NEAR(D.Moved[0].ratio(), 1.3, 1e-9);
  ASSERT_EQ(D.OnlyOld.size(), 1u);
  EXPECT_EQ(D.OnlyOld[0], "bench_search_discovery/gone");
  ASSERT_EQ(D.OnlyNew.size(), 1u);
  EXPECT_EQ(D.OnlyNew[0], "bench_search_discovery/fresh");

  std::string Table = D.str();
  EXPECT_NE(Table.find("ns_per_op"), std::string::npos);
  EXPECT_NE(Table.find("bench_search_discovery/suite"), std::string::npos);

  // A looser threshold swallows the 30% move.
  obs::BenchDiffReport Loose = obs::diffBenches(Old, New, 0.50);
  EXPECT_TRUE(Loose.Moved.empty());
  EXPECT_EQ(Loose.Compared, 2u);

  obs::BenchDiffReport Same = obs::diffBenches(Old, Old, 0.10);
  EXPECT_FALSE(Same.anyMovement());
  EXPECT_NE(Same.str().find("no movement"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Rotating trace sink
//===----------------------------------------------------------------------===//

namespace {

/// Temp path helper for rotation tests; removes the whole rotated set.
struct TempTrace {
  std::string Path;
  explicit TempTrace(const std::string &Name)
      : Path(::testing::TempDir() + Name) {
    cleanup();
  }
  ~TempTrace() { cleanup(); }
  void cleanup() {
    std::remove(Path.c_str());
    for (unsigned I = 1; I <= 16; ++I)
      std::remove(obs::rotatedTraceName(Path, I).c_str());
  }
};

} // namespace

TEST(ObsRotation, RotatedNamesInsertBeforeExtension) {
  EXPECT_EQ(obs::rotatedTraceName("trace.jsonl", 0), "trace.jsonl");
  EXPECT_EQ(obs::rotatedTraceName("trace.jsonl", 1), "trace.1.jsonl");
  EXPECT_EQ(obs::rotatedTraceName("/tmp/t.d/trace.jsonl", 2),
            "/tmp/t.d/trace.2.jsonl");
  EXPECT_EQ(obs::rotatedTraceName("noext", 3), "noext.3");
}

TEST(ObsRotation, RotatesAtCapAndReadTraceSetReassembles) {
  TempTrace F("obs_rotation_test.jsonl");
  uint64_t Emitted = 0;
  uint64_t Rotations = 0;
  {
    obs::RotatingTraceSink::Options Opts;
    Opts.MaxBytes = 512; // Tiny cap: a handful of records per file.
    Opts.MaxRotated = 16;
    obs::RotatingTraceSink Sink(F.Path, Opts);
    ASSERT_TRUE(Sink.ok());
    uint64_t Root = Sink.beginSpan("search", 0, obs::Payload());
    for (unsigned I = 0; I < 40; ++I)
      Sink.event("frontier", Root, obs::Payload().add("round", uint64_t(I)));
    Sink.endSpan(Root);
    Emitted = Sink.recordCount();
    Rotations = Sink.rotations();
    EXPECT_GE(Rotations, 2u);
  }
  EXPECT_EQ(Emitted, 41u);

  // The rotated generations exist on disk.
  EXPECT_TRUE(std::ifstream(obs::rotatedTraceName(F.Path, 1)).good());
  EXPECT_TRUE(std::ifstream(obs::rotatedTraceName(F.Path, Rotations)).good());

  // readTraceSet stitches oldest-first; seq stays strictly monotonic
  // across file boundaries and nothing is lost.
  std::string Err;
  auto Trace = obs::readTraceSet(F.Path, &Err);
  ASSERT_TRUE(Trace.has_value()) << Err;
  ASSERT_EQ(Trace->size(), Emitted);
  for (size_t I = 0; I < Trace->size(); ++I)
    EXPECT_EQ((*Trace)[I].Seq, I + 1);
  EXPECT_EQ(Trace->back().Name, "search");
  EXPECT_EQ(Trace->back().K, obs::TraceRecord::Kind::Span);
}

TEST(ObsRotation, MaxBytesZeroIsTheOffSwitch) {
  TempTrace F("obs_rotation_off_test.jsonl");
  {
    obs::RotatingTraceSink::Options Opts;
    Opts.MaxBytes = 0;
    obs::RotatingTraceSink Sink(F.Path, Opts);
    ASSERT_TRUE(Sink.ok());
    for (unsigned I = 0; I < 200; ++I)
      Sink.event("frontier", 0, obs::Payload().add("round", uint64_t(I)));
    EXPECT_EQ(Sink.rotations(), 0u);
  }
  EXPECT_FALSE(std::ifstream(obs::rotatedTraceName(F.Path, 1)).good());
  std::string Err;
  auto Trace = obs::readTraceSet(F.Path, &Err);
  ASSERT_TRUE(Trace.has_value()) << Err;
  EXPECT_EQ(Trace->size(), 200u);
}

//===----------------------------------------------------------------------===//
// Progress publication (seqlock)
//===----------------------------------------------------------------------===//

TEST(ObsProgress, UnpublishedReadsNothingThenRoundTrips) {
  obs::ProgressPublisher P;
  EXPECT_FALSE(P.read().has_value());
  EXPECT_EQ(P.seq(), 0u);

  obs::ProgressSnapshot S;
  S.Depth = 3;
  S.Round = 2;
  S.Frontier = 64;
  S.Expanded = 1000;
  S.Generated = 4000;
  S.HashHits = 500;
  S.MemoHits = 20;
  S.Reopened = 1;
  S.BestDistance = 7;
  P.publish(S);
  P.setRate(123.5);

  auto R = P.read();
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Seq, 1u);
  EXPECT_EQ(R->Depth, 3u);
  EXPECT_EQ(R->Frontier, 64u);
  EXPECT_EQ(R->Expanded, 1000u);
  EXPECT_EQ(R->BestDistance, 7u);
  EXPECT_DOUBLE_EQ(R->ExpansionsPerSec, 123.5);
  EXPECT_NEAR(R->hashHitRate(), 500.0 / 4500.0, 1e-12);
  EXPECT_FALSE(R->Done);
  EXPECT_EQ(P.expandedNow(), 1000u);

  P.markDone();
  EXPECT_TRUE(P.done());
  EXPECT_TRUE(P.read()->Done);
}

TEST(ObsProgress, ConcurrentReadersNeverSeeTornSnapshots) {
  // The writer publishes snapshots whose nine fields all equal the
  // publication index; any torn read mixes two indices and fails the
  // all-equal check. Readers hammer read() for the whole write burst.
  obs::ProgressPublisher P;
  constexpr uint64_t Writes = 50000;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Torn{0};

  auto Reader = [&] {
    while (!Stop.load(std::memory_order_acquire)) {
      auto S = P.read();
      if (!S)
        continue;
      uint64_t V = S->Depth;
      if (S->Round != V || S->Frontier != V || S->Expanded != V ||
          S->Generated != V || S->HashHits != V || S->MemoHits != V ||
          S->Reopened != V || S->BestDistance != V)
        Torn.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread R1(Reader), R2(Reader);

  for (uint64_t I = 1; I <= Writes; ++I) {
    obs::ProgressSnapshot S;
    S.Depth = S.Round = S.Frontier = S.Expanded = S.Generated = I;
    S.HashHits = S.MemoHits = S.Reopened = S.BestDistance = I;
    P.publish(S);
  }
  Stop.store(true, std::memory_order_release);
  R1.join();
  R2.join();

  EXPECT_EQ(Torn.load(), 0u);
  EXPECT_EQ(P.seq(), Writes);
  EXPECT_EQ(P.read()->Depth, Writes);
}

//===----------------------------------------------------------------------===//
// Metrics snapshots under concurrent recording
//===----------------------------------------------------------------------===//

TEST(ObsMetrics, SnapshotDuringRecordStaysConsistent) {
  obs::Metrics M;
  // Register both names up front: an exposition with zero samples fails
  // validation by design, and the scrapes below may win the race with
  // the first worker's add().
  M.counter("search.expansions");
  M.histogram("transform.apply_ns");
  constexpr unsigned Threads = 4, PerThread = 20000;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&M] {
      for (unsigned I = 0; I < PerThread; ++I) {
        M.counter("search.expansions").add();
        M.histogram("transform.apply_ns").record(I);
      }
    });

  // Scrape both serializations while the writers run: every snapshot
  // must be well-formed — the live `client metrics` path does exactly
  // this against a service mid-job.
  for (unsigned I = 0; I < 50; ++I) {
    std::string Json = M.json();
    EXPECT_FALSE(Json.empty());
    EXPECT_EQ(Json.front(), '{');
    EXPECT_EQ(Json.back(), '}');
    std::map<std::string, double> Samples;
    std::string Err;
    EXPECT_TRUE(obs::validateExposition(obs::prometheusText(M), Samples, &Err))
        << Err;
  }
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(M.counter("search.expansions").value(),
            uint64_t(Threads) * PerThread);
  EXPECT_EQ(M.histogram("transform.apply_ns").snapshot().Count,
            uint64_t(Threads) * PerThread);
}

} // namespace
