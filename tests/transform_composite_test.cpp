//===- transform_composite_test.cpp - Motion/loop/global rules --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "transform/Transform.h"

#include "interp/Interp.h"
#include "isdl/Parser.h"
#include "isdl/Printer.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::transform;
using namespace extra::isdl;

namespace {

std::unique_ptr<Description> desc(std::string_view Src) {
  DiagnosticEngine Diags;
  auto D = parseDescription(Src, Diags);
  EXPECT_TRUE(D && !Diags.hasErrors()) << Diags.str();
  return D;
}

/// A searcher in the shape of Rigel `index` (Figure 2), minus the access
/// routine (memory inline) so the loop rules can be tested in isolation.
constexpr const char *SearchSource = R"(
t := begin
  ** S **
    base: integer,
    idx: integer,
    len: integer,
    ch: character,
    found<>,
    t.execute := begin
      input (base, len, ch);
      idx <- 0;
      repeat
        exit_when (len = 0);
        exit_when (ch = Mb[base + idx]);
        idx <- idx + 1;
        len <- len - 1;
      end_repeat;
      if len = 0 then
        output (0);
      else
        output (idx);
      end_if;
    end
end
)";

//===----------------------------------------------------------------------===//
// Code motion
//===----------------------------------------------------------------------===//

TEST(CodeMotionTest, MoveUpAcrossIndependent) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer, b: integer, c: integer, d: integer,
    t.execute := begin
      input (a, b);
      c <- a + 1;
      d <- b + 1;
      output (c, d);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"move-up", "", {{"var", "d"}}}).Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_LT(Out.find("d <- b + 1;"), Out.find("c <- a + 1;"));
}

TEST(CodeMotionTest, MoveUpRefusesDependent) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer, b: integer,
    t.execute := begin
      input (a);
      b <- a + 1;
      a <- 7;
      output (a, b);
    end
end
)");
  Engine E(D->clone());
  ApplyResult R = E.apply({"move-up", "", {{"var", "a"}}});
  EXPECT_FALSE(R.Applied);
  EXPECT_NE(R.Reason.find("not independent"), std::string::npos);
}

TEST(CodeMotionTest, MoveAcrossExitRequiresDeadness) {
  // `n` is dead after the loop (the discriminator uses `found` only), so
  // the decrement may cross the second exit.
  auto D = desc(R"(
t := begin
  ** S **
    n: integer, found<>, s: integer,
    t.execute := begin
      input (n, s);
      repeat
        exit_when (n = 0);
        found <- s = n;
        exit_when (found);
        n <- n - 1;
      end_repeat;
      if found then output (1); else output (0); end_if;
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"move-up", "", {{"var", "n"}}}).Applied)
      << printStmts(E.current().entryRoutine()->Body);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_LT(Out.find("n <- n - 1;"), Out.find("exit_when (found);"));
}

TEST(CodeMotionTest, MoveAcrossExitRefusedWhenLive) {
  // Here `n` is output after the loop, so it is live on the exit path
  // and the decrement must not cross the exit.
  auto D = desc(R"(
t := begin
  ** S **
    n: integer, found<>, s: integer,
    t.execute := begin
      input (n, s);
      repeat
        exit_when (n = 0);
        found <- s = n;
        exit_when (found);
        n <- n - 1;
      end_repeat;
      output (n);
    end
end
)");
  Engine E(D->clone());
  ApplyResult R = E.apply({"move-up", "", {{"var", "n"}}});
  EXPECT_FALSE(R.Applied);
  EXPECT_NE(R.Reason.find("live on the loop-exit path"), std::string::npos);
}

TEST(CodeMotionTest, SinkCommonTail) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer, x: integer,
    t.execute := begin
      input (a);
      if a = 0 then
        x <- 1;
        a <- a + 1;
      else
        x <- 2;
        a <- a + 1;
      end_if;
      output (a, x);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"sink-common-tail", "", {}}).Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  // Exactly one copy of the tail remains, after the if.
  EXPECT_LT(Out.find("end_if;"), Out.find("a <- a + 1;"));
}

TEST(CodeMotionTest, HoistFromIfRefusesCondDependence) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer, x: integer,
    t.execute := begin
      input (a);
      if a = 0 then
        a <- a + 1;
        x <- 1;
      else
        a <- a + 1;
        x <- 2;
      end_if;
      output (a, x);
    end
end
)");
  // The common head writes `a`, which the condition reads: refuse.
  Engine E(D->clone());
  EXPECT_FALSE(E.apply({"hoist-from-if", "", {}}).Applied);
}

//===----------------------------------------------------------------------===//
// Loop rules
//===----------------------------------------------------------------------===//

TEST(LoopRuleTest, RecordExitCauseRewritesDiscriminator) {
  auto D = desc(SearchSource);
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"record-exit-cause", "", {{"flag", "found"}}}).Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Out.find("found <- 0;"), std::string::npos);
  EXPECT_NE(Out.find("exit_when (found);"), std::string::npos);
  EXPECT_NE(Out.find("if found then"), std::string::npos);
  // Arms swapped: found -> output(idx).
  size_t IfPos = Out.find("if found then");
  EXPECT_LT(IfPos, Out.find("output (idx);"));
  EXPECT_LT(Out.find("output (idx);"), Out.find("output (0);"));

  // Semantics preserved: run both on a concrete scenario.
  interp::Memory M;
  interp::storeBytes(M, 100, "hello");
  auto Before = interp::run(*D, {100, 5, 'l'}, M);
  auto After = interp::run(E.current(), {100, 5, 'l'}, M);
  ASSERT_TRUE(Before.Ok && After.Ok) << Before.Error << After.Error;
  EXPECT_EQ(Before.Outputs, After.Outputs);
}

TEST(LoopRuleTest, RecordExitCauseNeedsFreshFlag) {
  auto D = desc(SearchSource);
  Engine E(D->clone());
  // `len` is not a flag; `ch` is not a flag either.
  EXPECT_FALSE(E.apply({"record-exit-cause", "", {{"flag", "len"}}}).Applied);
  // A used flag is rejected too.
  auto D2 = desc(SearchSource);
  Engine E2(D2->clone());
  ASSERT_TRUE(
      E2.apply({"record-exit-cause", "", {{"flag", "found"}}}).Applied);
  EXPECT_FALSE(
      E2.apply({"record-exit-cause", "", {{"flag", "found"}}}).Applied);
}

TEST(LoopRuleTest, IndexToPointer) {
  auto D = desc(SearchSource);
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"index-to-pointer",
                       "",
                       {{"index-var", "idx"},
                        {"base-var", "base"},
                        {"pointer-var", "p"}}})
                  .Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Out.find("input (p, len, ch);"), std::string::npos) << Out;
  EXPECT_NE(Out.find("base <- p;"), std::string::npos);
  EXPECT_NE(Out.find("Mb[p]"), std::string::npos);
  EXPECT_NE(Out.find("p <- p + 1;"), std::string::npos);
  EXPECT_NE(Out.find("output (p - base);"), std::string::npos);
  EXPECT_EQ(Out.find("idx"), std::string::npos);

  // Same observable behavior.
  interp::Memory M;
  interp::storeBytes(M, 100, "hello");
  for (int64_t Ch : {'l', 'z', 'h', 'o'}) {
    auto Before = interp::run(*D, {100, 5, Ch}, M);
    auto After = interp::run(E.current(), {100, 5, Ch}, M);
    ASSERT_TRUE(Before.Ok && After.Ok);
    EXPECT_EQ(Before.Outputs, After.Outputs) << "ch=" << Ch;
  }
}

TEST(LoopRuleTest, IndexToPointerRefusesWrittenBase) {
  auto D = desc(R"(
t := begin
  ** S **
    base: integer, idx: integer, n: integer,
    t.execute := begin
      input (base, n);
      idx <- 0;
      repeat
        exit_when (n = 0);
        Mb[base + idx] <- 0;
        idx <- idx + 1;
        base <- base + 1;
        n <- n - 1;
      end_repeat;
      output (idx);
    end
end
)");
  Engine E(D->clone());
  EXPECT_FALSE(E.apply({"index-to-pointer",
                        "",
                        {{"index-var", "idx"},
                         {"base-var", "base"},
                         {"pointer-var", "p"}}})
                   .Applied);
}

TEST(LoopRuleTest, SplitAndMergeExits) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer, b: integer,
    t.execute := begin
      input (a, b);
      repeat
        exit_when (a = 0 or b = 0);
        a <- a - 1;
        b <- b - 1;
      end_repeat;
      output (a, b);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"split-exit-disjunction", "", {}}).Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Out.find("exit_when (a = 0);"), std::string::npos);
  EXPECT_NE(Out.find("exit_when (b = 0);"), std::string::npos);
  ASSERT_TRUE(E.apply({"merge-exits", "", {}}).Applied);
  Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Out.find("exit_when (a = 0 or b = 0);"), std::string::npos);
}

TEST(LoopRuleTest, RotateWhileToDoWhileNeedsAssert) {
  const char *Src = R"(
t := begin
  ** S **
    n: integer, p: integer,
    t.execute := begin
      input (p, n);
      repeat
        exit_when (n = 0);
        Mb[p] <- 0;
        p <- p + 1;
        n <- n - 1;
      end_repeat;
      output (p);
    end
end
)";
  auto D = desc(Src);
  Engine E(D->clone());
  // Without the assert: refused.
  EXPECT_FALSE(E.apply({"rotate-while-to-dowhile", "", {}}).Applied);
  // With a range assert placed before the loop: accepted.
  ASSERT_TRUE(E.apply({"introduce-range-assert",
                       "",
                       {{"operand", "n"},
                        {"lo", "1"},
                        {"hi", "256"},
                        {"before-loop", "1"}}})
                  .Applied);
  ASSERT_TRUE(E.apply({"rotate-while-to-dowhile", "", {}}).Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  // The exit is now the last statement of the loop.
  EXPECT_LT(Out.find("n <- n - 1;"), Out.find("exit_when (n = 0);"));

  // Semantics on the restricted domain (n >= 1).
  for (int64_t N : {1, 2, 5}) {
    auto Before = interp::run(*D, {50, N});
    auto After = interp::run(E.current(), {50, N});
    ASSERT_TRUE(Before.Ok && After.Ok) << After.Error;
    EXPECT_EQ(Before.Outputs, After.Outputs);
    EXPECT_EQ(Before.FinalMemory, After.FinalMemory);
  }
}

TEST(LoopRuleTest, ShiftCounterProducesMvcShape) {
  auto D = desc(R"(
t := begin
  ** S **
    n: integer, m: integer, p: integer,
    t.execute := begin
      input (p, m);
      n <- m + 1;
      repeat
        Mb[p] <- 7;
        p <- p + 1;
        n <- n - 1;
        exit_when (n = 0);
      end_repeat;
      output (p);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(
      E.apply({"shift-counter", "", {{"old-var", "n"}, {"new-var", "m"}}})
          .Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_EQ(Out.find("n <-"), std::string::npos);
  EXPECT_NE(Out.find("exit_when (m = 0);"), std::string::npos);
  EXPECT_LT(Out.find("exit_when (m = 0);"), Out.find("m <- m - 1;"));

  // Writes m+1 bytes, like mvc's length encoding.
  for (int64_t M : {0, 1, 3}) {
    auto Before = interp::run(*D, {20, M});
    auto After = interp::run(E.current(), {20, M});
    ASSERT_TRUE(Before.Ok && After.Ok) << After.Error;
    EXPECT_EQ(Before.Outputs, After.Outputs);
    EXPECT_EQ(Before.FinalMemory, After.FinalMemory);
    EXPECT_EQ(static_cast<int64_t>(After.FinalMemory.size()), M + 1);
  }
}

TEST(LoopRuleTest, CountUpToDown) {
  auto D = desc(R"(
t := begin
  ** S **
    i: integer, n: integer, p: integer,
    t.execute := begin
      input (p, n);
      i <- 0;
      repeat
        exit_when (i = n);
        Mb[p] <- 9;
        p <- p + 1;
        i <- i + 1;
      end_repeat;
      output (p);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"count-up-to-down",
                       "",
                       {{"index-var", "i"},
                        {"bound-var", "n"},
                        {"counter-var", "c"}}})
                  .Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Out.find("c <- n;"), std::string::npos);
  EXPECT_NE(Out.find("exit_when (c = 0);"), std::string::npos);
  EXPECT_NE(Out.find("c <- c - 1;"), std::string::npos);

  for (int64_t N : {0, 1, 4}) {
    auto Before = interp::run(*D, {30, N});
    auto After = interp::run(E.current(), {30, N});
    ASSERT_TRUE(Before.Ok && After.Ok) << After.Error;
    EXPECT_EQ(Before.Outputs, After.Outputs);
    EXPECT_EQ(Before.FinalMemory, After.FinalMemory);
  }
}

//===----------------------------------------------------------------------===//
// Global rules
//===----------------------------------------------------------------------===//

TEST(GlobalRuleTest, FixThenPropagateThenEliminate) {
  // The scasb flag-simplification pipeline in miniature (§4.1).
  auto D = desc(R"(
t := begin
  ** S **
    df<>, p: integer,
    f()<7:0> := begin
      f <- Mb[p];
      if df then p <- p - 1; else p <- p + 1; end_if;
    end
    t.execute := begin
      input (df, p);
      p <- p + 0;
      output (f(), p);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(
      E.apply({"fix-operand-value", "", {{"operand", "df"}, {"value", "0"}}})
          .Applied);
  ASSERT_TRUE(
      E.apply({"global-constant-propagate", "", {{"var", "df"}}}).Applied);
  ASSERT_TRUE(E.apply({"if-false-elim", "f", {}}).Applied);
  ASSERT_TRUE(E.apply({"dead-assign-elim", "", {{"var", "df"}}}).Applied);
  ASSERT_TRUE(E.apply({"dead-decl-elim", "", {{"var", "df"}}}).Applied);

  const Description &After = E.current();
  EXPECT_EQ(After.findDecl("df"), nullptr);
  std::string FBody = printStmts(After.findRoutine("f")->Body);
  EXPECT_EQ(FBody.find("if"), std::string::npos);
  EXPECT_NE(FBody.find("p <- p + 1;"), std::string::npos);

  // One value constraint recorded.
  ASSERT_EQ(E.constraints().size(), 1u);
  EXPECT_NE(E.constraints().str().find("value: df = 0"), std::string::npos);

  // Equivalent to the original with df pinned to 0.
  interp::Memory M;
  interp::storeBytes(M, 10, "q");
  auto Before = interp::run(*D, {0, 10}, M);
  auto AfterRun = interp::run(After, {10}, M);
  ASSERT_TRUE(Before.Ok && AfterRun.Ok);
  EXPECT_EQ(Before.Outputs, AfterRun.Outputs);
}

TEST(GlobalRuleTest, GlobalConstantPropagateRefusesTwoWrites) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer,
    t.execute := begin
      a <- 1;
      a <- 2;
      output (a);
    end
end
)");
  Engine E(D->clone());
  EXPECT_FALSE(
      E.apply({"global-constant-propagate", "", {{"var", "a"}}}).Applied);
}

TEST(GlobalRuleTest, DeadAssignElimRespectsLiveness) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer, b: integer,
    t.execute := begin
      input (b);
      a <- b + 1;
      output (a);
    end
end
)");
  Engine E(D->clone());
  // `a` is output: not dead.
  EXPECT_FALSE(E.apply({"dead-assign-elim", "", {{"var", "a"}}}).Applied);
}

TEST(GlobalRuleTest, DeadVarElim) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer, b: integer,
    t.execute := begin
      input (b);
      a <- b + 1;
      a <- 0;
      output (b);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"dead-var-elim", "", {{"var", "a"}}}).Applied);
  EXPECT_EQ(E.current().findDecl("a"), nullptr);
  EXPECT_EQ(printStmts(E.current().entryRoutine()->Body).find("a <-"),
            std::string::npos);
}

TEST(GlobalRuleTest, CopyPropagate) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer, b: integer, c: integer,
    t.execute := begin
      input (a);
      b <- a;
      c <- b + 1;
      output (c, b);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"copy-propagate", "", {{"var", "b"}}}).Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Out.find("c <- a + 1;"), std::string::npos);
  EXPECT_NE(Out.find("output (c, a);"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Routine structuring
//===----------------------------------------------------------------------===//

TEST(RoutineRuleTest, ExtractCallToTemp) {
  auto D = desc(R"(
t := begin
  ** S **
    al<7:0>, zf<>, p: integer,
    fetch()<7:0> := begin fetch <- Mb[p]; p <- p + 1; end
    t.execute := begin
      input (al, p);
      zf <- (al - fetch()) = 0;
      output (zf, p);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"extract-call-to-temp",
                       "",
                       {{"callee", "fetch"}, {"temp", "t1"}}})
                  .Applied)
      << printStmts(E.current().entryRoutine()->Body);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Out.find("t1 <- fetch();"), std::string::npos);
  EXPECT_NE(Out.find("zf <- al - t1 = 0;"), std::string::npos);

  interp::Memory M;
  M[9] = 'x';
  auto Before = interp::run(*D, {'x', 9}, M);
  auto After = interp::run(E.current(), {'x', 9}, M);
  ASSERT_TRUE(Before.Ok && After.Ok);
  EXPECT_EQ(Before.Outputs, After.Outputs);
}

TEST(RoutineRuleTest, InlineRoutine) {
  auto D = desc(R"(
t := begin
  ** S **
    p: integer, x: integer,
    f(): integer := begin f <- Mb[p]; p <- p + 1; end
    t.execute := begin
      input (p);
      x <- f();
      output (x, p);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(
      E.apply({"inline-routine", "", {{"callee", "f"}, {"temp", "fr"}}})
          .Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Out.find("fr <- Mb[p];"), std::string::npos);
  EXPECT_NE(Out.find("x <- fr;"), std::string::npos);

  interp::Memory M;
  M[5] = 42;
  auto Before = interp::run(*D, {5}, M);
  auto After = interp::run(E.current(), {5}, M);
  ASSERT_TRUE(Before.Ok && After.Ok);
  EXPECT_EQ(Before.Outputs, After.Outputs);
}

TEST(RoutineRuleTest, RenameVariableAndRoutine) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer,
    f(): integer := begin f <- a + 1; end
    t.execute := begin input (a); a <- f(); output (a); end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(
      E.apply({"rename-variable", "", {{"from", "a"}, {"to", "x"}}}).Applied);
  ASSERT_TRUE(
      E.apply({"rename-routine", "", {{"from", "f"}, {"to", "g"}}}).Applied);
  const Description &After = E.current();
  EXPECT_NE(After.findDecl("x"), nullptr);
  EXPECT_EQ(After.findDecl("a"), nullptr);
  EXPECT_NE(After.findRoutine("g"), nullptr);
  auto R1 = interp::run(*D, {3});
  auto R2 = interp::run(After, {3});
  EXPECT_EQ(R1.Outputs, R2.Outputs);
}

//===----------------------------------------------------------------------===//
// Constraint and augment rules
//===----------------------------------------------------------------------===//

TEST(ConstraintRuleTest, IntroduceOffsetInput) {
  auto D = desc(R"(
t := begin
  ** S **
    len: integer, p: integer,
    t.execute := begin
      input (p, len);
      repeat
        Mb[p] <- 1;
        p <- p + 1;
        exit_when (len = 0);
        len <- len - 1;
      end_repeat;
      output (p);
    end
end
)");
  Engine E(D->clone());
  ApplyResult R = E.apply({"introduce-offset-input",
                           "",
                           {{"operand", "len"},
                            {"delta", "-1"},
                            {"new-name", "lenp"}}});
  ASSERT_TRUE(R.Applied) << R.Reason;
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Out.find("input (p, lenp);"), std::string::npos);
  EXPECT_NE(Out.find("len <- lenp + 1;"), std::string::npos);
  EXPECT_NE(E.constraints().str().find("offset: encode len as len - 1"),
            std::string::npos);

  // Adapter maps new inputs to old: lenp = 3 corresponds to len = 4.
  ASSERT_TRUE(R.Adapter);
  std::vector<int64_t> Old = R.Adapter({10, 3});
  EXPECT_EQ(Old, (std::vector<int64_t>{10, 4}));
  auto Orig = interp::run(*D, Old);
  auto New = interp::run(E.current(), {10, 3});
  ASSERT_TRUE(Orig.Ok && New.Ok);
  EXPECT_EQ(Orig.Outputs, New.Outputs);
  EXPECT_EQ(Orig.FinalMemory, New.FinalMemory);
}

TEST(ConstraintRuleTest, FixOperandValueAdapter) {
  auto D = desc(R"(
t := begin
  ** S **
    f<>, a: integer,
    t.execute := begin
      input (f, a);
      if f then output (a + 1); else output (a); end_if;
    end
end
)");
  Engine E(D->clone());
  ApplyResult R =
      E.apply({"fix-operand-value", "", {{"operand", "f"}, {"value", "1"}}});
  ASSERT_TRUE(R.Applied);
  ASSERT_TRUE(R.Adapter);
  EXPECT_EQ(R.Adapter({5}), (std::vector<int64_t>{1, 5}));
  auto Orig = interp::run(*D, {1, 5});
  auto New = interp::run(E.current(), {5});
  ASSERT_TRUE(Orig.Ok && New.Ok);
  EXPECT_EQ(Orig.Outputs, New.Outputs);
}

TEST(ConstraintRuleTest, RelationalNeedsAxiomAndGatesResolve) {
  auto D = desc(R"(
t := begin
  ** S **
    s: integer, d: integer, n: integer,
    t.execute := begin
      input (s, d, n);
      if d > s and d < s + n then
        output (1);
      else
        output (2);
      end_if;
    end
end
)");
  Engine E(D->clone());
  // resolve-if-by-constraint refuses without a recorded axiom.
  EXPECT_FALSE(
      E.apply({"resolve-if-by-constraint", "", {{"arm", "else"}}}).Applied);
  ASSERT_TRUE(E.apply({"note-relational-constraint",
                       "",
                       {{"pred", "(s + n <= d) or (d + n <= s)"},
                        {"axiom", "pascal.no-overlap"}}})
                  .Applied);
  EXPECT_TRUE(E.constraints().hasRelational());
  ASSERT_TRUE(
      E.apply({"resolve-if-by-constraint", "", {{"arm", "else"}}}).Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_EQ(Out.find("if"), std::string::npos);
  EXPECT_NE(Out.find("output (2);"), std::string::npos);
}

TEST(AugmentRuleTest, PrologueEpilogueAndInterfaceCheck) {
  auto D = desc(R"(
t := begin
  ** S **
    p: integer, zf<>,
    t.execute := begin
      input (p);
      zf <- p = 0;
      output (zf, p);
    end
end
)");
  Engine E(D->clone());
  // Undeclared temp: the interface guarantee must refuse.
  ApplyResult Bad =
      E.apply({"add-prologue", "", {{"code", "temp <- p;"}}});
  EXPECT_FALSE(Bad.Applied);
  EXPECT_NE(Bad.Reason.find("undeclared"), std::string::npos);

  ASSERT_TRUE(E.apply({"allocate-temp",
                       "",
                       {{"name", "temp"}, {"type", "integer"}}})
                  .Applied);
  ASSERT_TRUE(
      E.apply({"add-prologue", "", {{"code", "temp <- p;"}}}).Applied);
  ASSERT_TRUE(E.apply({"replace-output",
                       "",
                       {{"code", "if zf then output (p - temp); else "
                                 "output (0); end_if;"}}})
                  .Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Out.find("temp <- p;"), std::string::npos);
  EXPECT_NE(Out.find("output (p - temp);"), std::string::npos);
  EXPECT_EQ(Out.find("output (zf, p);"), std::string::npos);
}

TEST(AugmentRuleTest, ReplaceOutputRequiresOutput) {
  auto D = desc(R"(
t := begin
  ** S **
    p: integer,
    t.execute := begin input (p); output (p); end
end
)");
  Engine E(D->clone());
  EXPECT_FALSE(
      E.apply({"replace-output", "", {{"code", "p <- p + 1;"}}}).Applied);
}

} // namespace
