//===- isdl_lexer_test.cpp - Lexer unit tests -------------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/Lexer.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::isdl;

namespace {

std::vector<Token> lexOk(std::string_view Src) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  std::vector<Token> Toks = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Toks;
}

std::vector<TokKind> kindsOf(const std::vector<Token> &Toks) {
  std::vector<TokKind> Out;
  for (const Token &T : Toks)
    Out.push_back(T.Kind);
  return Out;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto Toks = lexOk("");
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_EQ(Toks[0].Kind, TokKind::Eof);
}

TEST(LexerTest, DottedIdentifiers) {
  auto Toks = lexOk("Src.Base index.execute SOURCE.ACCESS");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Text, "Src.Base");
  EXPECT_EQ(Toks[1].Text, "index.execute");
  EXPECT_EQ(Toks[2].Text, "SOURCE.ACCESS");
}

TEST(LexerTest, KeywordsAreNotIdentifiers) {
  auto Toks = lexOk("begin end if then else end_if repeat end_repeat "
                    "exit_when input output not and or constrain assert");
  std::vector<TokKind> Expected = {
      TokKind::KwBegin,     TokKind::KwEnd,      TokKind::KwIf,
      TokKind::KwThen,      TokKind::KwElse,     TokKind::KwEndIf,
      TokKind::KwRepeat,    TokKind::KwEndRepeat, TokKind::KwExitWhen,
      TokKind::KwInput,     TokKind::KwOutput,   TokKind::KwNot,
      TokKind::KwAnd,       TokKind::KwOr,       TokKind::KwConstrain,
      TokKind::KwAssert,    TokKind::Eof};
  EXPECT_EQ(kindsOf(Toks), Expected);
}

TEST(LexerTest, RegisterDeclarationPunctuation) {
  auto Toks = lexOk("di<15:0>, rf<>");
  std::vector<TokKind> Expected = {
      TokKind::Ident, TokKind::Less,        TokKind::Int,  TokKind::Colon,
      TokKind::Int,   TokKind::Greater,     TokKind::Comma, TokKind::Ident,
      TokKind::LessGreater, TokKind::Eof};
  EXPECT_EQ(kindsOf(Toks), Expected);
  EXPECT_EQ(Toks[2].IntValue, 15);
  EXPECT_EQ(Toks[4].IntValue, 0);
}

TEST(LexerTest, AssignmentArrowForms) {
  auto Ascii = lexOk("di <- 1;");
  ASSERT_GE(Ascii.size(), 2u);
  EXPECT_EQ(Ascii[1].Kind, TokKind::Arrow);

  auto Utf8 = lexOk("di \xE2\x86\x90 1;");
  ASSERT_GE(Utf8.size(), 2u);
  EXPECT_EQ(Utf8[1].Kind, TokKind::Arrow);
}

TEST(LexerTest, RelationalOperators) {
  auto Toks = lexOk("= <> < <= > >=");
  std::vector<TokKind> Expected = {TokKind::Eq,        TokKind::LessGreater,
                                   TokKind::Less,      TokKind::LessEq,
                                   TokKind::Greater,   TokKind::GreaterEq,
                                   TokKind::Eof};
  EXPECT_EQ(kindsOf(Toks), Expected);
}

TEST(LexerTest, CommentsRunToEndOfLine) {
  auto Toks = lexOk("di ! source string address\ncx");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Text, "di");
  EXPECT_EQ(Toks[1].Text, "cx");
}

TEST(LexerTest, CharacterLiteral) {
  auto Toks = lexOk("'a' 'Z' '0'");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Kind, TokKind::CharLit);
  EXPECT_EQ(Toks[0].IntValue, 'a');
  EXPECT_EQ(Toks[1].IntValue, 'Z');
  EXPECT_EQ(Toks[2].IntValue, '0');
}

TEST(LexerTest, SectionDelimiterVsMultiply) {
  auto Toks = lexOk("** STATE ** a * b");
  std::vector<TokKind> Expected = {TokKind::StarStar, TokKind::Ident,
                                   TokKind::StarStar, TokKind::Ident,
                                   TokKind::Star,     TokKind::Ident,
                                   TokKind::Eof};
  EXPECT_EQ(kindsOf(Toks), Expected);
}

TEST(LexerTest, ColonEqVsColon) {
  auto Toks = lexOk(":= :");
  EXPECT_EQ(Toks[0].Kind, TokKind::ColonEq);
  EXPECT_EQ(Toks[1].Kind, TokKind::Colon);
}

TEST(LexerTest, LineAndColumnTracking) {
  auto Toks = lexOk("a\n  b");
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Col, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Col, 3u);
}

TEST(LexerTest, UnterminatedCharLiteralIsReported) {
  DiagnosticEngine Diags;
  Lexer L("'", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, UnexpectedCharacterIsReportedAndSkipped) {
  DiagnosticEngine Diags;
  Lexer L("a @ b", Diags);
  auto Toks = L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
}

TEST(LexerTest, NumbersParseToValues) {
  auto Toks = lexOk("0 7 65535 123456");
  EXPECT_EQ(Toks[0].IntValue, 0);
  EXPECT_EQ(Toks[1].IntValue, 7);
  EXPECT_EQ(Toks[2].IntValue, 65535);
  EXPECT_EQ(Toks[3].IntValue, 123456);
}

TEST(LexerTest, IdentifierDoesNotSwallowTrailingDot) {
  // `scasb.execute := begin` keeps the dot inside; a dot immediately
  // before punctuation must not be glued to the name.
  auto Toks = lexOk("a.b.c");
  EXPECT_EQ(Toks[0].Text, "a.b.c");
}

} // namespace
