//===- transform_rules_test.cpp - Remaining rule coverage -------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coverage for the rules the derivation scripts exercise only lightly
/// (routine structuring, textual constraint lifting, flag inversion,
/// permutation) plus negative cases for their applicability conditions.
///
//===----------------------------------------------------------------------===//

#include "transform/Transform.h"

#include "interp/Interp.h"
#include "isdl/Parser.h"
#include "isdl/Printer.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::transform;
using namespace extra::isdl;

namespace {

std::unique_ptr<Description> desc(std::string_view Src) {
  DiagnosticEngine Diags;
  auto D = parseDescription(Src, Diags);
  EXPECT_TRUE(D && !Diags.hasErrors()) << Diags.str();
  return D;
}

TEST(RoutineRuleTest, SplitRoutineRetargetsOneCallSite) {
  auto D = desc(R"(
t := begin
  ** S **
    p: integer, x: integer, y: integer,
    f(): integer := begin f <- Mb[p]; p <- p + 1; end
    t.execute := begin
      input (p);
      x <- f();
      y <- f();
      output (x, y);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"split-routine", "",
                       {{"name", "f"}, {"new-name", "f2"},
                        {"occurrence", "1"}}})
                  .Applied);
  const Description &After = E.current();
  ASSERT_NE(After.findRoutine("f2"), nullptr);
  std::string Body = printStmts(After.entryRoutine()->Body);
  EXPECT_NE(Body.find("x <- f();"), std::string::npos);
  EXPECT_NE(Body.find("y <- f2();"), std::string::npos);

  interp::Memory M;
  M[5] = 10;
  M[6] = 20;
  auto Before = interp::run(*D, {5}, M);
  auto AfterRun = interp::run(After, {5}, M);
  EXPECT_EQ(Before.Outputs, AfterRun.Outputs);
}

TEST(RoutineRuleTest, MergeIdenticalRoutines) {
  auto D = desc(R"(
t := begin
  ** S **
    p: integer, x: integer, y: integer,
    f(): integer := begin f <- Mb[p]; p <- p + 1; end
    g(): integer := begin g <- Mb[p]; p <- p + 1; end
    t.execute := begin
      input (p);
      x <- f();
      y <- g();
      output (x, y);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"merge-identical-routines", "",
                       {{"a", "f"}, {"b", "g"}}})
                  .Applied);
  EXPECT_EQ(E.current().findRoutine("g"), nullptr);
  EXPECT_NE(printStmts(E.current().entryRoutine()->Body).find("y <- f();"),
            std::string::npos);

  interp::Memory M;
  M[5] = 1;
  M[6] = 2;
  EXPECT_EQ(interp::run(*D, {5}, M).Outputs,
            interp::run(E.current(), {5}, M).Outputs);
}

TEST(RoutineRuleTest, MergeRefusesDifferentBodies) {
  auto D = desc(R"(
t := begin
  ** S **
    p: integer, x: integer,
    f(): integer := begin f <- Mb[p]; p <- p + 1; end
    g(): integer := begin g <- Mb[p]; p <- p - 1; end
    t.execute := begin input (p); x <- f() + g(); output (x); end
end
)");
  Engine E(D->clone());
  EXPECT_FALSE(E.apply({"merge-identical-routines", "",
                        {{"a", "f"}, {"b", "g"}}})
                   .Applied);
}

TEST(RoutineRuleTest, DeadRoutineElim) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer,
    unused(): integer := begin unused <- a + 1; end
    t.execute := begin input (a); output (a); end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(
      E.apply({"dead-routine-elim", "", {{"name", "unused"}}}).Applied);
  EXPECT_EQ(E.current().findRoutine("unused"), nullptr);
  // Cannot remove the entry routine or a live routine.
  EXPECT_FALSE(
      E.apply({"dead-routine-elim", "", {{"name", "t.execute"}}}).Applied);
}

TEST(ConstraintRuleTest, LiftConstrainValueAndRange) {
  auto D = desc(R"(
t := begin
  ** S **
    n: integer,
    t.execute := begin
      input (n);
      constrain value: n = 4;
      constrain range: n >= 1 and n <= 256;
      output (n);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"lift-constrain", "", {}}).Applied);
  ASSERT_TRUE(E.apply({"lift-constrain", "", {}}).Applied);
  EXPECT_FALSE(E.apply({"lift-constrain", "", {}}).Applied);
  std::string C = E.constraints().str();
  EXPECT_NE(C.find("value: n = 4"), std::string::npos) << C;
  EXPECT_NE(C.find("range: 1 <= n <= 256"), std::string::npos) << C;
  EXPECT_EQ(printStmts(E.current().entryRoutine()->Body).find("constrain"),
            std::string::npos);
}

TEST(LocalRuleTest, InvertFlagRejectsOutputsAndInputs) {
  auto D = desc(R"(
t := begin
  ** S **
    f<>, a: integer,
    t.execute := begin
      input (a);
      if a = 0 then f <- 1; else f <- 0; end_if;
      output (f);
    end
end
)");
  Engine E(D->clone());
  ApplyResult R = E.apply({"invert-flag", "", {{"var", "f"}}});
  EXPECT_FALSE(R.Applied);
  EXPECT_NE(R.Reason.find("output"), std::string::npos);

  auto D2 = desc(R"(
t := begin
  ** S **
    f<>, a: integer,
    t.execute := begin
      input (f, a);
      if f then output (a); else output (0); end_if;
    end
end
)");
  Engine E2(D2->clone());
  EXPECT_FALSE(E2.apply({"invert-flag", "", {{"var", "f"}}}).Applied);
}

TEST(LocalRuleTest, InvertFlagPreservesSemantics) {
  auto D = desc(R"(
t := begin
  ** S **
    f<>, a: integer,
    t.execute := begin
      input (a);
      f <- 0;
      repeat
        exit_when (a = 0);
        if a = 3 then f <- 1; else f <- 0; end_if;
        exit_when (f);
        a <- a - 1;
      end_repeat;
      if f then output (1); else output (2); end_if;
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"invert-flag", "", {{"var", "f"}}}).Applied);
  for (int64_t A : {0, 1, 3, 7}) {
    auto X = interp::run(*D, {A});
    auto Y = interp::run(E.current(), {A});
    ASSERT_TRUE(X.Ok && Y.Ok);
    EXPECT_EQ(X.Outputs, Y.Outputs) << A;
  }
}

TEST(LocalRuleTest, InvertFlagRejectsAssertedFlag) {
  auto D = desc(R"(
t := begin
  ** S **
    f<>, a: integer,
    t.execute := begin
      input (a);
      if a = 0 then f <- 1; else f <- 0; end_if;
      assert f = 0 or f = 1;
      if f then a <- 1; end_if;
      output (a);
    end
end
)");
  Engine E(D->clone());
  ApplyResult R = E.apply({"invert-flag", "", {{"var", "f"}}});
  EXPECT_FALSE(R.Applied);
  EXPECT_NE(R.Reason.find("assertion"), std::string::npos);
}

TEST(RoutineRuleTest, RenameVariableReachesAssertions) {
  auto D = desc(R"(
t := begin
  ** S **
    n: integer,
    t.execute := begin
      input (n);
      assert n >= 0;
      output (n);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(
      E.apply({"rename-variable", "", {{"from", "n"}, {"to", "m"}}}).Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Out.find("assert m >= 0;"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("n >= 0"), std::string::npos);
}

TEST(ConstraintRuleTest, PermuteInputsValidation) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer, b: integer, c: integer,
    t.execute := begin input (a, b, c); output (a - b, c); end
end
)");
  Engine E(D->clone());
  // Bad permutations are rejected.
  EXPECT_FALSE(E.apply({"permute-inputs", "", {{"order", "0,1"}}}).Applied);
  EXPECT_FALSE(
      E.apply({"permute-inputs", "", {{"order", "0,0,1"}}}).Applied);
  EXPECT_FALSE(
      E.apply({"permute-inputs", "", {{"order", "0,1,5"}}}).Applied);
  // A good one reorders and supplies an adapter.
  ApplyResult R = E.apply({"permute-inputs", "", {{"order", "2,0,1"}}});
  ASSERT_TRUE(R.Applied);
  ASSERT_TRUE(R.Adapter);
  // New order is (c, a, b); new inputs (x,y,z) map to old (y,z,x).
  EXPECT_EQ(R.Adapter({10, 20, 30}), (std::vector<int64_t>{20, 30, 10}));
  auto Old = interp::run(*D, {20, 30, 10});
  auto New = interp::run(E.current(), {10, 20, 30});
  EXPECT_EQ(Old.Outputs, New.Outputs);
}

TEST(LocalRuleTest, FoldConstChain) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer, b: integer,
    t.execute := begin input (a); b <- a + 3 - 5; output (b); end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"fold-const-chain", "", {}}).Applied);
  EXPECT_NE(printStmts(E.current().entryRoutine()->Body).find("b <- a - 2;"),
            std::string::npos);
}

TEST(CodeMotionRuleTest, MoveDownAcrossExitChecksLiveness) {
  auto D = desc(R"(
t := begin
  ** S **
    n: integer, s: integer, f<>,
    t.execute := begin
      input (n, s);
      f <- 0;
      repeat
        exit_when (n = 0);
        s <- s + 1;
        if s = 5 then f <- 1; else f <- 0; end_if;
        exit_when (f);
        n <- n - 1;
      end_repeat;
      output (s);
    end
end
)");
  // `s` is live after the loop (output); moving its update down across
  // the flag exit would change the exit-path value: refused.
  Engine E(D->clone());
  ApplyResult R = E.apply({"move-down", "", {{"var", "s"}}});
  EXPECT_FALSE(R.Applied);
}

TEST(CodeMotionRuleTest, FuseLoadStoreConditions) {
  auto D = desc(R"(
t := begin
  ** S **
    p: integer, q: integer, v: integer,
    t.execute := begin
      input (p, q);
      v <- Mb[p];
      Mb[q] <- v;
      output (v);
    end
end
)");
  // v is output afterwards: live, refuse.
  Engine E(D->clone());
  EXPECT_FALSE(E.apply({"fuse-load-store", "", {{"var", "v"}}}).Applied);

  auto D2 = desc(R"(
t := begin
  ** S **
    p: integer, q: integer, v: integer,
    t.execute := begin
      input (p, q);
      v <- Mb[p];
      Mb[q] <- v;
      output (q);
    end
end
)");
  Engine E2(D2->clone());
  ASSERT_TRUE(E2.apply({"fuse-load-store", "", {{"var", "v"}}}).Applied);
  EXPECT_NE(printStmts(E2.current().entryRoutine()->Body)
                .find("Mb[q] <- Mb[p];"),
            std::string::npos);
}

TEST(LoopRuleTest, RecordExitCauseRejectsDisturbedPrimary) {
  // A statement between the exits writes the primary condition's
  // variable: the discriminator argument breaks, the rule must refuse.
  auto D = desc(R"(
t := begin
  ** S **
    n: integer, c: character, p: integer, f<>,
    t.execute := begin
      input (p, n, c);
      repeat
        exit_when (n = 0);
        n <- n + 0;
        exit_when (c = Mb[p]);
        p <- p + 1;
        n <- n - 1;
      end_repeat;
      if n = 0 then output (0); else output (p); end_if;
    end
end
)");
  // Note: two assignments to n exist; the one between the exits is the
  // problem. (countExits = 2, body[0] is the primary.)
  Engine E(D->clone());
  ApplyResult R = E.apply({"record-exit-cause", "", {{"flag", "f"}}});
  EXPECT_FALSE(R.Applied);
  EXPECT_NE(R.Reason.find("writes a variable"), std::string::npos);
}

TEST(LoopRuleTest, ShiftCounterRejectsExtraReads) {
  auto D = desc(R"(
t := begin
  ** S **
    v: integer, w: integer, p: integer,
    t.execute := begin
      input (p, w);
      v <- w + 1;
      repeat
        Mb[p] <- v;
        p <- p + 1;
        v <- v - 1;
        exit_when (v = 0);
      end_repeat;
      output (p);
    end
end
)");
  // v is read by the loop body (stored to memory): cannot shift.
  Engine E(D->clone());
  ApplyResult R = E.apply({"shift-counter", "",
                           {{"old-var", "v"}, {"new-var", "w"}}});
  EXPECT_FALSE(R.Applied);
}

TEST(GlobalRuleTest, CopyPropagateRefusesLoopCarriedCopies) {
  // The copy's source is rewritten each iteration; propagating the copy
  // past the redefinition would be wrong, and the rule's unique-write
  // condition on the source must reject it.
  auto D = desc(R"(
t := begin
  ** S **
    a: integer, b: integer, n: integer,
    t.execute := begin
      input (n);
      a <- 0;
      repeat
        exit_when (n = 0);
        b <- a;
        a <- a + 1;
        n <- n - 1;
      end_repeat;
      output (b);
    end
end
)");
  Engine E(D->clone());
  EXPECT_FALSE(E.apply({"copy-propagate", "", {{"var", "b"}}}).Applied);
}

TEST(SwapCommutativeTest, OpFilterLimitsMatches) {
  auto D = desc(R"(
t := begin
  ** S **
    a: integer, b: integer, c: integer,
    t.execute := begin
      input (a, b);
      c <- a + b;
      c <- c * a;
      output (c);
    end
end
)");
  Engine E(D->clone());
  ASSERT_TRUE(E.apply({"swap-commutative", "", {{"op", "*"}}}).Applied);
  std::string Out = printStmts(E.current().entryRoutine()->Body);
  EXPECT_NE(Out.find("c <- a + b;"), std::string::npos); // untouched
  EXPECT_NE(Out.find("c <- a * c;"), std::string::npos); // swapped
}

} // namespace
