//===- eclipse_failure_test.cpp - The §5 Eclipse failure study --*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5 reports a second failure besides movc3/sassign: the DG Eclipse
/// string instructions encode the processing *direction in the sign of
/// the length operand*, so "the length operand is now used for two
/// unrelated purposes and it is difficult to formulate transformations
/// to separate the two functions. ... Instructions that use a clever
/// coding trick make analysis difficult or impossible."
///
/// These tests reproduce the diagnosis mechanically: the simplification
/// avenue that works for the 8086 (fix the direction flag, propagate,
/// fold) has no purchase on cmv, because there is no separate direction
/// operand to fix, and fixing the dual-purpose length is rejected by the
/// engine's conditions.
///
//===----------------------------------------------------------------------===//

#include "analysis/DiffCheck.h"
#include "descriptions/Descriptions.h"
#include "isdl/Equiv.h"
#include "transform/Transform.h"

#include <gtest/gtest.h>

using namespace extra;

namespace {

TEST(EclipseFailureTest, DescriptionBehavesLikeTheManual) {
  auto Cmv = descriptions::load("eclipse.cmv");
  interp::Memory M;
  interp::storeBytes(M, 100, "abc");
  // Forward/forward: a plain move.
  auto Fwd = interp::run(*Cmv, {100, 200, 3, 3}, M);
  ASSERT_TRUE(Fwd.Ok) << Fwd.Error;
  EXPECT_EQ(interp::loadBytes(Fwd.FinalMemory, 200, 3), "abc");
  // Backward source (negative slen), forward destination: reverses.
  auto Rev = interp::run(*Cmv, {102, 200, -3, 3}, M);
  ASSERT_TRUE(Rev.Ok) << Rev.Error;
  EXPECT_EQ(interp::loadBytes(Rev.FinalMemory, 200, 3), "cba");
}

TEST(EclipseFailureTest, NoDirectionFlagToFix) {
  // The 8086 recipe starts with fix-operand-value on the direction flag.
  // cmv has no such operand: every input is a multi-bit register or
  // integer, so there is no flag to pin.
  auto Cmv = descriptions::load("eclipse.cmv");
  for (const isdl::Decl *D : Cmv->decls())
    EXPECT_FALSE(D->Type.isFlag()) << D->Name;
}

TEST(EclipseFailureTest, FixingTheDualPurposeLengthLosesTheOperand) {
  // One could pin the length itself (it carries the direction), but that
  // pins the byte count too — the dual-purpose problem. The engine allows
  // the fix (it is a legal value constraint) but the result can no longer
  // implement a general string move: the length operand is gone from the
  // interface entirely.
  auto Cmv = descriptions::load("eclipse.cmv");
  transform::Engine E(Cmv->clone());
  ASSERT_TRUE(E.apply({"fix-operand-value", "",
                       {{"operand", "slen"}, {"value", "3"}}})
                  .Applied);
  auto Inputs = interp::inputOperands(E.current());
  EXPECT_EQ(std::count(Inputs.begin(), Inputs.end(), "slen"), 0);
}

TEST(EclipseFailureTest, ConstantPropagationCannotSeparateTheSign) {
  // After pinning slen the 8086-style chain continues with
  // global-constant-propagate — which the engine refuses here, because
  // the pinned operand is still *written* inside the loop (it is the
  // live count, decremented every iteration). The two functions of the
  // operand cannot be separated by the simplification machinery.
  auto Cmv = descriptions::load("eclipse.cmv");
  transform::Engine E(Cmv->clone());
  ASSERT_TRUE(E.apply({"fix-operand-value", "",
                       {{"operand", "slen"}, {"value", "3"}}})
                  .Applied);
  transform::ApplyResult R =
      E.apply({"global-constant-propagate", "", {{"var", "slen"}}});
  EXPECT_FALSE(R.Applied);
  EXPECT_NE(R.Reason.find("exactly one write"), std::string::npos)
      << R.Reason;
}

TEST(EclipseFailureTest, NoCommonFormWithPascalMove) {
  // Directly matching cmv against the (direction-free) Pascal move's
  // derived pointer form fails, as expected.
  auto Cmv = descriptions::load("eclipse.cmv");
  auto Smove = descriptions::load("pascal.smove");
  isdl::MatchResult M = isdl::matchDescriptions(*Smove, *Cmv);
  EXPECT_FALSE(M.Matched);
  EXPECT_FALSE(M.Mismatch.empty());
}

} // namespace
