//===- isdl_ast_test.cpp - AST utilities unit tests -------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/AST.h"

#include "TestSources.h"
#include "isdl/Equiv.h"
#include "isdl/Parser.h"
#include "isdl/Traverse.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::isdl;

namespace {

TEST(TypeRefTest, Widths) {
  EXPECT_EQ(TypeRef::bits(15, 0).widthInBits(), 16u);
  EXPECT_EQ(TypeRef::bits(7, 0).widthInBits(), 8u);
  EXPECT_EQ(TypeRef::flag().widthInBits(), 1u);
  EXPECT_EQ(TypeRef::character().widthInBits(), 8u);
  EXPECT_EQ(TypeRef::integer().widthInBits(), 0u);
}

TEST(TypeRefTest, Printing) {
  EXPECT_EQ(TypeRef::bits(15, 0).str(), "<15:0>");
  EXPECT_EQ(TypeRef::flag().str(), "<>");
  EXPECT_EQ(TypeRef::integer().str(), "integer");
}

TEST(OperatorsTest, RelationalHelpers) {
  EXPECT_TRUE(isRelational(BinaryOp::Eq));
  EXPECT_TRUE(isRelational(BinaryOp::Ge));
  EXPECT_FALSE(isRelational(BinaryOp::Add));
  EXPECT_EQ(negateRelational(BinaryOp::Eq), BinaryOp::Ne);
  EXPECT_EQ(negateRelational(BinaryOp::Lt), BinaryOp::Ge);
  EXPECT_EQ(swapRelational(BinaryOp::Lt), BinaryOp::Gt);
  EXPECT_EQ(swapRelational(BinaryOp::Eq), BinaryOp::Eq);
}

TEST(CloneTest, ExpressionDeepCopy) {
  ExprPtr E = binary(BinaryOp::Add, varRef("a"), memRef(varRef("b")));
  ExprPtr C = E->clone();
  EXPECT_TRUE(exactEqual(*E, *C));
  // Mutating the clone leaves the original intact.
  cast<VarRef>(cast<BinaryExpr>(C.get())->getLHS())->setName("z");
  EXPECT_FALSE(exactEqual(*E, *C));
  EXPECT_EQ(cast<VarRef>(cast<BinaryExpr>(E.get())->getLHS())->getName(), "a");
}

TEST(CloneTest, DescriptionDeepCopy) {
  DiagnosticEngine Diags;
  auto D = parseDescription(extra::testing::RigelIndexSource, Diags);
  ASSERT_TRUE(D && !Diags.hasErrors());
  Description C = D->clone();
  MatchResult R = matchDescriptions(*D, C);
  EXPECT_TRUE(R.Matched) << R.Mismatch;

  // Structural independence: removing a statement from the clone does not
  // affect the original.
  C.entryRoutine()->Body.pop_back();
  EXPECT_EQ(D->entryRoutine()->Body.size(), 4u);
  EXPECT_FALSE(matchDescriptions(*D, C).Matched);
}

TEST(TraverseTest, MentionsVar) {
  ExprPtr E = binary(BinaryOp::Add, varRef("a"), memRef(varRef("b")));
  EXPECT_TRUE(mentionsVar(*E, "a"));
  EXPECT_TRUE(mentionsVar(*E, "b"));
  EXPECT_FALSE(mentionsVar(*E, "c"));
}

TEST(TraverseTest, ReferencedVarsIncludesInputs) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts("input (a, b); c <- a + 1;", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  std::set<std::string> Vars;
  for (auto &S : Stmts) {
    auto Sub = referencedVars(*S);
    Vars.insert(Sub.begin(), Sub.end());
  }
  EXPECT_EQ(Vars, (std::set<std::string>{"a", "b", "c"}));
}

TEST(TraverseTest, CalledRoutines) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts("x <- read() + fetch();", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_EQ(calledRoutines(Stmts),
            (std::set<std::string>{"read", "fetch"}));
}

TEST(TraverseTest, RenameVarCoversTargetsAndInputs) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts("input (a); a <- a + 1; Mb[a] <- a;", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  renameVar(Stmts, "a", "z");
  std::set<std::string> Vars;
  for (auto &S : Stmts) {
    auto Sub = referencedVars(*S);
    Vars.insert(Sub.begin(), Sub.end());
  }
  EXPECT_EQ(Vars, (std::set<std::string>{"z"}));
}

TEST(TraverseTest, RenameCall) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts("x <- read();", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  renameCall(Stmts, "read", "fetch");
  EXPECT_EQ(calledRoutines(Stmts), (std::set<std::string>{"fetch"}));
}

TEST(TraverseTest, HasCallOrMem) {
  DiagnosticEngine Diags;
  EXPECT_TRUE(hasCallOrMem(*parseExpr("Mb[a]", Diags)));
  EXPECT_TRUE(hasCallOrMem(*parseExpr("f()", Diags)));
  EXPECT_FALSE(hasCallOrMem(*parseExpr("a + b * 2", Diags)));
}

TEST(TraverseTest, ResolvePathTopLevel) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts("a <- 1; b <- 2; c <- 3;", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  StmtLocus L = resolvePath(Stmts, {1});
  ASSERT_TRUE(L.isValid());
  EXPECT_EQ(cast<AssignStmt>(L.get())->targetVarName(), "b");
}

TEST(TraverseTest, ResolvePathIntoIfArms) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts(
      "if c then a <- 1; b <- 2; else d <- 3; end_if;", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  StmtLocus ThenB = resolvePath(Stmts, {0, 0, 1});
  ASSERT_TRUE(ThenB.isValid());
  EXPECT_EQ(cast<AssignStmt>(ThenB.get())->targetVarName(), "b");
  StmtLocus ElseD = resolvePath(Stmts, {0, 1, 0});
  ASSERT_TRUE(ElseD.isValid());
  EXPECT_EQ(cast<AssignStmt>(ElseD.get())->targetVarName(), "d");
}

TEST(TraverseTest, ResolvePathIntoRepeat) {
  DiagnosticEngine Diags;
  StmtList Stmts =
      parseStmts("repeat exit_when (a = 0); a <- a - 1; end_repeat;", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  StmtLocus L = resolvePath(Stmts, {0, 1});
  ASSERT_TRUE(L.isValid());
  EXPECT_EQ(cast<AssignStmt>(L.get())->targetVarName(), "a");
}

TEST(TraverseTest, ResolvePathOutOfRangeIsInvalid) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts("a <- 1;", Diags);
  EXPECT_FALSE(resolvePath(Stmts, {3}).isValid());
  EXPECT_FALSE(resolvePath(Stmts, {0, 0}).isValid());
  EXPECT_FALSE(resolvePath(Stmts, {}).isValid());
}

TEST(TraverseTest, ExprSlotRewrite) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts("x <- a + 0;", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  // Rewrite every `e + 0` into `e`.
  forEachExprSlot(*Stmts[0], [](ExprPtr &Slot) {
    auto *B = dyn_cast<BinaryExpr>(Slot.get());
    if (!B || B->getOp() != BinaryOp::Add)
      return;
    auto *R = dyn_cast<IntLit>(B->getRHS());
    if (R && R->getValue() == 0)
      Slot = B->takeLHS();
  });
  const auto *A = cast<AssignStmt>(Stmts[0].get());
  EXPECT_EQ(A->getValue()->getKind(), Expr::Kind::VarRef);
}

TEST(DescriptionTest, AddAndRemoveDecl) {
  Description D("d");
  D.addDecl("STATE", Decl{"temp", TypeRef::bits(15, 0), "", {}});
  ASSERT_NE(D.findDecl("temp"), nullptr);
  EXPECT_TRUE(D.removeDecl("temp"));
  EXPECT_EQ(D.findDecl("temp"), nullptr);
  EXPECT_FALSE(D.removeDecl("temp"));
}

TEST(DescriptionTest, EntryRoutinePreference) {
  DiagnosticEngine Diags;
  auto D = parseDescription(
      "x := begin ** S ** helper() := begin helper <- 1; end "
      "x.execute := begin a <- helper(); end ** T ** a<7:0>, end",
      Diags);
  // Note: decl after routines in section T.
  ASSERT_TRUE(D) << Diags.str();
  EXPECT_EQ(D->entryRoutine()->Name, "x.execute");
}

} // namespace
