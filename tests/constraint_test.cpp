//===- constraint_test.cpp - Constraint system unit tests -------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "constraint/Constraint.h"

#include "isdl/Parser.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::constraint;

namespace {

isdl::ExprPtr pred(const char *Src) {
  DiagnosticEngine Diags;
  auto E = isdl::parseExpr(Src, Diags);
  EXPECT_TRUE(E && !Diags.hasErrors());
  return E;
}

TEST(ConstraintTest, Printing) {
  EXPECT_EQ(Constraint::value("df", 0).str(), "value: df = 0");
  EXPECT_EQ(Constraint::range("len", 0, 65535).str(),
            "range: 0 <= len <= 65535");
  EXPECT_EQ(Constraint::offset("Len", -1).str(),
            "offset: encode Len as Len - 1");
  EXPECT_EQ(Constraint::offset("x", 2).str(), "offset: encode x as x + 2");
  std::string R =
      Constraint::relational(pred("a + n <= b"), "pascal.no-overlap").str();
  EXPECT_NE(R.find("relational: a + n <= b"), std::string::npos);
  EXPECT_NE(R.find("pascal.no-overlap"), std::string::npos);
}

TEST(ConstraintTest, NotesAppended) {
  EXPECT_NE(Constraint::value("rf", 1, "set by rep prefix").str().find(
                "! set by rep prefix"),
            std::string::npos);
}

TEST(ConstraintTest, SimplePredicate) {
  EXPECT_TRUE(Constraint::value("a", 1).isSimple());
  EXPECT_TRUE(Constraint::range("a", 0, 3).isSimple());
  EXPECT_TRUE(Constraint::offset("a", -1).isSimple());
  EXPECT_FALSE(Constraint::relational(pred("a = b"), "x").isSimple());
}

TEST(ConstraintTest, CopyPreservesPredicate) {
  Constraint A = Constraint::relational(pred("a < b"), "ax");
  Constraint B = A; // deep copy of the predicate
  EXPECT_EQ(A.str(), B.str());
}

TEST(CheckTest, ValueConstraint) {
  Constraint C = Constraint::value("df", 0);
  CompileTimeFacts Facts;
  // Unknown: the compiler can establish the value (cld).
  EXPECT_EQ(check(C, Facts), SatResult::Satisfiable);
  Facts.KnownValues["df"] = 0;
  EXPECT_EQ(check(C, Facts), SatResult::Satisfied);
  Facts.KnownValues["df"] = 1;
  EXPECT_EQ(check(C, Facts), SatResult::Violated);
}

TEST(CheckTest, RangeConstraintWithKnownValue) {
  Constraint C = Constraint::range("len", 1, 256);
  CompileTimeFacts Facts;
  Facts.KnownValues["len"] = 100;
  EXPECT_EQ(check(C, Facts), SatResult::Satisfied);
  Facts.KnownValues["len"] = 300;
  EXPECT_EQ(check(C, Facts, /*AllowRewriting=*/true),
            SatResult::Satisfiable);
  EXPECT_EQ(check(C, Facts, /*AllowRewriting=*/false), SatResult::Violated);
}

TEST(CheckTest, RangeConstraintWithKnownRange) {
  Constraint C = Constraint::range("len", 0, 65535);
  CompileTimeFacts Facts;
  Facts.KnownRanges["len"] = {0, 255};
  EXPECT_EQ(check(C, Facts), SatResult::Satisfied);
  Facts.KnownRanges["len"] = {0, 100000};
  EXPECT_EQ(check(C, Facts, /*AllowRewriting=*/false), SatResult::Unknown);
}

TEST(CheckTest, RangeConstraintUnknownOperand) {
  Constraint C = Constraint::range("len", 0, 255);
  CompileTimeFacts Facts;
  EXPECT_EQ(check(C, Facts, /*AllowRewriting=*/true),
            SatResult::Satisfiable);
  EXPECT_EQ(check(C, Facts, /*AllowRewriting=*/false), SatResult::Unknown);
}

TEST(CheckTest, OffsetIsAlwaysADirective) {
  CompileTimeFacts Facts;
  EXPECT_EQ(check(Constraint::offset("Len", -1), Facts),
            SatResult::Satisfiable);
}

TEST(CheckTest, RelationalNeedsAxiom) {
  Constraint C = Constraint::relational(pred("a + n <= b"),
                                        "pascal.no-overlap");
  CompileTimeFacts Facts;
  EXPECT_EQ(check(C, Facts), SatResult::Unknown);
  Facts.Axioms.insert("pascal.no-overlap");
  EXPECT_EQ(check(C, Facts), SatResult::Satisfied);
}

TEST(ConstraintSetTest, DeduplicatesByRendering) {
  ConstraintSet S;
  S.add(Constraint::value("df", 0));
  S.add(Constraint::value("df", 0));
  S.add(Constraint::value("df", 1));
  EXPECT_EQ(S.size(), 2u);
}

TEST(ConstraintSetTest, CheckAllTakesWorst) {
  ConstraintSet S;
  S.add(Constraint::value("rf", 1));
  CompileTimeFacts Facts;
  Facts.KnownValues["rf"] = 1;
  EXPECT_EQ(S.checkAll(Facts), SatResult::Satisfied);
  S.add(Constraint::value("df", 0)); // unknown -> satisfiable
  EXPECT_EQ(S.checkAll(Facts), SatResult::Satisfiable);
  S.add(Constraint::relational(pred("a < b"), "ax")); // no axiom -> unknown
  EXPECT_EQ(S.checkAll(Facts), SatResult::Unknown);
  Facts.KnownValues["df"] = 1; // violated dominates
  EXPECT_EQ(S.checkAll(Facts), SatResult::Violated);
}

TEST(ConstraintSetTest, HasRelational) {
  ConstraintSet S;
  S.add(Constraint::range("a", 0, 1));
  EXPECT_FALSE(S.hasRelational());
  S.add(Constraint::relational(pred("a = b"), "x"));
  EXPECT_TRUE(S.hasRelational());
}

TEST(ConstraintSetTest, EmptySetIsSatisfied) {
  ConstraintSet S;
  EXPECT_EQ(S.checkAll(CompileTimeFacts{}), SatResult::Satisfied);
  EXPECT_TRUE(S.empty());
}

} // namespace
