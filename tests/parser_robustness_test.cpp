//===- parser_robustness_test.cpp - Mutation robustness ---------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic mutation fuzzing of the front end: every library source
/// is subjected to truncations, character flips, deletions, and token
/// duplications, and the parser/validator must never crash or hang —
/// only return errors. Successfully parsed mutants must survive printing
/// and re-parsing, and interpretation under a step limit.
///
//===----------------------------------------------------------------------===//

#include "descriptions/Descriptions.h"
#include "interp/Interp.h"
#include "isdl/Parser.h"
#include "isdl/Printer.h"
#include "isdl/Validate.h"

#include <gtest/gtest.h>
#include <random>

using namespace extra;

namespace {

std::string mutate(const std::string &Src, std::mt19937_64 &Rng) {
  std::string Out = Src;
  std::uniform_int_distribution<int> Kind(0, 3);
  std::uniform_int_distribution<size_t> Pos(0, Out.empty() ? 0
                                                           : Out.size() - 1);
  switch (Kind(Rng)) {
  case 0: // truncate
    Out.resize(Pos(Rng));
    break;
  case 1: { // flip one character to printable ASCII
    if (!Out.empty()) {
      std::uniform_int_distribution<int> Ch(32, 126);
      Out[Pos(Rng)] = static_cast<char>(Ch(Rng));
    }
    break;
  }
  case 2: { // delete a span
    if (!Out.empty()) {
      size_t A = Pos(Rng), B = Pos(Rng);
      if (A > B)
        std::swap(A, B);
      Out.erase(A, B - A);
    }
    break;
  }
  case 3: { // duplicate a span
    if (!Out.empty()) {
      size_t A = Pos(Rng), B = Pos(Rng);
      if (A > B)
        std::swap(A, B);
      Out.insert(A, Out.substr(A, std::min<size_t>(B - A, 64)));
    }
    break;
  }
  }
  return Out;
}

TEST(ParserRobustnessTest, MutatedLibrarySourcesNeverCrash) {
  std::mt19937_64 Rng(0xF0CC1A);
  unsigned ParsedOk = 0, Rejected = 0;
  for (const descriptions::Entry &E : descriptions::allEntries()) {
    std::string Base = E.Source;
    for (int I = 0; I < 60; ++I) {
      std::string Mutant = mutate(Base, Rng);
      DiagnosticEngine Diags;
      auto D = isdl::parseDescription(Mutant, Diags);
      if (!D) {
        EXPECT_TRUE(Diags.hasErrors()) << "silent parse failure";
        ++Rejected;
        continue;
      }
      ++ParsedOk;
      // Parsed mutants must print, re-parse, and interpret boundedly.
      std::string Printed = isdl::printDescription(*D);
      DiagnosticEngine Diags2;
      auto Again = isdl::parseDescription(Printed, Diags2);
      EXPECT_TRUE(Again != nullptr)
          << "printer produced unparseable text:\n" << Printed;
      DiagnosticEngine VDiags;
      if (isdl::validate(*D, VDiags)) {
        interp::ExecOptions Opts;
        Opts.MaxSteps = 20000;
        interp::run(*D, {3, 5, 7, 2, 1, 4, 9, 8}, {}, Opts);
      }
    }
  }
  // Sanity: the mutation mix produces both outcomes.
  EXPECT_GT(ParsedOk, 0u);
  EXPECT_GT(Rejected, 0u);
}

TEST(ParserRobustnessTest, PathologicalInputs) {
  for (const char *Src : {
           "", "x", "x :=", "x := begin", "x := begin end end end",
           "x := begin ** ** end", ":= begin end", "x := begin ** S **",
           "x := begin ** S ** y<1:2>, end", // inverted bit range
           "x := begin ** S ** f() := begin end end",
           "x := begin ** S ** a: integer, x.execute := begin repeat "
           "end_repeat; end end",
           "((((((((((", "1 + + 2", "not not not",
       }) {
    DiagnosticEngine Diags;
    auto D = isdl::parseDescription(Src, Diags);
    if (D) {
      isdl::validate(*D, Diags);
      isdl::printDescription(*D);
    }
  }
  SUCCEED();
}

TEST(ParserRobustnessTest, MalformedInputCorpus) {
  // A corpus of shapes a killed editor session or a truncated download
  // leaves behind. Each must be rejected with a diagnostic (or parsed
  // cleanly) — never a crash, a hang, or a silent nullptr.
  const char *Corpus[] = {
      // Empty and whitespace-only files.
      "", " ", "\n\n\n", "\t \n \t",
      // Truncated scripts: a valid description cut at every interesting
      // boundary.
      "x",
      "x :=",
      "x := begin",
      "x := begin ** S",
      "x := begin ** S **",
      "x := begin ** S ** a: integer",
      "x := begin ** S ** a: integer, x.execute",
      "x := begin ** S ** a: integer, x.execute := begin",
      "x := begin ** S ** a: integer, x.execute := begin input (a)",
      "x := begin ** S ** a: integer, x.execute := begin input (a); "
      "a <- a +",
      "x := begin ** S ** a: integer, x.execute := begin input (a); "
      "a <- a + 1; output (a); end",
      // Unterminated character literals, including at end of input and
      // with an embedded newline.
      "x := begin ** S ** a: integer, x.execute := begin a <- 'q",
      "x := begin ** S ** a: integer, x.execute := begin a <- '",
      "x := begin ** S ** a: integer, x.execute := begin a <- '\n'; "
      "end end",
      // Stray bytes the lexer has no token for.
      "x := begin ** S ** \x01\x02 end", "@#$%^&", "x := begin ** \\ ** end",
  };
  for (const char *Src : Corpus) {
    DiagnosticEngine Diags;
    auto D = isdl::parseDescription(Src, Diags);
    if (!D)
      EXPECT_TRUE(Diags.hasErrors()) << "silent failure on: " << Src;
    // The checked wrapper is stricter: any diagnosed error is a typed
    // Parse fault, even when recovery produced a tree.
    auto E = isdl::parseDescriptionChecked(Src);
    EXPECT_EQ(static_cast<bool>(E), D != nullptr && !Diags.hasErrors())
        << Src;
    if (!E) {
      EXPECT_EQ(E.fault().Category, FaultCategory::Parse) << Src;
      EXPECT_FALSE(E.fault().Message.empty()) << Src;
    }
  }
}

TEST(ParserRobustnessTest, ExcessiveNestingRejectedNotOverflowed) {
  // 600 levels of parenthesized expression — past the parser's recursion
  // guard (512) — must produce a nesting diagnostic, not a stack
  // overflow.
  std::string Expr(600, '(');
  Expr += "1";
  Expr += std::string(600, ')');
  std::string Src = "x := begin ** S ** a: integer, x.execute := begin "
                    "a <- " + Expr + "; output (a); end end";
  DiagnosticEngine Diags;
  auto D = isdl::parseDescription(Src, Diags);
  EXPECT_EQ(D, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("nesting"), std::string::npos) << Diags.str();

  // Statement nesting hits the same guard.
  std::string Body;
  for (int I = 0; I < 600; ++I)
    Body += "if a > 0 then ";
  Body += "a <- 1;";
  for (int I = 0; I < 600; ++I)
    Body += " end_if;";
  std::string Src2 = "x := begin ** S ** a: integer, x.execute := begin "
                     "input (a); " + Body + " output (a); end end";
  DiagnosticEngine Diags2;
  auto D2 = isdl::parseDescription(Src2, Diags2);
  EXPECT_EQ(D2, nullptr);
  EXPECT_TRUE(Diags2.hasErrors());
}

TEST(ParserRobustnessTest, DeepNestingDoesNotOverflowQuickly) {
  // 200 nested conditionals: parser, validator, printer, and interpreter
  // recursion depth stays manageable.
  std::string Body;
  for (int I = 0; I < 200; ++I)
    Body += "if a > " + std::to_string(I) + " then ";
  Body += "a <- a + 1;";
  for (int I = 0; I < 200; ++I)
    Body += " end_if;";
  std::string Src = "x := begin ** S ** a: integer, x.execute := begin "
                    "input (a); " + Body + " output (a); end end";
  DiagnosticEngine Diags;
  auto D = isdl::parseDescription(Src, Diags);
  ASSERT_TRUE(D && !Diags.hasErrors()) << Diags.str();
  EXPECT_TRUE(isdl::validate(*D, Diags));
  isdl::printDescription(*D);
  auto Taken = interp::run(*D, {500});
  ASSERT_TRUE(Taken.Ok) << Taken.Error;
  EXPECT_EQ(Taken.Outputs, std::vector<int64_t>{501});
  auto NotTaken = interp::run(*D, {0});
  ASSERT_TRUE(NotTaken.Ok);
  EXPECT_EQ(NotTaken.Outputs, std::vector<int64_t>{0});
}

} // namespace
