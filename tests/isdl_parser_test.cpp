//===- isdl_parser_test.cpp - Parser unit tests -----------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/Parser.h"

#include "TestSources.h"
#include "isdl/Printer.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::isdl;

namespace {

std::unique_ptr<Description> parseOk(std::string_view Src) {
  DiagnosticEngine Diags;
  auto D = parseDescription(Src, Diags);
  EXPECT_TRUE(D != nullptr) << Diags.str();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return D;
}

ExprPtr exprOk(std::string_view Src) {
  DiagnosticEngine Diags;
  ExprPtr E = parseExpr(Src, Diags);
  EXPECT_TRUE(E != nullptr) << Diags.str();
  return E;
}

TEST(ParserTest, ParsesRigelIndexFigure2) {
  auto D = parseOk(extra::testing::RigelIndexSource);
  EXPECT_EQ(D->getName(), "index.operation");
  ASSERT_EQ(D->getSections().size(), 3u);
  EXPECT_EQ(D->getSections()[0].Name, "SOURCE.ACCESS");
  EXPECT_EQ(D->getSections()[1].Name, "STATE");
  EXPECT_EQ(D->getSections()[2].Name, "STRING.PROCESS");

  const Decl *Base = D->findDecl("Src.Base");
  ASSERT_NE(Base, nullptr);
  EXPECT_EQ(Base->Type.K, TypeRef::Kind::Integer);

  const Routine *Read = D->findRoutine("read");
  ASSERT_NE(Read, nullptr);
  EXPECT_EQ(Read->ResultType.K, TypeRef::Kind::Integer);
  EXPECT_EQ(Read->Body.size(), 2u);

  const Routine *Entry = D->entryRoutine();
  ASSERT_NE(Entry, nullptr);
  EXPECT_EQ(Entry->Name, "index.execute");
  // input, assign, repeat, if
  EXPECT_EQ(Entry->Body.size(), 4u);
}

TEST(ParserTest, ParsesScasbFigure3) {
  auto D = parseOk(extra::testing::ScasbSource);
  EXPECT_EQ(D->getName(), "scasb.instruction");

  const Decl *Di = D->findDecl("di");
  ASSERT_NE(Di, nullptr);
  EXPECT_EQ(Di->Type.K, TypeRef::Kind::Bits);
  EXPECT_EQ(Di->Type.widthInBits(), 16u);

  const Decl *Rf = D->findDecl("rf");
  ASSERT_NE(Rf, nullptr);
  EXPECT_TRUE(Rf->Type.isFlag());

  const Routine *Fetch = D->findRoutine("fetch");
  ASSERT_NE(Fetch, nullptr);
  EXPECT_EQ(Fetch->ResultType.widthInBits(), 8u);

  const Routine *Entry = D->entryRoutine();
  ASSERT_NE(Entry, nullptr);
  EXPECT_EQ(Entry->Name, "scasb.execute");
}

TEST(ParserTest, EntryRoutineInputOperands) {
  auto D = parseOk(extra::testing::ScasbSource);
  const Routine *Entry = D->entryRoutine();
  const auto *In = dyn_cast<InputStmt>(Entry->Body.front().get());
  ASSERT_NE(In, nullptr);
  std::vector<std::string> Expected = {"rf", "rfz", "df", "zf",
                                       "di", "cx",  "al"};
  EXPECT_EQ(In->getTargets(), Expected);
}

TEST(ParserTest, ExprPrecedenceOrAndNot) {
  ExprPtr E = exprOk("a or b and not c");
  const auto *Or = dyn_cast<BinaryExpr>(E.get());
  ASSERT_NE(Or, nullptr);
  EXPECT_EQ(Or->getOp(), BinaryOp::Or);
  const auto *And = dyn_cast<BinaryExpr>(Or->getRHS());
  ASSERT_NE(And, nullptr);
  EXPECT_EQ(And->getOp(), BinaryOp::And);
  EXPECT_NE(dyn_cast<UnaryExpr>(And->getRHS()), nullptr);
}

TEST(ParserTest, ExprPrecedenceArithmeticOverRelational) {
  ExprPtr E = exprOk("a + 1 = b * 2");
  const auto *Eq = dyn_cast<BinaryExpr>(E.get());
  ASSERT_NE(Eq, nullptr);
  EXPECT_EQ(Eq->getOp(), BinaryOp::Eq);
  EXPECT_EQ(cast<BinaryExpr>(Eq->getLHS())->getOp(), BinaryOp::Add);
  EXPECT_EQ(cast<BinaryExpr>(Eq->getRHS())->getOp(), BinaryOp::Mul);
}

TEST(ParserTest, SubtractionIsLeftAssociative) {
  ExprPtr E = exprOk("a - b - c");
  const auto *Outer = cast<BinaryExpr>(E.get());
  EXPECT_EQ(Outer->getOp(), BinaryOp::Sub);
  const auto *Inner = dyn_cast<BinaryExpr>(Outer->getLHS());
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->getOp(), BinaryOp::Sub);
  EXPECT_EQ(cast<VarRef>(Outer->getRHS())->getName(), "c");
}

TEST(ParserTest, MemoryReferenceExpression) {
  ExprPtr E = exprOk("Mb[Src.Base + Src.Index]");
  const auto *M = dyn_cast<MemRef>(E.get());
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(cast<BinaryExpr>(M->getAddress())->getOp(), BinaryOp::Add);
}

TEST(ParserTest, CallExpression) {
  ExprPtr E = exprOk("ch = read()");
  const auto *Eq = cast<BinaryExpr>(E.get());
  EXPECT_NE(dyn_cast<CallExpr>(Eq->getRHS()), nullptr);
}

TEST(ParserTest, UnaryMinus) {
  ExprPtr E = exprOk("-x + 1");
  const auto *Add = cast<BinaryExpr>(E.get());
  const auto *Neg = dyn_cast<UnaryExpr>(Add->getLHS());
  ASSERT_NE(Neg, nullptr);
  EXPECT_EQ(Neg->getOp(), UnaryOp::Neg);
}

TEST(ParserTest, StatementsMemAssign) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts("Mb[di] <- al; di <- di + 1;", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_EQ(Stmts.size(), 2u);
  const auto *A = dyn_cast<AssignStmt>(Stmts[0].get());
  ASSERT_NE(A, nullptr);
  EXPECT_NE(dyn_cast<MemRef>(A->getTarget()), nullptr);
}

TEST(ParserTest, IfWithoutElse) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts("if a = 0 then b <- 1; end_if;", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  const auto *If = dyn_cast<IfStmt>(Stmts[0].get());
  ASSERT_NE(If, nullptr);
  EXPECT_EQ(If->getThen().size(), 1u);
  EXPECT_TRUE(If->getElse().empty());
}

TEST(ParserTest, NestedRepeatAndExit) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts(
      "repeat exit_when (a = 0); repeat exit_when (b = 0); end_repeat; "
      "end_repeat;",
      Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  const auto *Outer = dyn_cast<RepeatStmt>(Stmts[0].get());
  ASSERT_NE(Outer, nullptr);
  ASSERT_EQ(Outer->getBody().size(), 2u);
  EXPECT_NE(dyn_cast<RepeatStmt>(Outer->getBody()[1].get()), nullptr);
}

TEST(ParserTest, ConstrainStatementWithTag) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts("constrain range: len <= 65535;", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  const auto *C = dyn_cast<ConstrainStmt>(Stmts[0].get());
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->getTag(), "range");
}

TEST(ParserTest, AssertStatement) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts("assert cx >= 0;", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_NE(dyn_cast<AssertStmt>(Stmts[0].get()), nullptr);
}

TEST(ParserTest, MissingSemicolonReported) {
  DiagnosticEngine Diags;
  parseStmts("a <- 1", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, BadDescriptionHeaderReturnsNull) {
  DiagnosticEngine Diags;
  auto D = parseDescription("42 := begin end", Diags);
  EXPECT_EQ(D, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, MissingEndReported) {
  DiagnosticEngine Diags;
  auto D = parseDescription("x := begin ** S ** a: integer,", Diags);
  EXPECT_EQ(D, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, ComplexExitCondition) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts(
      "exit_when (rfz and (not zf)) or ((not rfz) and zf);", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  const auto *E = dyn_cast<ExitWhenStmt>(Stmts[0].get());
  ASSERT_NE(E, nullptr);
  const auto *Or = dyn_cast<BinaryExpr>(E->getCond());
  ASSERT_NE(Or, nullptr);
  EXPECT_EQ(Or->getOp(), BinaryOp::Or);
}

TEST(ParserTest, FlagResultRoutine) {
  auto D = parseOk("x := begin ** S ** f()<> := begin f <- 1; end "
                   "x.execute := begin f <- f(); end end");
  // `f <- f();` inside the entry is nonsense semantically but parses; the
  // validator rejects it separately.
  EXPECT_NE(D->findRoutine("f"), nullptr);
  EXPECT_TRUE(D->findRoutine("f")->ResultType.isFlag());
}

} // namespace
