//===- support_test.cpp - Support library unit tests ------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

using namespace extra;

namespace {

TEST(DiagnosticsTest, ErrorCounting) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning({1, 2}, "w");
  EXPECT_FALSE(D.hasErrors());
  D.error({3, 4}, "e");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 2u);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.diagnostics().empty());
}

TEST(DiagnosticsTest, Rendering) {
  DiagnosticEngine D;
  D.error({3, 7}, "bad thing");
  D.note(SourceLoc(), "context");
  std::string S = D.str();
  EXPECT_NE(S.find("3:7: error: bad thing"), std::string::npos);
  EXPECT_NE(S.find("note: context"), std::string::npos);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(StringUtilTest, Pad) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(startsWith("abc", "ab"));
  EXPECT_TRUE(startsWith("abc", ""));
  EXPECT_FALSE(startsWith("abc", "abcd"));
  EXPECT_FALSE(startsWith("abc", "b"));
}

} // namespace
