//===- support_test.cpp - Support library unit tests ------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/Error.h"
#include "support/FaultInjection.h"
#include "support/StringUtil.h"
#include "support/VersionedFile.h"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <memory>
#include <thread>
#include <vector>

using namespace extra;

namespace {

TEST(DiagnosticsTest, ErrorCounting) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning({1, 2}, "w");
  EXPECT_FALSE(D.hasErrors());
  D.error({3, 4}, "e");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 2u);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.diagnostics().empty());
}

TEST(DiagnosticsTest, Rendering) {
  DiagnosticEngine D;
  D.error({3, 7}, "bad thing");
  D.note(SourceLoc(), "context");
  std::string S = D.str();
  EXPECT_NE(S.find("3:7: error: bad thing"), std::string::npos);
  EXPECT_NE(S.find("note: context"), std::string::npos);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(StringUtilTest, Pad) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(startsWith("abc", "ab"));
  EXPECT_TRUE(startsWith("abc", ""));
  EXPECT_FALSE(startsWith("abc", "abcd"));
  EXPECT_FALSE(startsWith("abc", "b"));
}

//===----------------------------------------------------------------------===//
// Typed faults and Expected<T>
//===----------------------------------------------------------------------===//

TEST(ErrorTest, FaultCategoryNamesRoundTrip) {
  for (FaultCategory C :
       {FaultCategory::None, FaultCategory::Parse, FaultCategory::Validate,
        FaultCategory::InterpBudget, FaultCategory::RuleApplication,
        FaultCategory::Synth, FaultCategory::Internal})
    EXPECT_EQ(faultCategoryFromName(faultCategoryName(C)), C);
  // Unknown names degrade to Internal, never crash.
  EXPECT_EQ(faultCategoryFromName("???"), FaultCategory::Internal);
}

TEST(ErrorTest, ExpectedCarriesValueOrFault) {
  Expected<int> Ok(42);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(*Ok, 42);
  EXPECT_FALSE(Ok.fault().isFault());

  Expected<int> Bad(makeFault(FaultCategory::Parse, "boom"));
  ASSERT_FALSE(Bad);
  EXPECT_EQ(Bad.fault().Category, FaultCategory::Parse);
  EXPECT_EQ(Bad.fault().str(), "parse: boom");
}

TEST(ErrorTest, ExpectedMoveOnlyPayload) {
  Expected<std::unique_ptr<int>> E(std::make_unique<int>(7));
  ASSERT_TRUE(E);
  std::unique_ptr<int> P = E.take();
  ASSERT_TRUE(P);
  EXPECT_EQ(*P, 7);
}

//===----------------------------------------------------------------------===//
// Deterministic fault injection
//===----------------------------------------------------------------------===//

/// Disarms the injector on scope exit so tests cannot leak a spec.
struct InjectorReset {
  ~InjectorReset() { FaultInjector::instance().reset(); }
};

TEST(FaultInjectionTest, DisarmedIsSilent) {
  InjectorReset Guard;
  FaultInjector::instance().reset();
  EXPECT_FALSE(FaultInjector::instance().armed());
  for (int I = 0; I < 1000; ++I)
    EXPECT_FALSE(FaultInjector::instance().shouldFail("parser"));
  EXPECT_EQ(FaultInjector::instance().injectedTotal(), 0u);
}

TEST(FaultInjectionTest, SpecValidation) {
  InjectorReset Guard;
  std::string Err;
  EXPECT_FALSE(FaultInjector::instance().configure("nosuchsite=0.5", &Err));
  EXPECT_NE(Err.find("nosuchsite"), std::string::npos);
  EXPECT_FALSE(FaultInjector::instance().configure("parser=1.5", &Err));
  EXPECT_FALSE(FaultInjector::instance().configure("parser=", &Err));
  EXPECT_FALSE(FaultInjector::instance().configure("parser", &Err));
  EXPECT_TRUE(
      FaultInjector::instance().configure("parser=0.5, synth=0.25", &Err))
      << Err;
  EXPECT_TRUE(FaultInjector::instance().armed());
}

TEST(FaultInjectionTest, DecisionsDeterministicWithinScope) {
  // The Nth check of a site inside a named scope is a pure function of
  // (seed, site, scope, N): replaying the same scope yields the same
  // decision sequence.
  InjectorReset Guard;
  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().configure("parser=0.3", &Err)) << Err;

  auto Sequence = [] {
    std::vector<bool> Out;
    FaultScope Scope("case-a");
    for (int I = 0; I < 64; ++I)
      Out.push_back(FaultInjector::instance().shouldFail("parser"));
    return Out;
  };
  std::vector<bool> First = Sequence();
  std::vector<bool> Second = Sequence();
  EXPECT_EQ(First, Second);

  // A different scope label sees a different (but equally deterministic)
  // stream.
  std::vector<bool> Other;
  {
    FaultScope Scope("case-b");
    for (int I = 0; I < 64; ++I)
      Other.push_back(FaultInjector::instance().shouldFail("parser"));
  }
  EXPECT_NE(First, Other);
}

TEST(FaultInjectionTest, DecisionsIndependentOfThread) {
  // Scoped decisions are thread-local state only: two threads replaying
  // the same scope observe identical streams.
  InjectorReset Guard;
  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().configure("interp=0.4", &Err)) << Err;

  auto Run = [](std::vector<bool> &Out) {
    FaultScope Scope("case-x");
    for (int I = 0; I < 64; ++I)
      Out.push_back(FaultInjector::instance().shouldFail("interp"));
  };
  std::vector<bool> A, B;
  std::thread T1([&] { Run(A); });
  std::thread T2([&] { Run(B); });
  T1.join();
  T2.join();
  EXPECT_EQ(A, B);
}

TEST(FaultInjectionTest, SuppressWins) {
  InjectorReset Guard;
  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().configure("validate=1", &Err)) << Err;
  EXPECT_TRUE(FaultInjector::instance().shouldFail("validate"));
  {
    FaultSuppress Quiet;
    for (int I = 0; I < 100; ++I)
      EXPECT_FALSE(FaultInjector::instance().shouldFail("validate"));
  }
  EXPECT_TRUE(FaultInjector::instance().shouldFail("validate"));
}

TEST(FaultInjectionTest, RateOneAlwaysFiresRateZeroNever) {
  InjectorReset Guard;
  std::string Err;
  ASSERT_TRUE(
      FaultInjector::instance().configure("synth=1,rule-apply=0", &Err))
      << Err;
  FaultScope Scope("rates");
  for (int I = 0; I < 50; ++I) {
    EXPECT_TRUE(FaultInjector::instance().shouldFail("synth"));
    EXPECT_FALSE(FaultInjector::instance().shouldFail("rule-apply"));
  }
  auto Fired = FaultInjector::instance().firedBySite();
  ASSERT_EQ(Fired.size(), 2u);
}

// --- VersionedFile: the shared JSONL durability contract ---

class VersionedFileTest : public ::testing::Test {
protected:
  std::string Path;
  support::FileFormat Fmt{"extra-widget", 3, "widget file"};

  void SetUp() override {
    Path = testing::TempDir() + "/versioned_file_test.jsonl";
    std::remove(Path.c_str());
  }
  void TearDown() override { std::remove(Path.c_str()); }

  void writeRaw(const std::string &Text) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << Text;
  }
};

TEST_F(VersionedFileTest, HeaderLineRoundTrips) {
  std::string Line = support::versionHeaderLine("extra-widget", 3);
  auto H = support::parseVersionHeader(Line);
  ASSERT_TRUE(H.has_value());
  EXPECT_EQ(H->first, "extra-widget");
  EXPECT_EQ(H->second, 3u);
}

TEST_F(VersionedFileTest, RecordLinesAreNotHeaders) {
  EXPECT_FALSE(support::parseVersionHeader("{\"key\":\"a/b\"}").has_value());
  EXPECT_FALSE(support::parseVersionHeader("{\"format\":\"x\"").has_value());
  EXPECT_FALSE(support::parseVersionHeader("not json at all").has_value());
  EXPECT_FALSE(support::parseVersionHeader("").has_value());
}

TEST_F(VersionedFileTest, MissingFileReadsEmpty) {
  auto Lines = support::readVersionedLines(Path, Fmt);
  ASSERT_TRUE(Lines);
  EXPECT_TRUE(Lines->empty());
}

TEST_F(VersionedFileTest, AppendStampsHeaderOnceAndReaderStripsIt) {
  ASSERT_TRUE(support::appendVersionedLine(Path, Fmt, "{\"n\":1}"));
  ASSERT_TRUE(support::appendVersionedLine(Path, Fmt, "{\"n\":2}"));
  std::ifstream In(Path);
  std::string First;
  std::getline(In, First);
  EXPECT_TRUE(support::parseVersionHeader(First).has_value());
  auto Lines = support::readVersionedLines(Path, Fmt);
  ASSERT_TRUE(Lines);
  EXPECT_EQ(*Lines, (std::vector<std::string>{"{\"n\":1}", "{\"n\":2}"}));
}

TEST_F(VersionedFileTest, AppendAfterTornTailStartsAFreshLine) {
  // A run killed mid-append leaves an unterminated tail; the next append
  // must not weld two records onto one line.
  writeRaw(support::versionHeaderLine("extra-widget", 3) + "\n{\"n\":1}");
  ASSERT_TRUE(support::appendVersionedLine(Path, Fmt, "{\"n\":2}"));
  auto Lines = support::readVersionedLines(Path, Fmt);
  ASSERT_TRUE(Lines);
  EXPECT_EQ(*Lines, (std::vector<std::string>{"{\"n\":1}", "{\"n\":2}"}));
}

TEST_F(VersionedFileTest, HeaderlessFileIsToleratedAsCurrentVersion) {
  writeRaw("{\"n\":1}\n\n{\"n\":2}\n");
  auto Lines = support::readVersionedLines(Path, Fmt);
  ASSERT_TRUE(Lines);
  EXPECT_EQ(*Lines, (std::vector<std::string>{"{\"n\":1}", "{\"n\":2}"}));
}

TEST_F(VersionedFileTest, ForeignFormatIsATypedStoreFault) {
  writeRaw(support::versionHeaderLine("extra-other", 1) + "\n{\"n\":1}\n");
  auto Lines = support::readVersionedLines(Path, Fmt);
  ASSERT_FALSE(Lines);
  EXPECT_EQ(Lines.fault().Category, FaultCategory::Store);
  EXPECT_NE(Lines.fault().Message.find("not a widget file"),
            std::string::npos);
}

TEST_F(VersionedFileTest, FutureVersionIsATypedStoreFault) {
  writeRaw(support::versionHeaderLine("extra-widget", 4) + "\n{\"n\":1}\n");
  auto Lines = support::readVersionedLines(Path, Fmt);
  ASSERT_FALSE(Lines);
  EXPECT_EQ(Lines.fault().Category, FaultCategory::Store);
  EXPECT_NE(Lines.fault().Message.find("reads up to version"),
            std::string::npos);
}

TEST_F(VersionedFileTest, WholeFileWriteRoundTrips) {
  ASSERT_TRUE(support::appendVersionedLine(Path, Fmt, "{\"stale\":true}"));
  ASSERT_TRUE(
      support::writeVersionedFile(Path, Fmt, {"{\"n\":1}", "{\"n\":2}"}));
  auto Lines = support::readVersionedLines(Path, Fmt);
  ASSERT_TRUE(Lines);
  EXPECT_EQ(*Lines, (std::vector<std::string>{"{\"n\":1}", "{\"n\":2}"}));
}

} // namespace
