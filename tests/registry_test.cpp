//===- registry_test.cpp - Binding registry subsystem tests -----*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// The executable-registry pipeline end to end: format round trips and
// version-header behavior, imports from every artifact source, constraint
// text re-parsing, binding compilation per machine, and the differential
// execution proof that registry-compiled bindings produce simulator
// states identical to decomposition while dispatching strictly fewer
// instructions.
//
//===----------------------------------------------------------------------===//

#include "registry/Harness.h"
#include "registry/RegistryBuilder.h"

#include "analysis/Derivations.h"
#include "search/Checkpoint.h"
#include "support/VersionedFile.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#ifndef EXTRA_SOURCE_DIR
#define EXTRA_SOURCE_DIR "."
#endif

using namespace extra;
using namespace extra::registry;

namespace {

struct TempFile {
  std::string Path;
  explicit TempFile(const std::string &Name)
      : Path(::testing::TempDir() + Name) {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
};

/// The recorded corpus, built once — replaying all 14 derivations is the
/// slow part of these tests.
const Registry &recordedRegistry() {
  static const Registry R = [] {
    RegistryBuilder B;
    auto N = B.addRecordedCases();
    EXPECT_TRUE(N) << (N ? "" : N.fault().Message);
    return B.registry();
  }();
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Building from the recorded corpus
//===----------------------------------------------------------------------===//

TEST(RegistryBuilder, RecordedCorpusAdmitsAllFourteenPairings) {
  const Registry &R = recordedRegistry();
  // 11 Table 2 cases + stosb/clear + skpc/span + movc3/sassign.
  EXPECT_EQ(R.size(), 14u);
  for (const RegistryEntry *E : R.entries()) {
    EXPECT_FALSE(E->Key.empty());
    EXPECT_FALSE(E->Constraints.empty()) << E->AnalysisId;
    EXPECT_FALSE(E->Binding.empty()) << E->AnalysisId;
    if (E->Mnemonic != "mvc") // mvc matches with no instruction rewriting.
      EXPECT_FALSE(E->InstScript.empty()) << E->AnalysisId;
    EXPECT_EQ(E->Source, "recorded");
    EXPECT_FALSE(E->Machine.empty()) << E->InstructionId;
  }
}

TEST(RegistryBuilder, ScriptsDirImportMatchesRecordedCorpus) {
  RegistryBuilder B;
  auto N = B.importScriptsDir(std::string(EXTRA_SOURCE_DIR) + "/scripts");
  ASSERT_TRUE(N) << N.fault().Message;
  EXPECT_EQ(*N, 14u) << [&] {
    std::string Msg;
    for (const BuildNote &Note : B.notes())
      Msg += Note.CaseId + ": " + Note.Detail + "\n";
    return Msg;
  }();
  // The shipped scripts regenerate the same constraint sets the built-in
  // corpus does.
  for (const RegistryEntry *E : recordedRegistry().entries()) {
    const RegistryEntry *F = B.registry().find(E->Key);
    ASSERT_NE(F, nullptr) << E->AnalysisId;
    EXPECT_EQ(F->Constraints, E->Constraints) << E->AnalysisId;
    EXPECT_EQ(F->Binding, E->Binding) << E->AnalysisId;
  }
}

TEST(RegistryBuilder, CheckpointImportReplaysVerifiedCasesOnly) {
  TempFile F("registry_ckpt.jsonl");
  search::CheckpointRecord Good;
  Good.Case = "i8086.scasb/rigel.index";
  Good.Outcome = search::CaseOutcome::Verified;
  search::CheckpointRecord Bad;
  Bad.Case = "vax.locc/clu.search";
  Bad.Outcome = search::CaseOutcome::TimedOut;
  ASSERT_TRUE(search::appendCheckpoint(F.Path, Good));
  ASSERT_TRUE(search::appendCheckpoint(F.Path, Bad));

  RegistryBuilder B;
  auto N = B.importCheckpoint(F.Path);
  ASSERT_TRUE(N) << N.fault().Message;
  EXPECT_EQ(*N, 1u);
  EXPECT_EQ(B.registry().size(), 1u);
  EXPECT_EQ(B.registry().entries()[0]->AnalysisId, "i8086.scasb/rigel.index");
  EXPECT_EQ(B.registry().entries()[0]->Source, "checkpoint");
}

TEST(RegistryBuilder, MemoImportTakesVerifiedEntriesVerbatim) {
  // A memo line as the server writes it: verified, with the rendered
  // payload. The import must trust it without replay and carry budgets.
  const RegistryEntry *Seed = nullptr;
  for (const RegistryEntry *E : recordedRegistry().entries())
    if (E->AnalysisId == "i8086.scasb/rigel.index")
      Seed = E;
  ASSERT_NE(Seed, nullptr);

  TempFile F("registry_memo.jsonl");
  {
    std::ofstream Out(F.Path);
    Out << search::versionHeaderLine("extra-memo", 1) << "\n";
    RegistryEntry E = *Seed;
    // Reuse the registry rendering: the memo format is a superset of the
    // checkpoint record plus exactly these payload keys.
    std::string Line = E.toJsonLine();
    Line.insert(Line.size() - 1, ",\"outcome\":\"verified\"");
    Out << Line << "\n";
  }
  RegistryBuilder B;
  auto N = B.importMemoFile(F.Path);
  ASSERT_TRUE(N) << N.fault().Message;
  EXPECT_EQ(*N, 1u);
  const RegistryEntry *E = B.registry().find(Seed->Key);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Source, "memo");
  EXPECT_EQ(E->Constraints, Seed->Constraints);
  EXPECT_EQ(E->InstScript, Seed->InstScript);
}

//===----------------------------------------------------------------------===//
// Serialization: round trip, torn tail, version headers
//===----------------------------------------------------------------------===//

TEST(RegistryFormat, SaveLoadRoundTripPreservesEveryField) {
  TempFile F("registry_roundtrip.jsonl");
  const Registry &R = recordedRegistry();
  auto Saved = R.save(F.Path);
  ASSERT_TRUE(Saved) << Saved.fault().Message;

  auto Loaded = Registry::load(F.Path);
  ASSERT_TRUE(Loaded) << Loaded.fault().Message;
  ASSERT_EQ(Loaded->size(), R.size());
  for (const RegistryEntry *E : R.entries()) {
    const RegistryEntry *L = Loaded->find(E->Key);
    ASSERT_NE(L, nullptr) << E->Key;
    EXPECT_EQ(L->toJsonLine(), E->toJsonLine());
  }
}

TEST(RegistryFormat, MissingFileLoadsEmpty) {
  auto R = Registry::load(::testing::TempDir() + "no_such_registry.jsonl");
  ASSERT_TRUE(R);
  EXPECT_TRUE(R->empty());
}

TEST(RegistryFormat, TornTrailingLineIsSkipped) {
  TempFile F("registry_torn.jsonl");
  ASSERT_TRUE(recordedRegistry().save(F.Path));
  {
    std::ofstream Out(F.Path, std::ios::app);
    Out << "{\"key\":\"0xdead\",\"case\":\"i80"; // Killed mid-append.
  }
  auto R = Registry::load(F.Path);
  ASSERT_TRUE(R) << R.fault().Message;
  EXPECT_EQ(R->size(), recordedRegistry().size());
}

TEST(RegistryFormat, LaterRecordWinsOnDuplicateKey) {
  TempFile F("registry_dup.jsonl");
  const RegistryEntry *Seed = recordedRegistry().entries()[0];
  ASSERT_TRUE(Registry::appendEntry(F.Path, *Seed));
  RegistryEntry Updated = *Seed;
  Updated.Source = "memo";
  ASSERT_TRUE(Registry::appendEntry(F.Path, Updated));

  auto R = Registry::load(F.Path);
  ASSERT_TRUE(R);
  ASSERT_EQ(R->size(), 1u);
  EXPECT_EQ(R->entries()[0]->Source, "memo");
}

TEST(RegistryFormat, HeaderlessFileIsTolerated) {
  TempFile F("registry_headerless.jsonl");
  {
    std::ofstream Out(F.Path);
    Out << recordedRegistry().entries()[0]->toJsonLine() << "\n";
  }
  auto R = Registry::load(F.Path);
  ASSERT_TRUE(R) << R.fault().Message;
  EXPECT_EQ(R->size(), 1u);
}

TEST(RegistryFormat, ForeignFormatHeaderIsATypedStoreFault) {
  TempFile F("registry_foreign.jsonl");
  {
    std::ofstream Out(F.Path);
    Out << search::versionHeaderLine(search::kCheckpointFormat, 1) << "\n";
  }
  auto R = Registry::load(F.Path);
  ASSERT_FALSE(R);
  EXPECT_EQ(R.fault().Category, FaultCategory::Store);
}

TEST(RegistryFormat, FutureVersionHeaderIsATypedStoreFault) {
  TempFile F("registry_future.jsonl");
  {
    std::ofstream Out(F.Path);
    Out << search::versionHeaderLine(kRegistryFormat, kRegistryVersion + 1)
        << "\n";
  }
  auto R = Registry::load(F.Path);
  ASSERT_FALSE(R);
  EXPECT_EQ(R.fault().Category, FaultCategory::Store);
  EXPECT_NE(R.fault().Message.find("reads up to version"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Constraint text re-parsing
//===----------------------------------------------------------------------===//

TEST(ConstraintText, EveryRecordedSetReParsesToTheSameRendering) {
  for (const RegistryEntry *E : recordedRegistry().entries()) {
    auto CS = parseConstraintText(E->Constraints);
    ASSERT_TRUE(CS) << E->AnalysisId << ": " << CS.fault().Message;
    EXPECT_EQ(CS->str(), E->Constraints) << E->AnalysisId;
  }
}

TEST(ConstraintText, UnknownRenderingIsAParseFault) {
  auto CS = parseConstraintText("flavor: very exotic\n");
  ASSERT_FALSE(CS);
  EXPECT_EQ(CS.fault().Category, FaultCategory::Parse);
}

//===----------------------------------------------------------------------===//
// Binding compilation
//===----------------------------------------------------------------------===//

TEST(BindingCompiler, EveryInVocabularyEntryLowers) {
  for (const RegistryEntry *E : recordedRegistry().entries()) {
    auto B = compileBinding(*E);
    if (E->Op.empty()) {
      // rigel.span has no code-generator operator kind; the entry is
      // carried by the format but not lowerable.
      EXPECT_FALSE(B) << E->AnalysisId;
      continue;
    }
    ASSERT_TRUE(B) << E->AnalysisId << ": " << B.fault().Message;
    EXPECT_EQ(B->Mnemonic, E->Mnemonic);
    EXPECT_EQ(B->AnalysisId, E->AnalysisId);
    EXPECT_TRUE(static_cast<bool>(B->Emit));
  }
}

TEST(BindingCompiler, LoaderDeduplicatesTwoLanguagePairings) {
  auto T = codegen::makeI8086Target();
  T->clearBindings();
  std::vector<CompileNote> Notes;
  unsigned N =
      loadRegistryBindings(recordedRegistry(), "i8086", *T, &Notes);
  // scasb is discovered against both pascal.index and clu.search; one
  // binding covers both. movsb likewise. With cmpsb and stosb: 4.
  EXPECT_EQ(N, 4u);
  EXPECT_EQ(T->bindings().size(), 4u);
  bool SawDup = false;
  for (const CompileNote &Note : Notes)
    SawDup |= Note.Detail.find("already loaded") != std::string::npos;
  EXPECT_TRUE(SawDup);
}

TEST(BindingCompiler, MvcChunkSizeComesFromTheRangeConstraint) {
  // The 370 registry binding must chunk a 700-byte literal move at the
  // constraint's 256 bound — the number appears nowhere in the compiler.
  const RegistryEntry *Mvc = nullptr;
  for (const RegistryEntry *E : recordedRegistry().entries())
    if (E->Machine == "ibm370")
      Mvc = E;
  ASSERT_NE(Mvc, nullptr);
  auto B = compileBinding(*Mvc);
  ASSERT_TRUE(B) << B.fault().Message;
  ASSERT_TRUE(static_cast<bool>(B->RewriteEmit));

  codegen::CodeGenContext Ctx;
  codegen::HLOp Move = codegen::strMove(codegen::Value::literal(3000),
                                        codegen::Value::literal(1000),
                                        codegen::Value::literal(700));
  constraint::CompileTimeFacts Facts;
  ASSERT_TRUE(B->RewriteEmit(Move, Facts, Ctx));
  unsigned Chunks = 0;
  for (const std::string &Line : Ctx.lines())
    if (Line.find("mvc (r1), (r2), ") != std::string::npos)
      ++Chunks;
  EXPECT_EQ(Chunks, 3u); // 256 + 256 + 188.
}

//===----------------------------------------------------------------------===//
// Differential execution: registry bindings vs decomposition
//===----------------------------------------------------------------------===//

TEST(Differential, DemoProgramIsStateIdenticalAndCheaperOnAllMachines) {
  const Registry &R = recordedRegistry();
  for (MachineKind MK : allMachines()) {
    DifferentialReport Rep =
        runDifferential(MK, R, demoProgram(), demoMemory());
    EXPECT_TRUE(Rep.WithRegistry.Ok)
        << machineName(MK) << ": " << Rep.WithRegistry.Error;
    EXPECT_TRUE(Rep.Baseline.Ok)
        << machineName(MK) << ": " << Rep.Baseline.Error;
    EXPECT_TRUE(Rep.StatesMatch) << machineName(MK) << ": " << Rep.Divergence;
    EXPECT_GT(Rep.WithRegistry.Exotic, 0u) << machineName(MK);
    EXPECT_LT(Rep.WithRegistry.Instructions, Rep.Baseline.Instructions)
        << machineName(MK);
  }
}

namespace {

/// A one-op program exercising \p K, with literal operands inside every
/// recorded constraint.
codegen::Program opProgram(codegen::OpKind K) {
  using codegen::Value;
  codegen::Program P;
  switch (K) {
  case codegen::OpKind::StrIndex:
    P.Ops.push_back(codegen::strIndex("res", Value::literal(100),
                                      Value::literal(16),
                                      Value::literal('r')));
    break;
  case codegen::OpKind::StrMove:
    P.Ops.push_back(codegen::strMove(Value::literal(300), Value::literal(100),
                                     Value::literal(16)));
    break;
  case codegen::OpKind::StrEqual:
    P.Ops.push_back(codegen::strEqual("res", Value::literal(100),
                                      Value::literal(130),
                                      Value::literal(16)));
    break;
  case codegen::OpKind::BlockCopy:
    P.Ops.push_back(codegen::blockCopy(Value::literal(300),
                                       Value::literal(100),
                                       Value::literal(16)));
    break;
  case codegen::OpKind::BlockClear:
    P.Ops.push_back(codegen::blockClear(Value::literal(400),
                                        Value::literal(8)));
    break;
  }
  P.Facts.Axioms.insert("pascal.no-overlap");
  return P;
}

interp::Memory opMemory() {
  interp::Memory M;
  interp::storeBytes(M, 100, "characteristic!!");
  interp::storeBytes(M, 130, "characteristic!!"); // Equal to the first.
  for (int I = 0; I < 8; ++I)
    M[400 + I] = 0xEE;
  return M;
}

} // namespace

TEST(Differential, EveryLowerablePairingIsStateIdenticalInIsolation) {
  // Each registry entry, alone on a cleared target, against the
  // decomposed translation of the same one-op program. This is the
  // per-pairing half of the differential suite: a registry binding may
  // only ever change cost, never observable state.
  unsigned Exercised = 0;
  for (const RegistryEntry *E : recordedRegistry().entries()) {
    auto MK = machineFromName(E->Machine);
    ASSERT_TRUE(MK.has_value()) << E->AnalysisId;
    auto B = compileBinding(*E);
    if (!B)
      continue; // rigel.span: outside the code generator's vocabulary.

    Registry Solo;
    Solo.upsert(*E);
    codegen::Program P = opProgram(B->Op);
    DifferentialReport Rep = runDifferential(*MK, Solo, P, opMemory());
    EXPECT_EQ(Rep.BindingsLoaded, 1u) << E->AnalysisId;
    EXPECT_TRUE(Rep.WithRegistry.Ok)
        << E->AnalysisId << ": " << Rep.WithRegistry.Error;
    EXPECT_TRUE(Rep.Baseline.Ok)
        << E->AnalysisId << ": " << Rep.Baseline.Error;
    EXPECT_TRUE(Rep.StatesMatch) << E->AnalysisId << ": " << Rep.Divergence;
    EXPECT_EQ(Rep.WithRegistry.Exotic, 1u) << E->AnalysisId;
    EXPECT_LT(Rep.WithRegistry.Instructions, Rep.Baseline.Instructions)
        << E->AnalysisId;
    ++Exercised;
  }
  EXPECT_EQ(Exercised, 13u); // 14 pairings minus rigel.span.
}

TEST(Differential, RegistryFileRoundTripStillExecutes) {
  // The full deployment path: build -> save -> load -> compile -> run.
  TempFile F("registry_exec.jsonl");
  ASSERT_TRUE(recordedRegistry().save(F.Path));
  auto Loaded = Registry::load(F.Path);
  ASSERT_TRUE(Loaded) << Loaded.fault().Message;
  for (MachineKind MK : allMachines()) {
    DifferentialReport Rep =
        runDifferential(MK, *Loaded, demoProgram(), demoMemory());
    EXPECT_TRUE(Rep.passes())
        << machineName(MK) << ": " << formatReport(Rep);
  }
}
