//===- TestSources.h - Shared ISDL fixtures for unit tests ------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#ifndef EXTRA_TESTS_TESTSOURCES_H
#define EXTRA_TESTS_TESTSOURCES_H

namespace extra {
namespace testing {

/// The Rigel index operator, Figure 2 of the paper.
inline constexpr const char *RigelIndexSource = R"(
index.operation := begin
  ** SOURCE.ACCESS **
    Src.Base: integer,    ! string base address
    Src.Index: integer,   ! string index
    Src.Length: integer,  ! string length
    read(): integer := begin
      read <- Mb[Src.Base + Src.Index];
      Src.Index <- Src.Index + 1;
    end
  ** STATE **
    ch: character          ! character sought
  ** STRING.PROCESS **
    index.execute := begin
      input (Src.Base, Src.Length, ch);
      Src.Index <- 0;
      repeat
        ! exit when string exhausted
        exit_when (Src.Length = 0);
        ! exit if char is found
        exit_when (ch = read());
        Src.Length <- Src.Length - 1;
      end_repeat;
      if Src.Length = 0 then
        output (0);          ! char not found
      else
        output (Src.Index);  ! char found
      end_if;
    end
end
)";

/// The Intel 8086 scasb instruction, Figure 3 of the paper.
inline constexpr const char *ScasbSource = R"(
scasb.instruction := begin
  ! segment addressing ignored in this description
  ** SOURCE.ACCESS **
    di<15:0>,   ! source string address
    cx<15:0>,   ! source string length
    fetch()<7:0> := begin   ! fetch source character
      fetch <- Mb[di];
      if df then
        di <- di - 1;   ! high-to-low addresses
      else
        di <- di + 1;   ! low-to-high addresses
      end_if;
    end
  ** STATE **
    rf<>,      ! repeat flag
    df<>,      ! direction flag
    rfz<>,     ! exit condition flag
    zf<>,      ! last compare zero flag
    al<7:0>    ! character sought
  ** STRING.PROCESS **
    scasb.execute := begin
      input (rf, rfz, df, zf, di, cx, al);
      if not rf then   ! no repetition
        if (al - fetch()) = 0 then
          zf <- 1;
        else
          zf <- 0;
        end_if;
      else             ! repeat mode
        repeat
          exit_when (cx = 0);
          cx <- cx - 1;
          if (al - fetch()) = 0 then
            zf <- 1;
          else
            zf <- 0;
          end_if;
          ! exit on condition
          exit_when (rfz and (not zf)) or ((not rfz) and zf);
        end_repeat;
      end_if;
      output (zf, di, cx);
    end
end
)";

} // namespace testing
} // namespace extra

#endif // EXTRA_TESTS_TESTSOURCES_H
