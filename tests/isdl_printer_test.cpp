//===- isdl_printer_test.cpp - Printer round-trip tests ---------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "isdl/Printer.h"

#include "TestSources.h"
#include "isdl/Equiv.h"
#include "isdl/Parser.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::isdl;

namespace {

std::string reprintExpr(std::string_view Src) {
  DiagnosticEngine Diags;
  ExprPtr E = parseExpr(Src, Diags);
  EXPECT_TRUE(E && !Diags.hasErrors()) << Diags.str();
  return E ? printExpr(*E) : std::string();
}

TEST(PrinterTest, SimpleExpressions) {
  EXPECT_EQ(reprintExpr("1 + 2"), "1 + 2");
  EXPECT_EQ(reprintExpr("a - b - c"), "a - b - c");
  EXPECT_EQ(reprintExpr("a - (b - c)"), "a - (b - c)");
  EXPECT_EQ(reprintExpr("a * (b + c)"), "a * (b + c)");
  EXPECT_EQ(reprintExpr("Mb[di]"), "Mb[di]");
  EXPECT_EQ(reprintExpr("read()"), "read()");
  EXPECT_EQ(reprintExpr("'a'"), "'a'");
}

TEST(PrinterTest, LogicalExpressions) {
  EXPECT_EQ(reprintExpr("a and b or c"), "a and b or c");
  EXPECT_EQ(reprintExpr("a and (b or c)"), "a and (b or c)");
  EXPECT_EQ(reprintExpr("not zf"), "not zf");
  EXPECT_EQ(reprintExpr("not (a and b)"), "not (a and b)");
  EXPECT_EQ(reprintExpr("not a = b"), "not a = b");
}

TEST(PrinterTest, RelationalParenthesization) {
  EXPECT_EQ(reprintExpr("(al - fetch()) = 0"), "al - fetch() = 0");
  EXPECT_EQ(reprintExpr("(a = b) = 0"), "(a = b) = 0");
}

TEST(PrinterTest, StatementForms) {
  DiagnosticEngine Diags;
  StmtList Stmts = parseStmts(
      "di <- di + 1; Mb[di] <- al; exit_when (cx = 0); output (0);", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_EQ(printStmt(*Stmts[0]), "di <- di + 1;\n");
  EXPECT_EQ(printStmt(*Stmts[1]), "Mb[di] <- al;\n");
  EXPECT_EQ(printStmt(*Stmts[2]), "exit_when (cx = 0);\n");
  EXPECT_EQ(printStmt(*Stmts[3]), "output (0);\n");
}

TEST(PrinterTest, IfStatementLayout) {
  DiagnosticEngine Diags;
  StmtList Stmts =
      parseStmts("if zf then output (1); else output (0); end_if;", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_EQ(printStmt(*Stmts[0]), "if zf then\n"
                                  "  output (1);\n"
                                  "else\n"
                                  "  output (0);\n"
                                  "end_if;\n");
}

// Round-trip: parse → print → parse must produce a structurally identical
// description (the printer and parser agree on the notation).
class RoundTripTest : public ::testing::TestWithParam<const char *> {};

TEST_P(RoundTripTest, ParsePrintParse) {
  DiagnosticEngine Diags;
  auto First = parseDescription(GetParam(), Diags);
  ASSERT_TRUE(First && !Diags.hasErrors()) << Diags.str();

  std::string Printed = printDescription(*First);
  auto Second = parseDescription(Printed, Diags);
  ASSERT_TRUE(Second && !Diags.hasErrors())
      << Diags.str() << "\nprinted form:\n"
      << Printed;

  MatchResult R = matchDescriptions(*First, *Second);
  EXPECT_TRUE(R.Matched) << R.Mismatch;
  // The rename binding must be the identity.
  for (const auto &[A, B] : R.Binding.pairs())
    EXPECT_EQ(A, B);
}

INSTANTIATE_TEST_SUITE_P(Figures, RoundTripTest,
                         ::testing::Values(extra::testing::RigelIndexSource,
                                           extra::testing::ScasbSource));

} // namespace
