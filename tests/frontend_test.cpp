//===- frontend_test.cpp - Mini front end + engine undo tests ---*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "codegen/Frontend.h"

#include "codegen/Target.h"
#include "isdl/Parser.h"
#include "isdl/Printer.h"
#include "sim/Sim8086.h"
#include "transform/Transform.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::codegen;

namespace {

TEST(FrontendTest, ParsesAllStatementForms) {
  DiagnosticEngine Diags;
  auto P = parseProgram(R"(
    ! a comment
    const n = 12;
    range len 0 255;
    assume pascal.no-overlap;
    move(300, 100, n);
    copy(dst, src, len);
    clear(buf, 64);
    i := index(s, len, 'c');
    eq := equal(a, b, n);
  )",
                        Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ASSERT_EQ(P->Ops.size(), 5u);
  EXPECT_EQ(P->Ops[0].K, OpKind::StrMove);
  EXPECT_EQ(P->Ops[1].K, OpKind::BlockCopy);
  EXPECT_EQ(P->Ops[2].K, OpKind::BlockClear);
  EXPECT_EQ(P->Ops[3].K, OpKind::StrIndex);
  EXPECT_EQ(P->Ops[3].Result, "i");
  EXPECT_EQ(P->Ops[3].Args[2].Lit, 'c');
  EXPECT_EQ(P->Ops[4].K, OpKind::StrEqual);
  EXPECT_EQ(P->Facts.KnownValues.at("n"), 12);
  EXPECT_EQ(P->Facts.KnownRanges.at("len"),
            (std::pair<int64_t, int64_t>{0, 255}));
  EXPECT_TRUE(P->Facts.Axioms.count("pascal.no-overlap"));
}

TEST(FrontendTest, ErrorsAreReportedWithPositions) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseProgram("move(1, 2);", Diags).has_value()); // arity
  EXPECT_TRUE(Diags.hasErrors());
  DiagnosticEngine D2;
  EXPECT_FALSE(parseProgram("x := frobnicate(1, 2, 3);", D2).has_value());
  DiagnosticEngine D3;
  EXPECT_FALSE(parseProgram("const x;", D3).has_value());
  DiagnosticEngine D4;
  EXPECT_TRUE(parseProgram("", D4).has_value()); // empty program is fine
}

TEST(FrontendTest, EndToEndThroughCodegenAndSimulator) {
  DiagnosticEngine Diags;
  auto P = parseProgram(R"(
    const n = 5;
    move(200, 100, n);
    eq := equal(100, 200, n);
    pos := index(200, n, 'v');
  )",
                        Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  auto T = makeI8086Target();
  CodeGenResult Code = T->generate(*P);
  interp::Memory M;
  interp::storeBytes(M, 100, "mover");
  sim::SimResult S = sim::run8086(Code.Asm, M);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(interp::loadBytes(S.Mem, 200, 5), "mover");
  EXPECT_EQ(S.reg("eq"), 1);
  EXPECT_EQ(S.reg("pos"), 3);
}

TEST(EngineUndoTest, UndoRestoresDescriptionAndConstraints) {
  DiagnosticEngine Diags;
  auto D = isdl::parseDescription(R"(
t := begin
  ** S **
    f<>, a: integer,
    t.execute := begin
      input (f, a);
      if f then a <- a + 1; end_if;
      output (a);
    end
end
)",
                                  Diags);
  ASSERT_TRUE(D && !Diags.hasErrors());

  transform::Engine E(D->clone());
  std::string Original = isdl::printDescription(E.current());
  ASSERT_TRUE(
      E.apply({"fix-operand-value", "", {{"operand", "f"}, {"value", "1"}}})
          .Applied);
  ASSERT_TRUE(
      E.apply({"global-constant-propagate", "", {{"var", "f"}}}).Applied);
  EXPECT_EQ(E.constraints().size(), 1u);
  EXPECT_EQ(E.stepsApplied(), 2u);

  // Undo both steps: description and constraint set revert.
  EXPECT_TRUE(E.undo());
  EXPECT_EQ(E.stepsApplied(), 1u);
  EXPECT_EQ(E.constraints().size(), 1u); // constraint came from step 1
  EXPECT_TRUE(E.undo());
  EXPECT_EQ(E.stepsApplied(), 0u);
  EXPECT_EQ(E.constraints().size(), 0u);
  EXPECT_EQ(isdl::printDescription(E.current()), Original);
  EXPECT_FALSE(E.undo()); // nothing left
}

TEST(EngineUndoTest, UndoThenRedoByReapplying) {
  DiagnosticEngine Diags;
  auto D = isdl::parseDescription(R"(
t := begin
  ** S **
    a: integer,
    t.execute := begin input (a); a <- a + 0; output (a); end
end
)",
                                  Diags);
  ASSERT_TRUE(D);
  transform::Engine E(D->clone());
  ASSERT_TRUE(E.apply({"add-zero", "", {}}).Applied);
  std::string After = isdl::printDescription(E.current());
  ASSERT_TRUE(E.undo());
  ASSERT_TRUE(E.apply({"add-zero", "", {}}).Applied);
  EXPECT_EQ(isdl::printDescription(E.current()), After);
}

} // namespace
