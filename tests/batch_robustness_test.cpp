//===- batch_robustness_test.cpp - Fault-isolated batch tests ---*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// The robustness layer's acceptance tests: checkpoint records round-trip
// and tolerate torn writes, injected faults produce identical typed
// outcomes whatever the thread count, a killed-and-resumed batch renders
// a byte-identical report, and no fault ever loses a case.
//
//===----------------------------------------------------------------------===//

#include "search/BatchDriver.h"
#include "search/Checkpoint.h"

#include "analysis/Derivations.h"
#include "support/FaultInjection.h"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <vector>

using namespace extra;
using namespace extra::search;

namespace {

/// Disarms the process-wide injector on scope exit so one test's spec
/// never leaks into the next.
struct InjectorReset {
  ~InjectorReset() { FaultInjector::instance().reset(); }
};

/// A temp file path unique to this test binary run; removed on exit.
struct TempFile {
  std::string Path;
  explicit TempFile(const std::string &Name)
      : Path(::testing::TempDir() + Name) {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
};

std::vector<BatchCase> quickCases() {
  std::vector<BatchCase> Cases;
  for (const char *Id :
       {"vax.movc3/pc2.copy", "i8086.stosb/pc2.clear", "vax.movc5/pc2.clear"}) {
    const analysis::AnalysisCase *C = analysis::findCase(Id);
    EXPECT_NE(C, nullptr) << Id;
    BatchCase B;
    B.Id = C->Id;
    B.OperatorId = C->OperatorId;
    B.InstructionId = C->InstructionId;
    Cases.push_back(std::move(B));
  }
  return Cases;
}

//===----------------------------------------------------------------------===//
// Checkpoint records
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, RecordRoundTrips) {
  CheckpointRecord R;
  R.Case = "vax.locc/clu.search";
  R.Outcome = CaseOutcome::TimedOut;
  R.Category = FaultCategory::Synth;
  R.FaultMessage = "injected \"fault\"\nwith control chars";
  R.Found = false;
  R.Verified = false;
  R.Retried = true;
  R.OpSteps = 3;
  R.InstSteps = 7;
  R.Nodes = 1234;
  R.PartialDistance = 5;
  R.WallMs = 42.5;

  auto Back = CheckpointRecord::fromJsonLine(R.toJsonLine());
  ASSERT_TRUE(Back);
  EXPECT_EQ(Back->Case, R.Case);
  EXPECT_EQ(Back->Outcome, R.Outcome);
  EXPECT_EQ(Back->Category, R.Category);
  EXPECT_EQ(Back->FaultMessage, R.FaultMessage);
  EXPECT_EQ(Back->Found, R.Found);
  EXPECT_EQ(Back->Verified, R.Verified);
  EXPECT_EQ(Back->Retried, R.Retried);
  EXPECT_EQ(Back->OpSteps, R.OpSteps);
  EXPECT_EQ(Back->InstSteps, R.InstSteps);
  EXPECT_EQ(Back->Nodes, R.Nodes);
  EXPECT_EQ(Back->PartialDistance, R.PartialDistance);
  EXPECT_DOUBLE_EQ(Back->WallMs, R.WallMs);
  // The report line is wall-clock-free by design.
  EXPECT_EQ(Back->reportLine().find("42.5"), std::string::npos);
}

TEST(CheckpointTest, MalformedLinesRejected) {
  EXPECT_FALSE(CheckpointRecord::fromJsonLine(""));
  EXPECT_FALSE(CheckpointRecord::fromJsonLine("{\"case\":\"x\",\"outco"));
  EXPECT_FALSE(CheckpointRecord::fromJsonLine("not json at all"));
  // A parseable object that is not a checkpoint record.
  EXPECT_FALSE(CheckpointRecord::fromJsonLine("{\"k\":\"span\",\"id\":3}"));
  // Unknown outcome name.
  EXPECT_FALSE(CheckpointRecord::fromJsonLine(
      "{\"case\":\"x\",\"outcome\":\"sideways\"}"));
}

TEST(CheckpointTest, ReaderSkipsTornLinesAndDedups) {
  TempFile F("ckpt_torn.jsonl");
  CheckpointRecord A;
  A.Case = "a";
  A.Outcome = CaseOutcome::Exhausted;
  CheckpointRecord B;
  B.Case = "b";
  B.Outcome = CaseOutcome::Verified;
  B.Found = B.Verified = true;
  CheckpointRecord A2 = A;
  A2.Outcome = CaseOutcome::Verified; // Later record for "a" wins.
  {
    std::ofstream OS(F.Path);
    OS << A.toJsonLine() << "\n";
    OS << B.toJsonLine() << "\n";
    OS << A2.toJsonLine() << "\n";
    OS << "{\"case\":\"c\",\"outc"; // Torn write from a killed run.
  }
  std::vector<CheckpointRecord> Records = readCheckpoints(F.Path);
  ASSERT_EQ(Records.size(), 2u);
  EXPECT_EQ(Records[0].Case, "a");
  EXPECT_EQ(Records[0].Outcome, CaseOutcome::Verified);
  EXPECT_EQ(Records[1].Case, "b");
}

TEST(CheckpointTest, MissingFileReadsEmpty) {
  EXPECT_TRUE(readCheckpoints("/nonexistent/ckpt.jsonl").empty());
}

TEST(CheckpointTest, OutcomeNamesRoundTripAndRank) {
  for (CaseOutcome O :
       {CaseOutcome::Verified, CaseOutcome::Discovered, CaseOutcome::Exhausted,
        CaseOutcome::TimedOut, CaseOutcome::Faulted}) {
    auto Back = caseOutcomeFromName(caseOutcomeName(O));
    ASSERT_TRUE(Back);
    EXPECT_EQ(*Back, O);
  }
  EXPECT_FALSE(caseOutcomeFromName("unknown"));
  EXPECT_GT(caseOutcomeRank(CaseOutcome::Verified),
            caseOutcomeRank(CaseOutcome::Discovered));
  EXPECT_GT(caseOutcomeRank(CaseOutcome::Discovered),
            caseOutcomeRank(CaseOutcome::Exhausted));
  EXPECT_GT(caseOutcomeRank(CaseOutcome::Exhausted),
            caseOutcomeRank(CaseOutcome::TimedOut));
  EXPECT_GT(caseOutcomeRank(CaseOutcome::TimedOut),
            caseOutcomeRank(CaseOutcome::Faulted));
}

//===----------------------------------------------------------------------===//
// Fault-isolated batches
//===----------------------------------------------------------------------===//

TEST(BatchRobustnessTest, InjectedOutcomesIdenticalAcrossThreadCounts) {
  // The injector's decisions are scoped to the case id, so where a fault
  // fires cannot depend on which worker ran the case or in what order.
  // The whole per-case record — outcome, category, steps, nodes — must be
  // identical at 1, 2, and 8 threads.
  InjectorReset Guard;
  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().configure(
      "synth=0.25,rule-apply=0.005", &Err))
      << Err;

  std::vector<BatchCase> Cases = quickCases();
  std::vector<std::string> Reports;
  for (unsigned Threads : {1u, 2u, 8u}) {
    BatchOptions Opts;
    Opts.Threads = Threads;
    Opts.Limits.TimeBudgetMs = 30000;
    std::vector<BatchResult> Results = runBatch(Cases, Opts);
    Reports.push_back(batchReportText(Results));
  }
  EXPECT_EQ(Reports[0], Reports[1]);
  EXPECT_EQ(Reports[0], Reports[2]);
}

TEST(BatchRobustnessTest, SynthFaultIsContainedAndTyped) {
  // Rate 1.0 at the synth site: every attempt (and the degraded retry,
  // under its own scope) faults. The batch still completes, and the case
  // lands on a typed Faulted outcome naming the synth category.
  InjectorReset Guard;
  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().configure("synth=1", &Err)) << Err;

  std::vector<BatchCase> Cases = quickCases();
  BatchOptions Opts;
  Opts.Threads = 2;
  BatchStats Stats;
  std::vector<BatchResult> Results = runBatch(Cases, Opts, &Stats);
  ASSERT_EQ(Results.size(), Cases.size());
  for (const BatchResult &R : Results) {
    EXPECT_EQ(R.Record.Outcome, CaseOutcome::Faulted) << R.Case.Id;
    EXPECT_EQ(R.Record.Category, FaultCategory::Synth) << R.Case.Id;
    EXPECT_TRUE(R.Record.Retried) << R.Case.Id;
  }
  EXPECT_EQ(Stats.Faulted, static_cast<unsigned>(Cases.size()));
  EXPECT_GT(FaultInjector::instance().injectedTotal(), 0u);
}

TEST(BatchRobustnessTest, DegradedRetryRecoversOneShotFault) {
  // A fault that fires early in the first attempt's scope need not fire
  // in the retry's distinct scope: with a moderate synth rate the quick
  // cases still end Verified (directly or via the retry), and a case
  // that needed the retry says so in its record.
  InjectorReset Guard;
  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().configure("synth=0.25", &Err)) << Err;

  std::vector<BatchCase> Cases = quickCases();
  BatchOptions Opts;
  Opts.Threads = 2;
  std::vector<BatchResult> WithRetry = runBatch(Cases, Opts);
  Opts.DegradedRetry = false;
  std::vector<BatchResult> WithoutRetry = runBatch(Cases, Opts);

  int RankWith = 0, RankWithout = 0;
  for (size_t I = 0; I < Cases.size(); ++I) {
    RankWith += caseOutcomeRank(WithRetry[I].Record.Outcome);
    RankWithout += caseOutcomeRank(WithoutRetry[I].Record.Outcome);
  }
  // The retry can only improve an outcome, never worsen one.
  EXPECT_GE(RankWith, RankWithout);
}

TEST(BatchRobustnessTest, CheckpointResumeRendersByteIdenticalReport) {
  // Run a batch to completion with a checkpoint; simulate a mid-run kill
  // by truncating the checkpoint to its first record plus a torn line;
  // resume. The resumed report must equal the uninterrupted one byte for
  // byte, and a second resume must do no search work at all.
  std::vector<BatchCase> Cases = quickCases();
  TempFile F("ckpt_resume.jsonl");

  BatchOptions Opts;
  Opts.Threads = 2;
  Opts.CheckpointPath = F.Path;
  std::vector<BatchResult> Full = runBatch(Cases, Opts);
  std::string FullReport = batchReportText(Full);

  std::vector<CheckpointRecord> Records = readCheckpoints(F.Path);
  ASSERT_EQ(Records.size(), Cases.size());

  // "Kill": keep only the first finished case, with a torn trailing line.
  CheckpointRecord Kept;
  for (const CheckpointRecord &R : Records)
    if (R.Case == Cases[0].Id)
      Kept = R;
  {
    std::ofstream OS(F.Path, std::ios::trunc);
    OS << Kept.toJsonLine() << "\n";
    OS << "{\"case\":\"" << Cases[1].Id << "\",\"outc";
  }

  Opts.Resume = true;
  BatchStats Stats;
  std::vector<BatchResult> Resumed = runBatch(Cases, Opts, &Stats);
  EXPECT_EQ(Stats.Resumed, 1u);
  EXPECT_TRUE(Resumed[0].FromCheckpoint);
  EXPECT_EQ(batchReportText(Resumed), FullReport);

  // Second resume: everything satisfied from the file, zero search work.
  BatchStats Stats2;
  std::vector<BatchResult> Again = runBatch(Cases, Opts, &Stats2);
  EXPECT_EQ(Stats2.Resumed, static_cast<unsigned>(Cases.size()));
  EXPECT_EQ(Stats2.NodesExpanded, 0u);
  EXPECT_EQ(batchReportText(Again), FullReport);
}

TEST(BatchRobustnessTest, EverySiteProducesACompleteBatch) {
  // Arm every known site at once at modest rates: whatever fires, every
  // case must land on exactly one typed outcome — a batch never loses a
  // case to an injected fault.
  InjectorReset Guard;
  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().configure(
      "parser=0.05,validate=0.05,interp=0.0001,rule-apply=0.002,synth=0.05",
      &Err))
      << Err;

  std::vector<BatchCase> Cases = quickCases();
  BatchOptions Opts;
  Opts.Threads = 2;
  Opts.Limits.TimeBudgetMs = 30000;
  std::vector<BatchResult> Results = runBatch(Cases, Opts);
  ASSERT_EQ(Results.size(), Cases.size());
  for (const BatchResult &R : Results) {
    int Rank = caseOutcomeRank(R.Record.Outcome);
    EXPECT_GE(Rank, 0);
    EXPECT_LE(Rank, 4);
    EXPECT_EQ(R.Record.Case, R.Case.Id);
  }
}

} // namespace
