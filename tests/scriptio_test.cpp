//===- scriptio_test.cpp - Script serialization tests -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "transform/ScriptIO.h"

#include "analysis/Derivations.h"
#include "descriptions/Descriptions.h"
#include "isdl/Equiv.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::transform;

namespace {

TEST(ScriptIOTest, SimpleRoundTrip) {
  Script S = {
      {"fold-constants", "", {}},
      {"if-false-elim", "fetch", {}},
      {"fix-operand-value", "", {{"operand", "df"}, {"value", "0"}}},
  };
  DiagnosticEngine Diags;
  auto Back = parseScript(printScript(S), Diags);
  ASSERT_TRUE(Back.has_value()) << Diags.str();
  ASSERT_EQ(Back->size(), S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    EXPECT_EQ((*Back)[I].Rule, S[I].Rule);
    EXPECT_EQ((*Back)[I].Routine, S[I].Routine);
    EXPECT_EQ((*Back)[I].Args, S[I].Args);
  }
}

TEST(ScriptIOTest, QuotedValuesWithCodeText) {
  Script S = {
      {"replace-output",
       "",
       {{"code", "if zf then output (di - temp); else output (0); "
                 "end_if;"}}},
      {"add-prologue", "", {{"code", "temp <- di;"}}},
  };
  DiagnosticEngine Diags;
  auto Back = parseScript(printScript(S), Diags);
  ASSERT_TRUE(Back.has_value()) << Diags.str();
  EXPECT_EQ((*Back)[0].Args.at("code"), S[0].Args.at("code"));
  EXPECT_EQ((*Back)[1].Args.at("code"), S[1].Args.at("code"));
}

TEST(ScriptIOTest, EscapesQuotesAndBackslashes) {
  Script S = {{"x", "", {{"k", "a \"quoted\" \\ value"}}}};
  DiagnosticEngine Diags;
  auto Back = parseScript(printScript(S), Diags);
  ASSERT_TRUE(Back.has_value()) << Diags.str();
  EXPECT_EQ((*Back)[0].Args.at("k"), "a \"quoted\" \\ value");
}

TEST(ScriptIOTest, CommentsAndBlankLinesIgnored) {
  DiagnosticEngine Diags;
  auto S = parseScript("# header\n\nfold-constants\n  # indented comment\n",
                       Diags);
  ASSERT_TRUE(S.has_value()) << Diags.str();
  ASSERT_EQ(S->size(), 1u);
  EXPECT_EQ((*S)[0].Rule, "fold-constants");
}

TEST(ScriptIOTest, ErrorsReported) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseScript("rule key=\"unterminated\n", Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
  DiagnosticEngine Diags2;
  EXPECT_FALSE(parseScript("rule =v\n", Diags2).has_value());
}

TEST(ScriptIOTest, AllRecordedDerivationsRoundTrip) {
  auto Check = [](const Script &S, const std::string &Context) {
    DiagnosticEngine Diags;
    auto Back = parseScript(printScript(S), Diags);
    ASSERT_TRUE(Back.has_value()) << Context << "\n" << Diags.str();
    ASSERT_EQ(Back->size(), S.size()) << Context;
    for (size_t I = 0; I < S.size(); ++I) {
      EXPECT_EQ((*Back)[I].Rule, S[I].Rule) << Context;
      EXPECT_EQ((*Back)[I].Routine, S[I].Routine) << Context;
      EXPECT_EQ((*Back)[I].Args, S[I].Args) << Context;
    }
  };
  for (const analysis::AnalysisCase &C : analysis::table2Cases()) {
    Check(C.OperatorScript, C.Id + " (operator)");
    Check(C.InstructionScript, C.Id + " (instruction)");
  }
  Check(analysis::movc3SassignCase().OperatorScript, "movc3 operator");
  Check(analysis::movc3SassignCase().InstructionScript,
        "movc3 instruction");
}

TEST(ScriptIOTest, ReplayedScriptReproducesTheDerivation) {
  // Serialize the scasb instruction script, parse it back, and replay:
  // the result must match the directly replayed script's output.
  const analysis::AnalysisCase *Case =
      analysis::findCase("i8086.scasb/rigel.index");
  DiagnosticEngine Diags;
  auto Back = parseScript(printScript(Case->InstructionScript), Diags);
  ASSERT_TRUE(Back.has_value());

  auto A = extra::descriptions::load("i8086.scasb");
  auto B = extra::descriptions::load("i8086.scasb");
  Engine EA(std::move(*A)), EB(std::move(*B));
  ASSERT_EQ(EA.applyScript(Case->InstructionScript),
            Case->InstructionScript.size());
  ASSERT_EQ(EB.applyScript(*Back), Back->size());
  isdl::MatchResult M =
      isdl::matchDescriptions(EA.current(), EB.current());
  EXPECT_TRUE(M.Matched) << M.Mismatch;
}

} // namespace
