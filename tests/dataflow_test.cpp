//===- dataflow_test.cpp - CFG / liveness / reaching defs tests -*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "dataflow/CFG.h"
#include "dataflow/Liveness.h"
#include "dataflow/ReachingDefs.h"

#include "TestSources.h"
#include "isdl/Parser.h"
#include "isdl/Traverse.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::dataflow;
using namespace extra::isdl;

namespace {

std::unique_ptr<Description> desc(std::string_view Src) {
  DiagnosticEngine Diags;
  auto D = parseDescription(Src, Diags);
  EXPECT_TRUE(D && !Diags.hasErrors()) << Diags.str();
  return D;
}

TEST(EffectSummaryTest, FetchRoutineEffects) {
  DiagnosticEngine Diags;
  auto D = parseDescription(extra::testing::ScasbSource, Diags);
  ASSERT_TRUE(D);
  EffectSummary Sum = summarizeRoutine(*D, *D->findRoutine("fetch"));
  EXPECT_TRUE(Sum.Reads.count("di"));
  EXPECT_TRUE(Sum.Reads.count("df"));
  EXPECT_TRUE(Sum.readsMemory());
  EXPECT_TRUE(Sum.Writes.count("di"));
  EXPECT_TRUE(Sum.Writes.count("fetch"));
  EXPECT_FALSE(Sum.writesMemory());
}

TEST(EffectSummaryTest, TransitiveThroughCalls) {
  auto D = desc(R"(
x := begin
  ** S **
    a: integer,
    b: integer,
    inner(): integer := begin inner <- a; a <- a + 1; end
    outer(): integer := begin outer <- inner() + b; end
    x.execute := begin input (a, b); b <- outer(); output (b); end
end
)");
  EffectSummary Sum = summarizeRoutine(*D, *D->findRoutine("outer"));
  EXPECT_TRUE(Sum.Reads.count("a"));
  EXPECT_TRUE(Sum.Reads.count("b"));
  EXPECT_TRUE(Sum.Writes.count("a"));
}

TEST(EffectSummaryTest, CallEffectsInsideStatement) {
  DiagnosticEngine Diags;
  auto D = parseDescription(extra::testing::ScasbSource, Diags);
  ASSERT_TRUE(D);
  StmtList S = parseStmts("zf <- al - fetch();", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EffectSummary Sum = summarizeStmt(*D, *S[0]);
  EXPECT_TRUE(Sum.Writes.count("zf"));
  EXPECT_TRUE(Sum.Writes.count("di")); // via fetch()
  EXPECT_TRUE(Sum.Reads.count(MemoryVar));
}

TEST(IndependenceTest, DisjointAssignments) {
  auto D = desc(R"(
x := begin
  ** S **
    a: integer, b: integer, c: integer, d: integer,
    x.execute := begin input (a, b); c <- a; d <- b; output (c, d); end
end
)");
  DiagnosticEngine Diags;
  StmtList S = parseStmts("c <- a; d <- b; a <- d;", Diags);
  EXPECT_TRUE(independent(*D, *S[0], *S[1]));
  EXPECT_FALSE(independent(*D, *S[1], *S[2])); // d written then read
  EXPECT_FALSE(independent(*D, *S[0], *S[2])); // a read then written
}

TEST(IndependenceTest, MemoryConflicts) {
  auto D = desc(R"(
x := begin
  ** S **
    p: integer, q: integer, v: integer,
    x.execute := begin input (p, q, v); output (v); end
end
)");
  DiagnosticEngine Diags;
  StmtList S = parseStmts("Mb[p] <- v; v <- Mb[q]; p <- p + 1;", Diags);
  EXPECT_FALSE(independent(*D, *S[0], *S[1])); // write Mb vs read Mb
  EXPECT_FALSE(independent(*D, *S[0], *S[2])); // reads p vs writes p
  EXPECT_TRUE(independent(*D, *S[1], *S[2]));
}

TEST(IndependenceTest, ExitWhenNeverIndependent) {
  auto D = desc(R"(
x := begin
  ** S **
    a: integer, b: integer,
    x.execute := begin
      input (a, b);
      repeat exit_when (a = 0); b <- b + 1; a <- a - 1; end_repeat;
      output (b);
    end
end
)");
  DiagnosticEngine Diags;
  StmtList S = parseStmts("exit_when (a = 0); b <- b + 1;", Diags);
  EXPECT_FALSE(independent(*D, *S[0], *S[1]));
}

TEST(CFGTest, StraightLineShape) {
  auto D = desc(R"(
x := begin
  ** S **
    a: integer,
    x.execute := begin input (a); a <- a + 1; output (a); end
end
)");
  CFG G = CFG::build(*D, *D->entryRoutine());
  // entry, exit, input, assign, output
  EXPECT_EQ(G.nodes().size(), 5u);
  // Entry reaches exit.
  std::set<int> Seen;
  std::vector<int> Work = {G.entry()};
  while (!Work.empty()) {
    int N = Work.back();
    Work.pop_back();
    if (!Seen.insert(N).second)
      continue;
    for (int S : G.nodes()[N].Succs)
      Work.push_back(S);
  }
  EXPECT_TRUE(Seen.count(G.exit()));
}

TEST(CFGTest, LoopBackEdgeAndExit) {
  auto D = desc(R"(
x := begin
  ** S **
    n: integer,
    x.execute := begin
      input (n);
      repeat
        exit_when (n = 0);
        n <- n - 1;
      end_repeat;
      output (n);
    end
end
)");
  const Routine *Entry = D->entryRoutine();
  CFG G = CFG::build(*D, *Entry);
  const auto *Rep = cast<RepeatStmt>(Entry->Body[1].get());
  const auto *Exit = cast<ExitWhenStmt>(Rep->getBody()[0].get());
  int ExitNode = G.nodeFor(Exit);
  ASSERT_GE(ExitNode, 0);
  const CFGNode &N = G.nodes()[ExitNode];
  ASSERT_EQ(N.Succs.size(), 2u);
  // Taken edge leaves the loop and reaches the output node.
  int Taken = N.TakenSucc;
  const CFGNode &Target = G.nodes()[Taken];
  ASSERT_NE(Target.S, nullptr);
  EXPECT_EQ(Target.S->getKind(), Stmt::Kind::Output);
}

TEST(LivenessTest, DeadAfterLastUse) {
  auto D = desc(R"(
x := begin
  ** S **
    a: integer, b: integer,
    x.execute := begin input (a); b <- a + 1; output (b); end
end
)");
  const Routine *Entry = D->entryRoutine();
  CFG G = CFG::build(*D, *Entry);
  Liveness L(G);
  const Stmt *AssignB = Entry->Body[1].get();
  EXPECT_TRUE(L.deadAfter(AssignB, "a"));
  EXPECT_FALSE(L.deadAfter(AssignB, "b"));
}

TEST(LivenessTest, LoopKeepsCounterLive) {
  auto D = desc(R"(
x := begin
  ** S **
    n: integer, s: integer,
    x.execute := begin
      input (n);
      s <- 0;
      repeat
        exit_when (n = 0);
        s <- s + 1;
        n <- n - 1;
      end_repeat;
      output (s);
    end
end
)");
  const Routine *Entry = D->entryRoutine();
  CFG G = CFG::build(*D, *Entry);
  Liveness L(G);
  const auto *Rep = cast<RepeatStmt>(Entry->Body[2].get());
  const Stmt *Bump = Rep->getBody()[1].get(); // s <- s + 1
  // n is still needed (checked again next iteration).
  EXPECT_FALSE(L.deadAfter(Bump, "n"));
  // At the loop exit, only s matters.
  const auto *ExitW = cast<ExitWhenStmt>(Rep->getBody()[0].get());
  EXPECT_TRUE(L.liveAtExitOf(ExitW).count("s"));
  EXPECT_FALSE(L.liveAtExitOf(ExitW).count("n"));
}

TEST(LivenessTest, ExitPathLivenessDistinguishesExits) {
  // `k` is read after the loop, so it is live on every exit edge; `t` is
  // only used inside the loop.
  auto D = desc(R"(
x := begin
  ** S **
    n: integer, k: integer, t: integer,
    x.execute := begin
      input (n, k);
      repeat
        exit_when (n = 0);
        t <- n + k;
        exit_when (t = 7);
        n <- n - 1;
      end_repeat;
      output (k);
    end
end
)");
  const Routine *Entry = D->entryRoutine();
  CFG G = CFG::build(*D, *Entry);
  Liveness L(G);
  const auto *Rep = cast<RepeatStmt>(Entry->Body[1].get());
  const auto *Exit1 = cast<ExitWhenStmt>(Rep->getBody()[0].get());
  const auto *Exit2 = cast<ExitWhenStmt>(Rep->getBody()[2].get());
  EXPECT_TRUE(L.liveAtExitOf(Exit1).count("k"));
  EXPECT_TRUE(L.liveAtExitOf(Exit2).count("k"));
  EXPECT_FALSE(L.liveAtExitOf(Exit1).count("t"));
  EXPECT_FALSE(L.liveAtExitOf(Exit2).count("t"));
  EXPECT_FALSE(L.liveAtExitOf(Exit1).count("n"));
}

TEST(ReachingDefsTest, UniqueConstantPropagates) {
  auto D = desc(R"(
x := begin
  ** S **
    rf<>, a: integer,
    x.execute := begin
      input (a);
      rf <- 1;
      if rf then a <- a + 1; end_if;
      output (a);
    end
end
)");
  const Routine *Entry = D->entryRoutine();
  CFG G = CFG::build(*D, *Entry);
  ReachingDefs RD(G);
  const Stmt *If = Entry->Body[2].get();
  auto K = RD.constantAt(If, "rf");
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(*K, 1);
}

TEST(ReachingDefsTest, TwoDefsBlockConstant) {
  auto D = desc(R"(
x := begin
  ** S **
    f<>, a: integer,
    x.execute := begin
      input (a);
      if a = 0 then f <- 1; else f <- 0; end_if;
      output (f);
    end
end
)");
  const Routine *Entry = D->entryRoutine();
  CFG G = CFG::build(*D, *Entry);
  ReachingDefs RD(G);
  const Stmt *Out = Entry->Body[2].get();
  EXPECT_FALSE(RD.constantAt(Out, "f").has_value());
}

TEST(ReachingDefsTest, InputDefBlocksConstant) {
  auto D = desc(R"(
x := begin
  ** S **
    f<>,
    x.execute := begin input (f); output (f); end
end
)");
  const Routine *Entry = D->entryRoutine();
  CFG G = CFG::build(*D, *Entry);
  ReachingDefs RD(G);
  EXPECT_FALSE(RD.constantAt(Entry->Body[1].get(), "f").has_value());
}

TEST(ReachingDefsTest, RedefinitionInLoopBlocksConstant) {
  auto D = desc(R"(
x := begin
  ** S **
    c: integer, n: integer,
    x.execute := begin
      input (n);
      c <- 0;
      repeat
        exit_when (n = 0);
        c <- c + 1;
        n <- n - 1;
      end_repeat;
      output (c);
    end
end
)");
  const Routine *Entry = D->entryRoutine();
  CFG G = CFG::build(*D, *Entry);
  ReachingDefs RD(G);
  // At the output, both `c <- 0` and the loop increment reach.
  EXPECT_FALSE(RD.constantAt(Entry->Body[3].get(), "c").has_value());
}

} // namespace
