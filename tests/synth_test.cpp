//===- synth_test.cpp - Rule-argument synthesis tests -----------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//

#include "synth/Synth.h"

#include "analysis/Derivations.h"
#include "analysis/Priors.h"
#include "descriptions/Descriptions.h"
#include "isdl/Equiv.h"
#include "transform/Transform.h"

#include <gtest/gtest.h>

using namespace extra;
using namespace extra::synth;
using transform::Step;

namespace {

/// Replays the first \p Count steps of \p S on description \p Id.
isdl::Description replayTo(const std::string &Id, const transform::Script &S,
                           size_t Count) {
  auto D = descriptions::load(Id);
  EXPECT_TRUE(D) << Id;
  transform::Engine E(std::move(*D));
  for (size_t I = 0; I < Count; ++I)
    EXPECT_TRUE(E.apply(S[I]).Applied) << Id << " step " << I;
  return E.takeDescription();
}

/// All recorded cases: Table 2, the extensions, and the §4.3 case.
std::vector<const analysis::AnalysisCase *> allCases() {
  std::vector<const analysis::AnalysisCase *> Out;
  for (const analysis::AnalysisCase &C : analysis::table2Cases())
    Out.push_back(&C);
  for (const analysis::AnalysisCase &C : analysis::extendedCases())
    Out.push_back(&C);
  Out.push_back(&analysis::movc3SassignCase());
  return Out;
}

std::string arg(const Step &S, const char *Key) {
  auto It = S.Args.find(Key);
  return It == S.Args.end() ? std::string() : It->second;
}

//===----------------------------------------------------------------------===//
// Divergence reports
//===----------------------------------------------------------------------===//

TEST(DivergenceTest, ReportedOnEntryBodyMismatch) {
  // Raw movc3 vs pc2.copy: close relatives whose entry bodies diverge.
  auto Op = descriptions::load("pc2.copy");
  auto Inst = descriptions::load("vax.movc3");
  isdl::MatchResult R = isdl::matchDescriptions(*Op, *Inst);
  ASSERT_FALSE(R.Matched);

  const isdl::DivergenceReport &D = R.Divergence;
  ASSERT_TRUE(D.Valid);
  EXPECT_FALSE(D.Detail.empty());
  EXPECT_EQ(D.RoutineA, Op->entryRoutine()->Name);
  EXPECT_EQ(D.RoutineB, Inst->entryRoutine()->Name);
  EXPECT_EQ(D.SpanA.RoutineName, D.RoutineA);
  EXPECT_EQ(D.SpanB.RoutineName, D.RoutineB);
  // Spans are half-open ranges over the top-level entry bodies.
  EXPECT_LE(D.SpanA.Begin, D.SpanA.End);
  EXPECT_LE(D.SpanB.Begin, D.SpanB.End);
  EXPECT_LE(D.SpanA.End, Op->entryRoutine()->Body.size());
  EXPECT_LE(D.SpanB.End, Inst->entryRoutine()->Body.size());
  // At least one side has unmatched statements, else the match would
  // have succeeded.
  EXPECT_TRUE(!D.SpanA.empty() || !D.SpanB.empty());
}

TEST(DivergenceTest, AbsentOnSuccessfulMatch) {
  const analysis::AnalysisCase *C = analysis::findCase("vax.movc3/pc2.copy");
  ASSERT_NE(C, nullptr);
  isdl::Description Op =
      replayTo(C->OperatorId, C->OperatorScript, C->OperatorScript.size());
  isdl::Description Inst = replayTo(C->InstructionId, C->InstructionScript,
                                    C->InstructionScript.size());
  isdl::MatchResult R = isdl::matchDescriptions(Op, Inst);
  ASSERT_TRUE(R.Matched);
  EXPECT_FALSE(R.Divergence.Valid);
}

TEST(DivergenceTest, PartialBindingSurvivesFailure) {
  // locc vs rigel.index bind their access routines before the entry
  // bodies diverge; the partial binding must carry those pairs.
  auto Op = descriptions::load("rigel.index");
  auto Inst = descriptions::load("vax.locc");
  isdl::MatchResult R = isdl::matchDescriptions(*Op, *Inst);
  ASSERT_FALSE(R.Matched);
  ASSERT_TRUE(R.Divergence.Valid);
  EXPECT_FALSE(R.Divergence.Partial.pairs().empty());
}

//===----------------------------------------------------------------------===//
// Name synthesis
//===----------------------------------------------------------------------===//

TEST(NameSynthTest, PointerNameHeuristic) {
  EXPECT_EQ(pointerNameFor("Src.Base", 1), "ptr");
  EXPECT_EQ(pointerNameFor("Src.Base", 2), "sp");
  EXPECT_EQ(pointerNameFor("Dst.Base", 2), "dp");
  EXPECT_EQ(pointerNameFor("Sbase", 2), "sp");
  EXPECT_EQ(pointerNameFor("A.Base", 2), "pa");
  EXPECT_EQ(pointerNameFor("B.Base", 2), "pb");
}

TEST(NameSynthTest, ProposalsContainEveryRecordedRenamingStep) {
  // Replay every recorded script; at each renaming step, the synthesizer
  // run on the *current* description must propose the very arguments the
  // 1982 user typed. index-to-pointer is checked at the first site (the
  // names are minted from the full site set, as the search applies them).
  unsigned I2P = 0, CountDown = 0, ExitCause = 0;
  const Vocabulary &Vocab = analysis::Priors::instance().vocabulary();

  auto CheckScript = [&](const std::string &Id, const transform::Script &S) {
    auto D = descriptions::load(Id);
    ASSERT_TRUE(D) << Id;
    transform::Engine E(std::move(*D));
    bool CheckedI2P = false;
    for (size_t I = 0; I < S.size(); ++I) {
      const Step &Rec = S[I];
      if (Rec.Rule == "index-to-pointer" && !CheckedI2P) {
        CheckedI2P = true;
        std::vector<Step> Props = proposeIndexToPointer(E.current());
        for (size_t J = I; J < S.size(); ++J) {
          if (S[J].Rule != "index-to-pointer")
            continue;
          bool Found = false;
          for (const Step &P : Props)
            Found = Found || P.Args == S[J].Args;
          EXPECT_TRUE(Found)
              << Id << ": no proposal matches recorded " << S[J].str();
          ++I2P;
        }
      } else if (Rec.Rule == "count-up-to-down") {
        std::vector<Step> Props = proposeCountUpToDown(E.current());
        bool Found = false;
        for (const Step &P : Props)
          Found = Found || P.Args == Rec.Args;
        EXPECT_TRUE(Found) << Id << ": no proposal matches " << Rec.str();
        ++CountDown;
      } else if (Rec.Rule == "record-exit-cause" && I > 0 &&
                 S[I - 1].Rule == "allocate-temp" &&
                 arg(S[I - 1], "name") == arg(Rec, "flag")) {
        // The flag must be fresh, so synthesis proposes the allocation
        // and the recording as one unit; check against the state before
        // the recorded allocate-temp.
        isdl::Description Before = replayTo(Id, S, I - 1);
        bool Found = false;
        for (const Proposal &P : proposeRecordExitCause(Before, Vocab))
          Found = Found || (P.Steps.size() == 2 &&
                            P.Steps[0].Args == S[I - 1].Args &&
                            P.Steps[1].Args == Rec.Args);
        EXPECT_TRUE(Found) << Id << ": no proposal matches " << Rec.str();
        ++ExitCause;
      }
      ASSERT_TRUE(E.apply(Rec).Applied) << Id << " step " << I;
    }
  };

  for (const analysis::AnalysisCase *C : allCases()) {
    CheckScript(C->OperatorId, C->OperatorScript);
    CheckScript(C->InstructionId, C->InstructionScript);
  }
  // The recorded corpus exercises all three renaming rules.
  EXPECT_GE(I2P, 8u);
  EXPECT_GE(CountDown, 1u);
  EXPECT_GE(ExitCause, 3u);
}

TEST(NameSynthTest, VocabularyMinedFromRecordedScripts) {
  const Vocabulary &V = analysis::Priors::instance().vocabulary();
  ASSERT_TRUE(V.Temps.count("di"));
  EXPECT_EQ(V.Temps.at("di").Name, "temp");
  ASSERT_TRUE(V.Temps.count("r1"));
  EXPECT_EQ(V.Temps.at("r1").Name, "rb");
  EXPECT_EQ(V.Temps.at("r1").Type, "bits:31:0");
  bool Found = false, Ne = false;
  for (const std::string &F : V.Flags) {
    Found = Found || F == "found";
    Ne = Ne || F == "ne";
  }
  EXPECT_TRUE(Found);
  EXPECT_TRUE(Ne);
}

//===----------------------------------------------------------------------===//
// Code synthesis
//===----------------------------------------------------------------------===//

TEST(CodeSynthTest, SynthesizedAugmentsRoundTripThroughEngine) {
  // For recorded cases whose instruction script ends in an augment
  // (allocate-temp / add-prologue / replace-output tail), replay both
  // sides to the brink of the augment and let code synthesis regenerate
  // it. Every proposed step must apply through the engine — i.e. the
  // synthesized code text parses back and passes the rule's own checks.
  const Vocabulary &Vocab = analysis::Priors::instance().vocabulary();
  unsigned CasesWithProposals = 0, StepsApplied = 0;

  for (const analysis::AnalysisCase *C : allCases()) {
    size_t First = C->InstructionScript.size();
    for (size_t I = 0; I < C->InstructionScript.size(); ++I) {
      const std::string &R = C->InstructionScript[I].Rule;
      if (R == "add-prologue" || R == "replace-output" ||
          (R == "allocate-temp" &&
           I + 1 < C->InstructionScript.size() &&
           C->InstructionScript[I + 1].Rule == "add-prologue")) {
        First = I;
        break;
      }
    }
    if (First == C->InstructionScript.size())
      continue;

    isdl::Description Op =
        replayTo(C->OperatorId, C->OperatorScript, C->OperatorScript.size());
    isdl::Description Inst =
        replayTo(C->InstructionId, C->InstructionScript, First);

    std::vector<Proposal> Props = proposeAugments(Op, Inst, Vocab);
    if (Props.empty())
      continue;
    ++CasesWithProposals;
    for (const Proposal &P : Props) {
      transform::Engine E(Inst.clone());
      for (const Step &S : P.Steps) {
        EXPECT_TRUE(E.apply(S).Applied)
            << C->Id << ": synthesized step refused: " << S.str();
        ++StepsApplied;
      }
    }
  }
  // The corpus must exercise the synthesizer, and nontrivially.
  EXPECT_GE(CasesWithProposals, 3u);
  EXPECT_GE(StepsApplied, 6u);
}

TEST(CodeSynthTest, SynthesisOnlySuggestsInstructionSideAugments) {
  // proposeAugments edits the instruction; synthesizeProposals must not
  // offer augment steps when the current side is the operator.
  auto Op = descriptions::load("pc2.clear");
  auto Inst = descriptions::load("i8086.stosb");
  const Vocabulary &Vocab = analysis::Priors::instance().vocabulary();
  for (const Proposal &P :
       synthesizeProposals(*Op, *Inst, /*CurrentIsInstruction=*/false, Vocab))
    for (const Step &S : P.Steps) {
      EXPECT_NE(S.Rule, "add-prologue");
      EXPECT_NE(S.Rule, "replace-output");
    }
}

} // namespace
