//===- chaos_test.cpp - Protocol chaos harness tests ------------*- C++ -*-===//
//
// Part of the EXTRA reproduction of Morgan & Rowe, SIGPLAN '82.
//
//===----------------------------------------------------------------------===//
//
// The end-to-end robustness suite: a real discovery server on TCP, the
// deterministic chaos proxy in front of it, and the retrying client
// talking through the mangled wire. The assertions are the service's
// hard promises under chaos:
//
//  * every request is eventually answered (torn lines, stalls, garbage
//    and partial writes never wedge a client);
//  * disconnect-and-retry never double-executes a search (rid dedup:
//    enqueued == distinct pairings, no matter how many resubmissions
//    the cut connections forced);
//  * the memo store a chaos run converges to is byte-identical to a
//    clean run's, modulo the wall-clock field.
//
//===----------------------------------------------------------------------===//

#include "server/Chaos.h"
#include "server/Client.h"
#include "server/MemoStore.h"
#include "server/Service.h"
#include "server/Socket.h"

#include "obs/TraceFile.h"

#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <thread>
#include <vector>

using namespace extra;
using namespace extra::server;

namespace {

struct TempFile {
  std::string Path;
  explicit TempFile(const std::string &Name)
      : Path(::testing::TempDir() + Name) {
    std::remove(Path.c_str());
    std::remove((Path + ".lock").c_str());
  }
  ~TempFile() {
    std::remove(Path.c_str());
    std::remove((Path + ".lock").c_str());
  }
};

/// The pairings every run submits: the four fast self-pairings, each
/// verifying in milliseconds, so a chaos run exercises many wire
/// round trips without long searches dominating the clock.
const char *kPairings[] = {"pc2.copy", "pc2.clear", "clu.search",
                          "pl1.move"};

std::string submitLine(const char *Id) {
  return std::string("{\"cmd\":\"submit\",\"operator\":\"") + Id +
         "\",\"instruction\":\"" + Id + "\",\"wait\":true}";
}

ServiceOptions quickOptions(const std::string &StorePath) {
  ServiceOptions O;
  O.StorePath = StorePath;
  O.Workers = 2;
  O.Watchdog = false;
  O.Limits.TimeBudgetMs = 30000;
  return O;
}

/// A service listening on an ephemeral TCP port with its serve loop on
/// a background thread.
struct LiveServer {
  std::unique_ptr<Service> S;
  uint16_t Port = 0;
  std::thread Loop;

  static LiveServer start(const std::string &StorePath) {
    LiveServer L;
    auto S = Service::create(quickOptions(StorePath));
    EXPECT_TRUE(bool(S)) << (S ? "" : S.fault().Message);
    if (!S)
      return L;
    L.S = std::move(*S);
    auto Fd = listenTcp("127.0.0.1", 0);
    EXPECT_TRUE(bool(Fd)) << (Fd ? "" : Fd.fault().Message);
    if (!Fd)
      return L;
    L.Port = localPort(*Fd);
    Service &Ref = *L.S;
    int ListenFd = *Fd;
    L.Loop = std::thread([ListenFd, &Ref] {
      // Tight deadlines on purpose: chaos stalls must ride under them
      // (StallMs well below LineDeadlineMs) or earn honest evictions.
      ServeOptions SO;
      SO.LineDeadlineMs = 2000;
      SO.WriteDeadlineMs = 2000;
      serveLoop({Listener{ListenFd, ""}}, Ref, SO);
    });
    return L;
  }

  void shutdown() {
    if (!S)
      return;
    if (!S->shutdownRequested())
      S->handle("{\"cmd\":\"shutdown\"}");
    if (Loop.joinable())
      Loop.join();
    S->stop();
  }
};

Endpoint tcpEndpoint(uint16_t Port) {
  Endpoint E;
  E.Tcp = true;
  E.Host = "127.0.0.1";
  E.Port = Port;
  return E;
}

/// The normalized store image: one line per entry with the only
/// schedule-dependent field (wall_ms) zeroed — the form in which a
/// chaos run and a clean run must agree byte for byte.
std::string normalizedStore(const std::string &Path) {
  auto S = MemoStore::open(Path);
  EXPECT_TRUE(bool(S)) << (S ? "" : S.fault().Message);
  if (!S)
    return "";
  std::string Out;
  for (const MemoEntry &E : (*S)->entries()) {
    MemoEntry C = E;
    C.Record.WallMs = 0;
    Out += C.toJsonLine() + "\n";
  }
  return Out;
}

ClientOptions patientClient(uint64_t Seed) {
  ClientOptions CO;
  CO.MaxAttempts = 10;
  CO.RequestDeadlineMs = 60000;
  CO.BackoffBaseMs = 10;
  CO.BackoffMaxMs = 200;
  CO.JitterSeed = Seed;
  return CO;
}

TEST(ChaosTest, NoisyWireStillAnswersEveryRequest) {
  TempFile Store("chaos_noise.jsonl");
  LiveServer Srv = LiveServer::start(Store.Path);
  ASSERT_TRUE(Srv.S);

  // Everything except disconnects, at aggressive rates: roughly half
  // the forwarded lines are mangled one way or another.
  ChaosOptions CO;
  CO.Seed = 7;
  CO.TornPerMille = 150;
  CO.PartialPerMille = 150;
  CO.StallPerMille = 100;
  CO.GarbagePerMille = 200;
  CO.StallMs = 25;
  auto Proxy = ChaosProxy::start(tcpEndpoint(0), tcpEndpoint(Srv.Port), CO);
  ASSERT_TRUE(bool(Proxy)) << Proxy.fault().Message;

  {
    auto C = Client::connect("127.0.0.1:" + std::to_string((*Proxy)->port()),
                             patientClient(42));
    ASSERT_TRUE(bool(C)) << C.fault().Message;
    auto St = (*C)->request("{\"cmd\":\"status\"}");
    ASSERT_TRUE(bool(St)) << St.fault().Message;
    EXPECT_TRUE(St->ok());
    for (const char *Id : kPairings) {
      auto R = (*C)->request(submitLine(Id));
      ASSERT_TRUE(bool(R)) << Id << ": " << R.fault().Message;
      EXPECT_TRUE(R->ok()) << R->Raw;
      EXPECT_EQ(R->get("verified"), "true") << R->Raw;
    }
    // Warm pass: answered from cache, still through the mangled wire.
    for (const char *Id : kPairings) {
      auto R = (*C)->request(submitLine(Id));
      ASSERT_TRUE(bool(R)) << Id << ": " << R.fault().Message;
      EXPECT_EQ(R->get("cached"), "true") << R->Raw;
    }
  }

  ChaosCounts Counts = (*Proxy)->counts();
  EXPECT_GT(Counts.Lines, 0u);
  EXPECT_GT(Counts.fired(), 0u)
      << "rates this high must actually mangle something";
  EXPECT_EQ(Counts.Disconnects, 0u);
  (*Proxy)->stop();
  Srv.shutdown();
}

TEST(ChaosTest, DisconnectRetriesNeverDoubleExecuteAndStoreMatchesClean) {
  // The clean reference run first: same submissions, no proxy.
  TempFile CleanStore("chaos_clean.jsonl");
  {
    LiveServer Srv = LiveServer::start(CleanStore.Path);
    ASSERT_TRUE(Srv.S);
    auto C = Client::connect("127.0.0.1:" + std::to_string(Srv.Port),
                             patientClient(1));
    ASSERT_TRUE(bool(C)) << C.fault().Message;
    for (const char *Id : kPairings)
      ASSERT_TRUE(bool((*C)->request(submitLine(Id))));
    Srv.shutdown();
  }
  std::string Clean = normalizedStore(CleanStore.Path);
  ASSERT_FALSE(Clean.empty());

  // The chaos run: connections cut mid-line in both directions, plus
  // garbage — the exact recipe for a lost response after an executed
  // request, i.e. the double-enqueue trap.
  TempFile Store("chaos_cut.jsonl");
  LiveServer Srv = LiveServer::start(Store.Path);
  ASSERT_TRUE(Srv.S);
  ChaosOptions CO;
  CO.Seed = 11;
  CO.DisconnectPerMille = 120;
  CO.GarbagePerMille = 150;
  CO.StallMs = 20;
  auto Proxy = ChaosProxy::start(tcpEndpoint(0), tcpEndpoint(Srv.Port), CO);
  ASSERT_TRUE(bool(Proxy)) << Proxy.fault().Message;

  {
    auto C = Client::connect("127.0.0.1:" + std::to_string((*Proxy)->port()),
                             patientClient(99));
    ASSERT_TRUE(bool(C)) << C.fault().Message;
    for (const char *Id : kPairings) {
      auto R = (*C)->request(submitLine(Id));
      ASSERT_TRUE(bool(R)) << Id << ": " << R.fault().Message;
      EXPECT_TRUE(R->ok()) << R->Raw;
      EXPECT_EQ(R->get("verified"), "true") << R->Raw;
    }
  }

  // The hard promise: however many resubmissions the cut connections
  // forced, each pairing was enqueued — and searched — exactly once.
  obs::Metrics &M = Srv.S->metrics();
  EXPECT_EQ(M.counter("server.admission.enqueued").value(), 4u);
  auto St = obs::parseJsonObjectLine(Srv.S->handle("{\"cmd\":\"status\"}"));
  ASSERT_TRUE(St);
  EXPECT_EQ((*St)["completed"], "4");
  EXPECT_EQ((*St)["entries"], "4");
  uint64_t RidDedups = M.counter("server.admission.rid_dedup").value();

  ChaosCounts Counts = (*Proxy)->counts();
  (*Proxy)->stop();
  Srv.shutdown();
  // Post-shutdown compaction done: the surviving store must match the
  // clean run's byte for byte once wall_ms is normalized.
  EXPECT_EQ(normalizedStore(Store.Path), Clean);

  // If a disconnect actually severed a submit round trip, the client
  // resubmitted and the rid window absorbed it; either way the counts
  // reconcile: retries happened iff dedups or cache hits covered them.
  if (Counts.Disconnects > 0) {
    EXPECT_GT(Counts.Lines, 8u);
  }
  (void)RidDedups; // Informational: scheduling decides if retries hit
                   // pre- or post-completion, cache or rid window.
}

TEST(ChaosTest, SameSeedSameTrafficSameDecisions) {
  // Determinism of the decider itself, independent of retry timing: a
  // fixed request sequence through two proxies with the same seed must
  // mangle identically — that is what lets CI compare chaos runs.
  ChaosCounts FirstCounts;
  for (int Round = 0; Round < 2; ++Round) {
    TempFile Store("chaos_det_" + std::to_string(Round) + ".jsonl");
    LiveServer Srv = LiveServer::start(Store.Path);
    ASSERT_TRUE(Srv.S);
    ChaosOptions CO;
    CO.Seed = 1234;
    CO.GarbagePerMille = 400; // Garbage only: no retries, no timing
                              // feedback into the traffic.
    auto Proxy =
        ChaosProxy::start(tcpEndpoint(0), tcpEndpoint(Srv.Port), CO);
    ASSERT_TRUE(bool(Proxy)) << Proxy.fault().Message;
    {
      auto C = Client::connect(
          "127.0.0.1:" + std::to_string((*Proxy)->port()),
          patientClient(5));
      ASSERT_TRUE(bool(C));
      for (int I = 0; I < 10; ++I) {
        auto R = (*C)->request("{\"cmd\":\"status\"}");
        ASSERT_TRUE(bool(R));
        EXPECT_TRUE(R->ok());
      }
    }
    ChaosCounts Counts = (*Proxy)->counts();
    (*Proxy)->stop();
    Srv.shutdown();
    EXPECT_GT(Counts.Garbage, 0u);
    if (Round == 0) {
      FirstCounts = Counts;
    } else {
      EXPECT_EQ(Counts.Lines, FirstCounts.Lines);
      EXPECT_EQ(Counts.Garbage, FirstCounts.Garbage);
    }
  }
}

} // namespace
